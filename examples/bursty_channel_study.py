"""Beyond the paper: bursty wireless loss and concealment choices.

The paper's channel is uniform frame discard; real 802.11 links lose
packets in bursts.  This study runs PBPAIR and PGOP under a
Gilbert-Elliott channel with the same average loss rate as a uniform
channel, and also swaps the decoder's concealment between the paper's
copy scheme and spatial interpolation — the two extension points the
paper's future-work section names (network packet error model,
concealment-dependent similarity factor).

Usage::

    python examples/bursty_channel_study.py
"""

from __future__ import annotations

from repro.api import (
    CopyConcealment,
    GilbertElliottLoss,
    SpatialConcealment,
    UniformLoss,
    foreman_like,
    format_table,
    make_strategy,
    simulate,
)

N_FRAMES = 90
PLR = 0.10


def make_bursty() -> GilbertElliottLoss:
    """A bursty channel whose steady-state loss rate matches PLR."""
    model = GilbertElliottLoss(
        p_good_to_bad=0.03,
        p_bad_to_good=0.27,
        good_loss=0.0,
        bad_loss=1.0,
        seed=5,
    )
    assert abs(model.steady_state_loss_rate - PLR) < 0.01
    return model


def main() -> None:
    video = foreman_like(n_frames=N_FRAMES)
    channels = {
        "uniform": lambda: UniformLoss(plr=PLR, seed=5),
        "bursty (Gilbert-Elliott)": make_bursty,
    }
    concealments = {
        "copy": CopyConcealment,
        "spatial": SpatialConcealment,
    }
    rows = []
    for channel_name, channel_factory in channels.items():
        for concealment_name, concealment_cls in concealments.items():
            for spec, kwargs in (
                ("PBPAIR", dict(intra_th=0.92, plr=PLR)),
                ("PGOP-3", {}),
            ):
                result = simulate(
                    video,
                    strategy=make_strategy(spec, **kwargs),
                    loss_model=channel_factory(),
                    concealment=concealment_cls(),
                )
                rows.append(
                    [
                        channel_name,
                        concealment_name,
                        spec,
                        result.average_psnr_decoder,
                        result.total_bad_pixels / 1e6,
                        result.channel_log.loss_rate,
                    ]
                )
    print(
        format_table(
            ["channel", "concealment", "scheme", "PSNR dB", "bad px M",
             "measured loss"],
            rows,
            title=f"{video.name}, {N_FRAMES} frames, mean loss {PLR:.0%}",
        )
    )


if __name__ == "__main__":
    main()
