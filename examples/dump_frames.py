"""Dump decoded frames as PGM/PPM images for visual inspection.

Encodes a colour clip with the full codec feature set (4:2:0 chroma,
half-pel motion, skip mode) under a lossy channel, then writes three
image files per sampled frame into an output directory:

* ``frame_NNN_source.ppm``  — the original,
* ``frame_NNN_clean.ppm``   — the encoder's loss-free reconstruction,
* ``frame_NNN_decoded.ppm`` — what the receiver actually displays.

Any image viewer opens PGM/PPM; diffing source vs decoded makes loss
damage and its recovery visible frame by frame.

Usage::

    python examples/dump_frames.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.api import (
    Channel,
    CodecConfig,
    CopyConcealment,
    Decoder,
    Depacketizer,
    Encoder,
    Frame,
    Packetizer,
    PBPAIRConfig,
    PBPAIRStrategy,
    SyntheticConfig,
    UniformLoss,
    generate_sequence,
    write_ppm,
)

N_FRAMES = 40
SAMPLE_EVERY = 5


def main(output_dir: str = "frame_dump") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    video = generate_sequence(
        SyntheticConfig(
            n_frames=N_FRAMES,
            texture_scale=35.0,
            object_radius=28,
            object_motion_amplitude=20.0,
            object_motion_period=25,
            sensor_noise=0.8,
            chroma=True,
            seed=7,
        ),
        name="colour-call",
    )
    config = CodecConfig(chroma=True, half_pel=True, allow_skip=True)
    encoder = Encoder(config, PBPAIRStrategy(PBPAIRConfig(intra_th=0.92, plr=0.1)))
    decoder = Decoder(config)
    packetizer = Packetizer(config)
    depacketizer = Depacketizer()
    channel = Channel(UniformLoss(plr=0.15, seed=3))
    concealment = CopyConcealment()

    luma_ref = None
    chroma_ref = None
    dumped = 0
    for frame in video:
        encoded = encoder.encode_frame(frame)
        packets = packetizer.packetize(encoded)
        delivered = channel.transmit(packets)
        fragments = depacketizer.group_by_frame(delivered, frame.index + 1)[
            frame.index
        ]
        result = decoder.decode_frame(
            fragments, luma_ref, frame.index, reference_chroma=chroma_ref
        )
        repaired = concealment.conceal(result.frame, result.received, luma_ref)
        luma_ref, chroma_ref = repaired, result.chroma

        if frame.index % SAMPLE_EVERY == 0:
            stem = out / f"frame_{frame.index:03d}"
            write_ppm(frame, f"{stem}_source.ppm")
            cb, cr = encoded.reconstruction_chroma
            write_ppm(
                Frame(encoded.reconstruction, frame.index, cb, cr),
                f"{stem}_clean.ppm",
            )
            dcb, dcr = result.chroma
            write_ppm(
                Frame(repaired, frame.index, dcb, dcr),
                f"{stem}_decoded.ppm",
            )
            dumped += 3

    lost = len(channel.log.lost_packets)
    print(f"Encoded {N_FRAMES} colour frames; channel dropped {lost} packets.")
    print(f"Wrote {dumped} images to {out}/ — open them in any image viewer.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "frame_dump")
