"""Adaptive streaming: tracking a changing network (Section 3.2).

A video call whose channel degrades mid-stream: the packet loss rate
steps 5% -> 20% -> 10%.  The sender learns the new PLR from receiver
feedback (RTCP-style) and adapts PBPAIR's operating point with
:func:`repro.core.adaptation.intra_th_for_plr_change`, which shifts
``Intra_Th`` so the refresh rate — and with it the bit rate and energy —
stays roughly where the user set it (the paper: "adapting the Intra_Th
by the amount of the PLR increase can generate similar number of intra
macro blocks").

For contrast, a second encoder keeps its Intra_Th fixed: its intra rate
(and bitstream) balloons when the channel worsens.

Usage::

    python examples/adaptive_streaming.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    CodecConfig,
    Encoder,
    PBPAIRConfig,
    PBPAIRStrategy,
    SyntheticConfig,
    generate_sequence,
    intra_th_for_plr_change,
)

#: (start_frame, true PLR) schedule of the degrading channel.
PLR_SCHEDULE = ((0, 0.05), (60, 0.20), (120, 0.10))
N_FRAMES = 180
INITIAL_TH = 0.90


def plr_at(frame_index: int) -> float:
    current = PLR_SCHEDULE[0][1]
    for start, plr in PLR_SCHEDULE:
        if frame_index >= start:
            current = plr
    return current


def _talking_head() -> "VideoSequence":
    """A pan-free talking head: stationary statistics, so the intra
    rate differences between phases come from the channel alone."""
    return generate_sequence(
        SyntheticConfig(
            n_frames=N_FRAMES,
            texture_scale=35.0,
            texture_smoothness=3,
            object_radius=30,
            object_motion_amplitude=26.0,
            object_motion_period=30,
            sensor_noise=0.6,
            texture_drift=3.0,
            texture_drift_period=45,
            camera_jitter=0.1,
            seed=1,
        ),
        name="call",
    )


def run(adaptive: bool) -> list[tuple[int, float, float, int]]:
    """Encode the clip; returns (frame, plr, intra_th, intra_mbs) rows."""
    video = _talking_head()
    strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=INITIAL_TH, plr=plr_at(0)))
    encoder = Encoder(CodecConfig(), strategy)
    rows = []
    for frame in video:
        true_plr = plr_at(frame.index)
        controller = strategy.controller
        if controller is not None and controller.plr != true_plr:
            # Receiver feedback announced a new loss rate.
            if adaptive:
                controller.intra_th = intra_th_for_plr_change(
                    controller.intra_th, controller.plr, true_plr
                )
            controller.plr = true_plr
        encoded = encoder.encode_frame(frame)
        current_th = (
            strategy.controller.intra_th if strategy.controller else INITIAL_TH
        )
        rows.append((frame.index, true_plr, current_th, encoded.stats.intra_mbs))
    return rows


def summarize(label: str, rows) -> None:
    print(f"\n{label}")
    for start, plr in PLR_SCHEDULE:
        stop = min(
            (s for s, _ in PLR_SCHEDULE if s > start), default=N_FRAMES
        )
        window = [r for r in rows if start + 5 <= r[0] < stop]
        intra = np.mean([r[3] for r in window])
        th = window[-1][2]
        print(
            f"  frames {start:3d}-{stop - 1:3d}  PLR={plr:.0%}  "
            f"Intra_Th={th:.3f}  mean intra MBs/frame={intra:5.1f}"
        )


def main() -> None:
    print("Channel schedule:", " -> ".join(f"{p:.0%}" for _, p in PLR_SCHEDULE))
    fixed = run(adaptive=False)
    adaptive = run(adaptive=True)
    summarize("Fixed Intra_Th (no adaptation):", fixed)
    summarize("Adaptive Intra_Th (Section 3.2):", adaptive)

    def spread(rows):
        per_phase = []
        for start, _ in PLR_SCHEDULE:
            stop = min(
                (s for s, _ in PLR_SCHEDULE if s > start), default=N_FRAMES
            )
            window = [r[3] for r in rows if start + 5 <= r[0] < stop]
            per_phase.append(float(np.mean(window)))
        return max(per_phase) - min(per_phase)

    print(
        f"\nIntra-rate swing across phases: fixed={spread(fixed):.1f} "
        f"MBs/frame, adaptive={spread(adaptive):.1f} MBs/frame"
    )
    print("The adaptive encoder holds its operating point; the fixed one")
    print("over-refreshes whenever the channel worsens.")


if __name__ == "__main__":
    main()
