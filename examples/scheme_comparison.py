"""Compare PBPAIR against the paper's baselines on one clip.

A miniature of the paper's Figure 5: runs NO, PBPAIR, PGOP-3, GOP-3 and
AIR-24 on the same sequence and lossy channel, with PBPAIR's Intra_Th
calibrated so its encoded size matches PGOP-3 (the paper's experimental
setup), then prints quality / size / energy side by side.

Usage::

    python examples/scheme_comparison.py [foreman|akiyo|garden] [n_frames]
"""

from __future__ import annotations

import sys

from repro.api import (
    SEQUENCE_GENERATORS,
    UniformLoss,
    format_table,
    make_strategy,
    calibrate_intra_th,
    simulate,
    total_encoded_bytes,
)

PLR = 0.10
SCHEMES = ("NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24")


def main(sequence_name: str = "foreman", n_frames: int = 90) -> None:
    video = SEQUENCE_GENERATORS[sequence_name](n_frames)

    print(f"Calibrating PBPAIR's Intra_Th to PGOP-3's size on {video.name} ...")
    target = total_encoded_bytes(video, make_strategy("PGOP-3"))
    intra_th = calibrate_intra_th(
        video, target, plr=PLR, max_iterations=8
    )
    print(f"  -> Intra_Th = {intra_th:.3f}")

    rows = []
    for spec in SCHEMES:
        if spec == "PBPAIR":
            strategy = make_strategy(spec, intra_th=intra_th, plr=PLR)
        else:
            strategy = make_strategy(spec)
        result = simulate(
            video, strategy=strategy, loss_model=UniformLoss(plr=PLR, seed=11)
        )
        rows.append(
            [
                spec,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
                result.total_bytes / 1024,
                result.energy_joules,
                100 * result.intra_fraction,
            ]
        )

    print()
    print(
        format_table(
            ["scheme", "PSNR dB", "bad px M", "size KB", "energy J", "intra %"],
            rows,
            title=f"{video.name}, {n_frames} frames, PLR = {PLR:.0%}",
        )
    )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "foreman"
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 90
    main(name, frames)
