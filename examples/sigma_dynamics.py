"""Watch PBPAIR's correctness matrix evolve.

Encodes a talking-head clip with an instrumented PBPAIR strategy and
prints the probability-of-correctness matrix (the paper's ``C^k``) as
ASCII heatmaps at a few checkpoints — dense glyphs are macroblocks the
encoder believes the decoder has right, sparse glyphs are decayed ones,
``R`` marks this frame's intra refreshes.  Watch the active region (the
moving head) decay fast and get refreshed often while the static
background barely moves.

Usage::

    python examples/sigma_dynamics.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    CodecConfig,
    Encoder,
    InstrumentedPBPAIRStrategy,
    PBPAIRConfig,
    SyntheticConfig,
    generate_sequence,
    refresh_interval,
    sigma_heatmap,
)

N_FRAMES = 36
CHECKPOINTS = (4, 12, 24, 35)
PLR = 0.15
INTRA_TH = 0.88


def main() -> None:
    video = generate_sequence(
        SyntheticConfig(
            n_frames=N_FRAMES,
            texture_scale=35.0,
            object_radius=30,
            object_motion_amplitude=26.0,
            object_motion_period=24,
            sensor_noise=0.6,
            texture_drift=3.0,
            seed=2,
        ),
        name="head",
    )
    strategy = InstrumentedPBPAIRStrategy(
        PBPAIRConfig(intra_th=INTRA_TH, plr=PLR)
    )
    encoder = Encoder(CodecConfig(), strategy)
    encoder.encode_sequence(video)
    trace = strategy.trace

    print(
        f"PBPAIR, Intra_Th={INTRA_TH}, assumed PLR={PLR:.0%} "
        f"({N_FRAMES} frames)"
    )
    print(f"heatmap: '@' = sigma 1.0 ... ' ' = sigma 0.0, 'R' = refreshed\n")
    for checkpoint in CHECKPOINTS:
        snapshot = trace.snapshots[checkpoint]
        print(
            f"frame {checkpoint:2d}  "
            f"(mean sigma {snapshot.sigma_after.mean():.3f}, "
            f"min {snapshot.sigma_after.min():.3f}, "
            f"{int(snapshot.intra_mask.sum())} refreshes)"
        )
        print(sigma_heatmap(snapshot.sigma_after, mark=snapshot.intra_mask))
        print()

    intervals = trace.refresh_intervals()
    refreshed = intervals[np.isfinite(intervals)]
    print("Observed refresh behaviour vs the analytic approximation (3):")
    print(
        f"  analytic interval n(alpha, Th)      : "
        f"{refresh_interval(PLR, INTRA_TH):.1f} frames (similarity ignored)"
    )
    if refreshed.size:
        print(
            f"  observed, macroblocks refreshed >1x: "
            f"median {np.median(refreshed):.1f} frames "
            f"(min {refreshed.min():.1f}, max {refreshed.max():.1f})"
        )
    never = int(np.sum(~np.isfinite(intervals)))
    print(
        f"  macroblocks refreshed <= once       : {never} of {intervals.size}"
        " (static content the similarity factor protects from wasted refresh)"
    )


if __name__ == "__main__":
    main()
