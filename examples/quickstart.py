"""Quickstart: encode a clip with PBPAIR over a lossy channel.

Runs the full pipeline of the paper's Figure 1 — encoder with PBPAIR
resilience, RTP-style packetization, a 10%-loss channel, decoder with
copy concealment — and prints what arrived on the other side.

Usage::

    python examples/quickstart.py [n_frames]
"""

from __future__ import annotations

import sys

from repro.api import (
    PBPAIRConfig,
    PBPAIRStrategy,
    UniformLoss,
    foreman_like,
    simulate,
)


def main(n_frames: int = 60) -> None:
    print(f"Generating a {n_frames}-frame FOREMAN-like QCIF clip ...")
    video = foreman_like(n_frames=n_frames)

    strategy = PBPAIRStrategy(
        PBPAIRConfig(
            intra_th=0.92,  # user expectation about error resiliency
            plr=0.10,  # what the encoder assumes about the network
        )
    )
    print("Simulating: encode -> packetize -> 10% loss -> decode -> conceal")
    result = simulate(
        video, strategy=strategy, loss_model=UniformLoss(plr=0.10, seed=1)
    )

    print()
    print(f"  frames encoded        : {result.n_frames}")
    print(f"  encoded size          : {result.total_bytes / 1024:.1f} KB "
          f"({result.size_stats.mean_bytes:.0f} B/frame)")
    print(f"  packets lost          : {len(result.channel_log.lost_packets)} "
          f"of {result.channel_log.sent}")
    print(f"  delivered PSNR        : {result.average_psnr_decoder:.2f} dB")
    print(f"  bad pixels            : {result.total_bad_pixels:,}")
    print(f"  intra macroblocks     : {100 * result.intra_fraction:.1f}%")
    print(f"  encoding energy (iPAQ): {result.energy_joules:.3f} J")
    print(f"  ME share of energy    : "
          f"{100 * result.energy.fraction('sad_blocks'):.0f}%")
    recoveries = result.recovery_times()
    if recoveries:
        print(f"  mean loss recovery    : {sum(recoveries) / len(recoveries):.1f} "
              "frames")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
