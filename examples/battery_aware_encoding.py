"""Battery-aware encoding: maximize resilience within an energy budget.

Section 3.2: "PBPAIR can be extended to adjust the Intra_Th parameter to
maximize error resilient level within current residual energy
constraint."  This example drives that loop: after each frame the
encoder's measured energy (from the operation-counting model) feeds an
:class:`repro.core.adaptation.EnergyBudgetController`, which walks
``Intra_Th`` until the per-frame energy sits at the budget — more intra
refresh when over budget (skipped motion estimation saves energy), more
compression efficiency when there is slack.

Usage::

    python examples/battery_aware_encoding.py [budget_millijoules_per_frame]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.api import (
    CodecConfig,
    Encoder,
    EnergyBudgetController,
    EnergyModel,
    IPAQ_H5555,
    PBPAIRConfig,
    PBPAIRStrategy,
    foreman_like,
)

N_FRAMES = 150


def main(budget_mj_per_frame: float = 26.0) -> None:
    budget_j = budget_mj_per_frame / 1000.0
    video = foreman_like(n_frames=N_FRAMES)
    strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=0.5, plr=0.1))
    encoder = Encoder(CodecConfig(), strategy)
    model = EnergyModel(IPAQ_H5555)
    governor = EnergyBudgetController(
        intra_th=0.5,
        budget_joules_per_frame=budget_j,
        step=0.04,
        deadband=0.08,
        min_th=0.3,  # never drop all resilience just to bank energy
    )

    print(f"Per-frame energy budget: {budget_mj_per_frame:.1f} mJ (iPAQ model)")
    energies, thresholds = [], []
    snapshot = encoder.counters.copy()
    for frame in video:
        encoder.encode_frame(frame)
        spent = model.joules(encoder.counters.diff(snapshot))
        snapshot = encoder.counters.copy()
        energies.append(spent)
        thresholds.append(governor.intra_th)
        new_th = governor.observe_energy(spent)
        if strategy.controller is not None:
            strategy.controller.intra_th = new_th

    # The clip's camera pan starts at frame 100 and makes every frame
    # harder to encode; the governor must walk Intra_Th up to stay
    # inside the budget.  Report both steady phases.
    phases = (("calm (30-99)", 30, 100), ("camera pan (115-150)", 115, 150))
    for label, start, stop in phases:
        window = energies[start:stop]
        print(
            f"  {label:22s}: {1000 * np.mean(window):5.1f} mJ/frame, "
            f"Intra_Th ends at {thresholds[stop - 1]:.2f}, "
            f"{sum(e > budget_j * 1.15 for e in window)}/{len(window)} "
            "frames >15% over budget"
        )
    print(f"  final Intra_Th               : {governor.intra_th:.3f}")
    print(f"  expected refresh interval    : "
          f"{governor.expected_refresh_interval(0.1):.1f} frames at PLR=10%")
    final_window = energies[-30:]
    within = abs(float(np.mean(final_window)) - budget_j) / budget_j
    print(f"  tracking error, last 30 frames: {100 * within:.1f}%")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 26.0)
