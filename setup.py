"""Shim for environments whose setuptools cannot build editable wheels.

``pip install -e .`` needs the ``wheel`` package; fully offline boxes
without it can still get an editable install via::

    python setup.py develop

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
