"""Tests for the bandwidth/deadline link model and the SSIM metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.ssim import sequence_ssim, ssim
from repro.network.link import BandwidthDeadlineLoss
from repro.network.packet import Packet


def _packet(frame: int, size_bytes: int, seq: int = 0) -> Packet:
    # Packet.size_bytes adds the 12-byte transport header to the payload.
    return Packet(seq, frame, 0, 1, b"\x00" * max(size_bytes - 12, 0))


class TestBandwidthDeadlineLoss:
    def test_small_packets_on_fast_link_all_arrive(self):
        link = BandwidthDeadlineLoss(kbps=1000, playout_delay_s=0.1, fps=30)
        assert all(
            link.survives(_packet(frame, 500, frame)) for frame in range(20)
        )
        assert link.log.late_rate == 0.0

    def test_oversized_packet_misses_deadline(self):
        # 10 KB at 200 kbps = 400 ms serialization >> 100 ms budget.
        link = BandwidthDeadlineLoss(kbps=200, playout_delay_s=0.1, fps=30)
        assert not link.survives(_packet(1, 10_000))
        assert link.log.late_packets == 1

    def test_first_frame_protected_by_default(self):
        link = BandwidthDeadlineLoss(kbps=200, playout_delay_s=0.1, fps=30)
        assert link.survives(_packet(0, 10_000))
        # ... but its serialization still backs up the queue.
        assert link.log.max_queueing_delay_s == 0.0
        assert not link.survives(_packet(1, 900))  # stuck behind frame 0

    def test_first_frame_protection_can_be_disabled(self):
        link = BandwidthDeadlineLoss(
            kbps=200, playout_delay_s=0.1, fps=30, protect_first_frame=False
        )
        assert not link.survives(_packet(0, 10_000))

    def test_spike_delays_following_frames(self):
        # An I-frame-sized burst at frame 5 clogs the link so the next
        # frames (which individually fit) also miss their deadlines.
        link = BandwidthDeadlineLoss(kbps=300, playout_delay_s=0.12, fps=30)
        outcomes = {}
        for frame in range(1, 30):
            size = 9_000 if frame == 5 else 900
            outcomes[frame] = link.survives(_packet(frame, size, frame))
        assert all(outcomes[f] for f in range(1, 5))  # before the spike: fine
        assert not outcomes[5]  # the spike itself is late
        assert not outcomes[6]  # collateral damage: queued behind it
        # The queue drains ~9 ms per frame; by frame 29 it has recovered.
        assert outcomes[29]
        assert link.log.max_queueing_delay_s > 0.1

    def test_smooth_stream_at_matching_rate_survives(self):
        # 900 B per frame at 30 fps = 216 kbps; a 260 kbps link keeps up.
        link = BandwidthDeadlineLoss(kbps=260, playout_delay_s=0.1, fps=30)
        assert all(
            link.survives(_packet(frame, 900, frame)) for frame in range(60)
        )

    def test_out_of_order_offering_rejected(self):
        link = BandwidthDeadlineLoss(kbps=500, playout_delay_s=0.1)
        link.survives(_packet(5, 500))
        with pytest.raises(ValueError):
            link.survives(_packet(4, 500))

    def test_reset(self):
        link = BandwidthDeadlineLoss(kbps=200, playout_delay_s=0.1)
        link.survives(_packet(0, 10_000))
        link.reset()
        assert link.log.packets == 0
        assert link.survives(_packet(0, 500))

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthDeadlineLoss(kbps=0, playout_delay_s=0.1)
        with pytest.raises(ValueError):
            BandwidthDeadlineLoss(kbps=100, playout_delay_s=0)
        with pytest.raises(ValueError):
            BandwidthDeadlineLoss(kbps=100, playout_delay_s=0.1, fps=0)
        with pytest.raises(ValueError):
            BandwidthDeadlineLoss(
                kbps=100, playout_delay_s=0.1, propagation_delay_s=-1
            )

    def test_gop_spikes_lose_more_than_smooth_stream(self):
        """The paper's Fig. 6(b) claim, closed end to end: at equal
        total bytes, a spiky stream loses frames a smooth one keeps."""
        from repro.network.channel import Channel

        def run(sizes):
            link = BandwidthDeadlineLoss(kbps=400, playout_delay_s=0.1, fps=30)
            channel = Channel(link)
            packets = [
                _packet(frame, size, frame) for frame, size in enumerate(sizes)
            ]
            delivered = channel.transmit(packets)
            return len(packets) - len(delivered)

        smooth = [1500] * 36
        spiky = [800] * 36
        for i in range(0, 36, 9):
            spiky[i] = 800 + 700 * 9  # same total, one spike per GOP
        assert sum(smooth) == sum(spiky)
        assert run(spiky) > run(smooth)


class TestSSIM:
    def test_identity_is_one(self, rng):
        frame = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        assert ssim(frame, frame) == pytest.approx(1.0)

    def test_bounded(self, rng):
        a = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        b = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        value = ssim(a, b)
        assert -1.0 <= value <= 1.0

    def test_decreases_with_noise(self, rng):
        base = rng.integers(40, 216, (48, 64)).astype(np.int64)
        small = np.clip(base + rng.normal(0, 4, base.shape), 0, 255).astype(
            np.uint8
        )
        large = np.clip(base + rng.normal(0, 40, base.shape), 0, 255).astype(
            np.uint8
        )
        original = base.astype(np.uint8)
        assert ssim(original, small) > ssim(original, large)

    def test_structural_damage_hurts_more_than_brightness(self, rng):
        # SSIM's selling point over PSNR: a uniform brightness shift is
        # mild; scrambling one block is severe — even when the PSNR of
        # the two distortions is comparable.
        from repro.metrics.psnr import psnr

        base = rng.integers(60, 196, (48, 64)).astype(np.int64)
        brightness = np.clip(base + 12, 0, 255).astype(np.uint8)
        scrambled = base.copy()
        scrambled[16:32, 16:32] = rng.integers(0, 256, (16, 16))
        scrambled = np.clip(scrambled, 0, 255).astype(np.uint8)
        original = base.astype(np.uint8)
        assert abs(
            psnr(original, brightness) - psnr(original, scrambled)
        ) < 8.0  # distortions of similar PSNR magnitude...
        assert ssim(original, brightness) > ssim(original, scrambled) + 0.05

    def test_shape_and_window_validation(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 32)))
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 16)), window=1)
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 16)), window=20)

    def test_sequence_ssim(self, rng):
        frames = [rng.integers(0, 256, (16, 16)).astype(np.uint8) for _ in range(3)]
        out = sequence_ssim(frames, frames)
        assert all(v == pytest.approx(1.0) for v in out)
        with pytest.raises(ValueError):
            sequence_ssim(frames, frames[:1])

    def test_tracks_loss_damage_in_pipeline(self):
        from repro.network.loss import ScriptedLoss
        from repro.resilience.none import NoResilience
        from repro.sim.pipeline import SimulationConfig, simulate
        from tests.conftest import small_config, small_sequence

        clip = small_sequence(n_frames=8)
        result = simulate(
            clip,
            NoResilience(),
            ScriptedLoss([3]),
            SimulationConfig(codec=small_config()),
        )
        # Reconstruct decoder frames? Not exposed; compare encoder-side
        # reconstruction quality instead via SSIM on a clean encode.
        from repro.codec.encoder import Encoder

        encoder = Encoder(small_config(), NoResilience())
        for frame in clip.frames[:3]:
            ef = encoder.encode_frame(frame)
            assert ssim(frame.pixels, ef.reconstruction) > 0.9
