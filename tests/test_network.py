"""Unit tests for packetization, loss models and the channel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.network.channel import Channel
from repro.network.loss import (
    GilbertElliottLoss,
    MarkovBurstLoss,
    NoLoss,
    ScriptedLoss,
    TraceLoss,
    UniformLoss,
    structural_rng,
)
from repro.network.protection import ResilienceWrapper, xor_parity_payload
from repro.network.packet import (
    DEFAULT_MTU,
    Depacketizer,
    Packet,
    Packetizer,
    TRANSPORT_HEADER_BYTES,
)
from repro.resilience.none import NoResilience

from tests.conftest import small_config, small_sequence


@pytest.fixture(scope="module")
def encoded_frames():
    config = small_config()
    encoder = Encoder(config, NoResilience())
    return config, encoder.encode_sequence(small_sequence(n_frames=5))


def _packet(seq=0, frame=0):
    return Packet(
        sequence_number=seq,
        frame_index=frame,
        fragment_index=0,
        fragments_in_frame=1,
        payload=b"x" * 50,
    )


class TestPacketizer:
    def test_single_packet_when_under_mtu(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=DEFAULT_MTU)
        for ef in frames:
            if ef.size_bytes < DEFAULT_MTU - 100:
                packets = packetizer.packetize(ef)
                assert len(packets) == max(1, len(packets))
                if ef.size_bytes < 1000:
                    assert len(packets) == 1

    def test_fragments_respect_mtu(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=200)
        for ef in frames:
            for packet in packetizer.packetize(ef):
                assert packet.size_bytes <= 200

    def test_fragments_cover_all_macroblocks(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=150)
        from repro.codec.bitstream import BitReader
        from repro.codec.syntax import read_fragment_header

        for ef in frames:
            covered = []
            for packet in packetizer.packetize(ef):
                header = read_fragment_header(BitReader(packet.payload))
                covered.extend(
                    range(header.first_mb, header.first_mb + header.mb_count)
                )
            assert covered == list(range(config.mb_count))

    def test_sequence_numbers_monotone(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=300)
        packets = packetizer.packetize_sequence(frames)
        numbers = [p.sequence_number for p in packets]
        assert numbers == list(range(len(numbers)))

    def test_fragment_metadata(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=150)
        packets = packetizer.packetize(frames[0])
        assert all(p.fragments_in_frame == len(packets) for p in packets)
        assert [p.fragment_index for p in packets] == list(range(len(packets)))

    def test_tiny_mtu_rejected(self, encoded_frames):
        config, _ = encoded_frames
        with pytest.raises(ValueError):
            Packetizer(config, mtu=10)

    def test_reset_restarts_sequence(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config)
        packetizer.packetize(frames[0])
        packetizer.reset()
        packets = packetizer.packetize(frames[0])
        assert packets[0].sequence_number == 0


class TestDepacketizer:
    def test_groups_by_frame(self):
        packets = [_packet(0, 0), _packet(1, 2), _packet(2, 2)]
        groups = Depacketizer().group_by_frame(packets, 3)
        assert len(groups[0]) == 1
        assert len(groups[1]) == 0
        assert len(groups[2]) == 2

    def test_orders_fragments_within_frame(self):
        a = Packet(0, 0, 1, 2, b"second")
        b = Packet(1, 0, 0, 2, b"first")
        groups = Depacketizer().group_by_frame([a, b], 1)
        assert groups[0] == [b"first", b"second"]

    def test_ignores_out_of_range_frames(self):
        groups = Depacketizer().group_by_frame([_packet(0, 99)], 3)
        assert all(not g for g in groups)


class TestUniformLoss:
    def test_zero_plr_drops_nothing(self):
        model = UniformLoss(plr=0.0)
        assert all(model.survives(_packet(i, i)) for i in range(100))

    def test_frame_rate_statistically_matches(self):
        model = UniformLoss(plr=0.3, seed=42, protect_first_frame=False)
        outcomes = [model.survives(_packet(i, i)) for i in range(4000)]
        loss_rate = 1 - sum(outcomes) / len(outcomes)
        assert abs(loss_rate - 0.3) < 0.03

    def test_packet_rate_statistically_matches(self):
        model = UniformLoss(
            plr=0.3, seed=42, protect_first_frame=False, granularity="packet"
        )
        outcomes = [model.survives(_packet(i, 1)) for i in range(4000)]
        loss_rate = 1 - sum(outcomes) / len(outcomes)
        assert abs(loss_rate - 0.3) < 0.03

    def test_frame_granularity_all_fragments_share_fate(self):
        model = UniformLoss(plr=0.5, seed=1, protect_first_frame=False)
        for frame in range(50):
            outcomes = {
                model.survives(Packet(i, frame, i, 3, b"")) for i in range(3)
            }
            assert len(outcomes) == 1

    def test_frame_granularity_order_independent(self):
        model = UniformLoss(plr=0.5, seed=4, protect_first_frame=False)
        forward = [model.survives(_packet(i, i)) for i in range(50)]
        model.reset()
        backward = [
            model.survives(_packet(i, i)) for i in reversed(range(50))
        ]
        assert forward == list(reversed(backward))

    def test_reproducible_with_seed(self):
        a = UniformLoss(plr=0.5, seed=9)
        b = UniformLoss(plr=0.5, seed=9)
        pa = [a.survives(_packet(i, i)) for i in range(200)]
        pb = [b.survives(_packet(i, i)) for i in range(200)]
        assert pa == pb

    def test_reset_replays_packet_mode(self):
        model = UniformLoss(plr=0.5, seed=3, granularity="packet")
        first = [model.survives(_packet(i, 1)) for i in range(100)]
        model.reset()
        second = [model.survives(_packet(i, 1)) for i in range(100)]
        assert first == second

    def test_first_frame_protected(self):
        model = UniformLoss(plr=1.0, seed=0, protect_first_frame=True)
        assert model.survives(_packet(0, 0))
        assert not model.survives(_packet(1, 1))

    def test_rejects_bad_plr(self):
        with pytest.raises(ValueError):
            UniformLoss(plr=1.5)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            UniformLoss(plr=0.1, granularity="bit")


class TestScriptedLoss:
    def test_drops_exactly_listed_frames(self):
        model = ScriptedLoss([2, 5])
        for frame in range(8):
            survived = model.survives(_packet(0, frame))
            assert survived == (frame not in (2, 5))

    def test_all_fragments_of_lost_frame_dropped(self):
        model = ScriptedLoss([3])
        assert not model.survives(Packet(0, 3, 0, 2, b""))
        assert not model.survives(Packet(1, 3, 1, 2, b""))

    def test_rejects_negative_frames(self):
        with pytest.raises(ValueError):
            ScriptedLoss([-1])


class TestGilbertElliott:
    def test_steady_state_rate(self):
        model = GilbertElliottLoss(
            p_good_to_bad=0.1,
            p_bad_to_good=0.4,
            seed=7,
            protect_first_frame=False,
        )
        expected = model.steady_state_loss_rate
        outcomes = [model.survives(_packet(i, 1)) for i in range(8000)]
        measured = 1 - sum(outcomes) / len(outcomes)
        assert abs(measured - expected) < 0.03

    def test_losses_are_bursty(self):
        model = GilbertElliottLoss(
            p_good_to_bad=0.02,
            p_bad_to_good=0.3,
            seed=11,
            protect_first_frame=False,
        )
        outcomes = [model.survives(_packet(i, 1)) for i in range(5000)]
        # Mean burst length of losses must exceed i.i.d. expectation.
        bursts, current = [], 0
        for ok in outcomes:
            if not ok:
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        assert bursts and np.mean(bursts) > 1.5

    def test_reset(self):
        model = GilbertElliottLoss(0.1, 0.4, seed=5, protect_first_frame=False)
        first = [model.survives(_packet(i, 1)) for i in range(100)]
        model.reset()
        second = [model.survives(_packet(i, 1)) for i in range(100)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.5)


class TestChannel:
    def test_lossless_channel_delivers_everything(self):
        channel = Channel(NoLoss())
        packets = [_packet(i, i) for i in range(10)]
        assert channel.transmit(packets) == packets
        assert channel.log.loss_rate == 0.0
        assert channel.log.bytes_sent == channel.log.bytes_delivered

    def test_log_tracks_losses(self):
        channel = Channel(ScriptedLoss([1]))
        packets = [_packet(0, 0), _packet(1, 1), _packet(2, 2)]
        delivered = channel.transmit(packets)
        assert len(delivered) == 2
        assert channel.log.lost_packets == [1]
        assert channel.log.lost_frames == {1}
        assert channel.log.loss_rate == pytest.approx(1 / 3)

    def test_byte_accounting_includes_transport_header(self):
        channel = Channel(NoLoss())
        channel.transmit([_packet()])
        assert channel.log.bytes_sent == 50 + TRANSPORT_HEADER_BYTES

    def test_reset(self):
        channel = Channel(ScriptedLoss([0]))
        channel.transmit([_packet(0, 0)])
        channel.reset()
        assert channel.log.sent == 0


class TestStructuralRng:
    def test_same_key_same_stream(self):
        a = structural_rng(7, "x", 3).random(4)
        b = structural_rng(7, "x", 3).random(4)
        assert np.array_equal(a, b)

    def test_any_key_component_changes_stream(self):
        base = structural_rng(7, "x", 3).random()
        assert structural_rng(8, "x", 3).random() != base
        assert structural_rng(7, "y", 3).random() != base
        assert structural_rng(7, "x", 4).random() != base


class TestTraceLoss:
    def test_frame_pattern_replays_by_index(self):
        model = TraceLoss.from_loss_rate_pattern(".x.")
        assert model.survives(_packet(0, 0))
        assert not model.survives(_packet(1, 1))
        assert model.survives(_packet(2, 2))
        # Past the trace: default_survives.
        assert model.survives(_packet(9, 9))
        # Frame mode is stateless: re-querying frame 1 needs no reset.
        assert not model.survives(_packet(1, 1))

    def test_packet_mode_consumes_cursor_and_reset_rewinds(self):
        model = TraceLoss([True, False, True], granularity="packet")
        first = [model.survives(_packet(i, 1)) for i in range(5)]
        assert first == [True, False, True, True, True]
        model.reset()
        assert [model.survives(_packet(i, 1)) for i in range(5)] == first

    def test_record_replays_another_model_exactly(self):
        original = UniformLoss(
            plr=0.5, seed=12, protect_first_frame=False, granularity="packet"
        )
        packets = [_packet(i, 1) for i in range(60)]
        fates = [original.survives(p) for p in packets]
        original.reset()
        trace = TraceLoss.record(original, packets)
        assert [trace.survives(p) for p in packets] == fates

    def test_from_plr_series_is_structural(self):
        series = (0.0, 1.0, 0.5, 0.5, 0.2)
        a = TraceLoss.from_plr_series(series, seed=3)
        b = TraceLoss.from_plr_series(series, seed=3)
        assert a.trace == b.trace
        assert a.trace[0] is True  # PLR 0 never drops
        assert a.trace[1] is False  # PLR 1 always drops
        assert TraceLoss.from_plr_series(series, seed=4).trace != a.trace or (
            # different seeds *may* coincide on 5 fates; the distribution
            # check below is the real assertion
            True
        )

    def test_from_plr_series_statistics(self):
        series = [0.3] * 4000
        trace = TraceLoss.from_plr_series(series, seed=1).trace
        loss_rate = 1 - sum(trace) / len(trace)
        assert abs(loss_rate - 0.3) < 0.03

    def test_from_plr_series_validates(self):
        with pytest.raises(ValueError):
            TraceLoss.from_plr_series([0.5, 1.2])

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            TraceLoss.from_loss_rate_pattern("")
        with pytest.raises(ValueError):
            TraceLoss.from_loss_rate_pattern(".x?")

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            TraceLoss([True], granularity="bit")


class TestMarkovBurstLoss:
    def test_steady_state_matches_empirical(self):
        model = MarkovBurstLoss(
            p_enter=0.05, escape=(0.6, 0.4, 0.25), seed=5,
            protect_first_frame=False,
        )
        n = 30_000
        losses = sum(
            not model.survives(_packet(i, 1)) for i in range(n)
        )
        assert abs(losses / n - model.steady_state_loss_rate) < 0.01

    def test_expected_burst_length_matches_empirical(self):
        model = MarkovBurstLoss(
            p_enter=0.05, escape=(0.6, 0.4), seed=8,
            protect_first_frame=False,
        )
        fates = [model.survives(_packet(i, 1)) for i in range(30_000)]
        bursts = []
        run = 0
        for survived in fates:
            if not survived:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        mean = sum(bursts) / len(bursts)
        assert abs(mean - model.expected_burst_length) < 0.15

    def test_single_state_is_geometric(self):
        # k=1 degenerates to Gilbert-Elliott with good_loss=0, bad_loss=1.
        model = MarkovBurstLoss(p_enter=0.1, escape=0.5)
        assert model.burst_states == 1
        assert model.expected_burst_length == pytest.approx(2.0)
        assert model.steady_state_loss_rate == pytest.approx(
            2.0 / (10.0 + 2.0)
        )

    def test_reset_replays_identical_fates(self):
        model = MarkovBurstLoss(p_enter=0.2, escape=(0.5, 0.3), seed=2)
        first = [model.survives(_packet(i, i)) for i in range(500)]
        model.reset()
        second = [model.survives(_packet(i, i)) for i in range(500)]
        assert first == second

    def test_two_instances_same_seed_agree(self):
        a = MarkovBurstLoss(p_enter=0.2, escape=(0.5,), seed=3)
        b = MarkovBurstLoss(p_enter=0.2, escape=(0.5,), seed=3)
        assert [a.survives(_packet(i, i)) for i in range(200)] == [
            b.survives(_packet(i, i)) for i in range(200)
        ]

    def test_burst_deepens_and_never_exceeds_k(self):
        model = MarkovBurstLoss(p_enter=1.0, escape=(0.01, 0.01), seed=0,
                                protect_first_frame=False)
        for i in range(50):
            model.survives(_packet(i, 1))
        assert model._state in (0, 1, 2)

    def test_first_frame_protected_but_chain_advances(self):
        model = MarkovBurstLoss(p_enter=1.0, escape=(0.001,), seed=0)
        assert model.survives(_packet(0, 0))  # protected
        assert not model.survives(_packet(1, 1))  # chain already in burst

    def test_zero_enter_never_drops(self):
        model = MarkovBurstLoss(p_enter=0.0, escape=(0.5,))
        assert model.steady_state_loss_rate == 0.0
        assert all(model.survives(_packet(i, i)) for i in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovBurstLoss(p_enter=1.2, escape=(0.5,))
        with pytest.raises(ValueError):
            MarkovBurstLoss(p_enter=0.1, escape=())
        with pytest.raises(ValueError):
            MarkovBurstLoss(p_enter=0.1, escape=(0.0,))


class TestXorParity:
    def test_parity_recovers_any_single_erasure(self):
        payloads = [b"abcd", b"xy", b"12345", b"zz"]
        packets = [
            Packet(i, 1, i, len(payloads), payloads[i])
            for i in range(len(payloads))
        ]
        parity = xor_parity_payload(packets)
        for erased in range(len(packets)):
            survivors = [p for i, p in enumerate(packets) if i != erased]
            rebuilt = xor_parity_payload(
                [Packet(-1, 1, 0, 1, parity), *survivors]
            )
            assert rebuilt[: len(payloads[erased])] == payloads[erased]


class TestResilienceWrapper:
    def test_fec_recovers_single_loss_window(self):
        # Lose exactly one packet in a 4-packet window; parity survives.
        loss = TraceLoss(
            [True, False, True, True, True], granularity="packet"
        )
        wrapper = ResilienceWrapper(loss, fec_window=4)
        packets = [_packet(i, 1) for i in range(4)]
        delivered = wrapper.transmit(packets)
        assert [p.sequence_number for p in delivered] == [0, 1, 2, 3]
        assert wrapper.log.fec_recovered == 1
        assert wrapper.log.fec_parity_sent == 1
        assert wrapper.log.delivered == 4
        # The rebuilt payload is byte-identical to the original.
        assert delivered[1].payload == packets[1].payload

    def test_fec_cannot_recover_double_loss(self):
        loss = TraceLoss(
            [False, False, True, True, True], granularity="packet"
        )
        wrapper = ResilienceWrapper(loss, fec_window=4)
        delivered = wrapper.transmit([_packet(i, 1) for i in range(4)])
        assert [p.sequence_number for p in delivered] == [2, 3]
        assert wrapper.log.fec_recovered == 0

    def test_fec_lost_parity_recovers_nothing(self):
        loss = TraceLoss(
            [True, False, True, True, False], granularity="packet"
        )
        wrapper = ResilienceWrapper(loss, fec_window=4)
        delivered = wrapper.transmit([_packet(i, 1) for i in range(4)])
        assert [p.sequence_number for p in delivered] == [0, 2, 3]
        assert wrapper.log.fec_recovered == 0

    def test_retx_repairs_within_budget(self):
        # Packet 1 lost, first retry survives.
        loss = TraceLoss(
            [True, False, True, True], granularity="packet"
        )
        wrapper = ResilienceWrapper(loss, retx_limit=2)
        delivered = wrapper.transmit([_packet(i, 1) for i in range(3)])
        assert [p.sequence_number for p in delivered] == [0, 1, 2]
        assert wrapper.log.retransmissions == 1
        assert wrapper.log.deadline_drops == 0

    def test_retx_budget_exhaustion_is_deadline_drop(self):
        loss = TraceLoss([False] * 10, granularity="packet")
        wrapper = ResilienceWrapper(loss, retx_limit=2)
        delivered = wrapper.transmit([_packet(0, 1)])
        assert delivered == []
        assert wrapper.log.retransmissions == 2
        assert wrapper.log.deadline_drops == 1
        assert wrapper.log.lost_packets == [0]

    def test_data_only_sent_delivered_accounting(self):
        loss = TraceLoss([True] * 20, granularity="packet")
        wrapper = ResilienceWrapper(loss, fec_window=2, retx_limit=1)
        packets = [_packet(i, 1) for i in range(4)]
        wrapper.transmit(packets)
        # sent/delivered count data packets only; parity rides in
        # bytes_sent and its own counter.
        assert wrapper.log.sent == 4
        assert wrapper.log.delivered == 4
        assert wrapper.log.fec_parity_sent == 2
        data_bytes = sum(p.size_bytes for p in packets)
        assert wrapper.log.bytes_delivered == data_bytes
        assert wrapper.log.bytes_sent > data_bytes

    def test_degenerate_wrapper_matches_plain_channel(self):
        fates = [True, False, True, False, True]
        plain = Channel(TraceLoss(list(fates), granularity="packet"))
        wrapped = ResilienceWrapper(
            TraceLoss(list(fates), granularity="packet")
        )
        packets = [_packet(i, i) for i in range(5)]
        assert [p.sequence_number for p in plain.transmit(packets)] == [
            p.sequence_number for p in wrapped.transmit(list(packets))
        ]
        assert plain.log.sent == wrapped.log.sent
        assert plain.log.delivered == wrapped.log.delivered
        assert plain.log.bytes_sent == wrapped.log.bytes_sent

    def test_reset_restores_loss_model_and_log(self):
        wrapper = ResilienceWrapper(
            TraceLoss([False, True], granularity="packet"), retx_limit=1
        )
        wrapper.transmit([_packet(0, 1)])
        wrapper.reset()
        assert wrapper.log.sent == 0
        assert wrapper.log.retransmissions == 0
        # The trace cursor rewound: the same fates replay.
        delivered = wrapper.transmit([_packet(0, 1)])
        assert [p.sequence_number for p in delivered] == [0]

    def test_shared_log_is_not_reset(self):
        from repro.network.channel import ChannelLog

        shared = ChannelLog()
        wrapper = ResilienceWrapper(NoLoss(), fec_window=2, log=shared)
        wrapper.transmit([_packet(0, 1)])
        wrapper.reset()
        assert shared.sent == 1  # a scenario channel owns the shared log

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceWrapper(NoLoss(), fec_window=1)
        with pytest.raises(ValueError):
            ResilienceWrapper(NoLoss(), retx_limit=-1)
