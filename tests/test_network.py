"""Unit tests for packetization, loss models and the channel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.network.channel import Channel
from repro.network.loss import (
    GilbertElliottLoss,
    NoLoss,
    ScriptedLoss,
    UniformLoss,
)
from repro.network.packet import (
    DEFAULT_MTU,
    Depacketizer,
    Packet,
    Packetizer,
    TRANSPORT_HEADER_BYTES,
)
from repro.resilience.none import NoResilience

from tests.conftest import small_config, small_sequence


@pytest.fixture(scope="module")
def encoded_frames():
    config = small_config()
    encoder = Encoder(config, NoResilience())
    return config, encoder.encode_sequence(small_sequence(n_frames=5))


def _packet(seq=0, frame=0):
    return Packet(
        sequence_number=seq,
        frame_index=frame,
        fragment_index=0,
        fragments_in_frame=1,
        payload=b"x" * 50,
    )


class TestPacketizer:
    def test_single_packet_when_under_mtu(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=DEFAULT_MTU)
        for ef in frames:
            if ef.size_bytes < DEFAULT_MTU - 100:
                packets = packetizer.packetize(ef)
                assert len(packets) == max(1, len(packets))
                if ef.size_bytes < 1000:
                    assert len(packets) == 1

    def test_fragments_respect_mtu(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=200)
        for ef in frames:
            for packet in packetizer.packetize(ef):
                assert packet.size_bytes <= 200

    def test_fragments_cover_all_macroblocks(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=150)
        from repro.codec.bitstream import BitReader
        from repro.codec.syntax import read_fragment_header

        for ef in frames:
            covered = []
            for packet in packetizer.packetize(ef):
                header = read_fragment_header(BitReader(packet.payload))
                covered.extend(
                    range(header.first_mb, header.first_mb + header.mb_count)
                )
            assert covered == list(range(config.mb_count))

    def test_sequence_numbers_monotone(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=300)
        packets = packetizer.packetize_sequence(frames)
        numbers = [p.sequence_number for p in packets]
        assert numbers == list(range(len(numbers)))

    def test_fragment_metadata(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config, mtu=150)
        packets = packetizer.packetize(frames[0])
        assert all(p.fragments_in_frame == len(packets) for p in packets)
        assert [p.fragment_index for p in packets] == list(range(len(packets)))

    def test_tiny_mtu_rejected(self, encoded_frames):
        config, _ = encoded_frames
        with pytest.raises(ValueError):
            Packetizer(config, mtu=10)

    def test_reset_restarts_sequence(self, encoded_frames):
        config, frames = encoded_frames
        packetizer = Packetizer(config)
        packetizer.packetize(frames[0])
        packetizer.reset()
        packets = packetizer.packetize(frames[0])
        assert packets[0].sequence_number == 0


class TestDepacketizer:
    def test_groups_by_frame(self):
        packets = [_packet(0, 0), _packet(1, 2), _packet(2, 2)]
        groups = Depacketizer().group_by_frame(packets, 3)
        assert len(groups[0]) == 1
        assert len(groups[1]) == 0
        assert len(groups[2]) == 2

    def test_orders_fragments_within_frame(self):
        a = Packet(0, 0, 1, 2, b"second")
        b = Packet(1, 0, 0, 2, b"first")
        groups = Depacketizer().group_by_frame([a, b], 1)
        assert groups[0] == [b"first", b"second"]

    def test_ignores_out_of_range_frames(self):
        groups = Depacketizer().group_by_frame([_packet(0, 99)], 3)
        assert all(not g for g in groups)


class TestUniformLoss:
    def test_zero_plr_drops_nothing(self):
        model = UniformLoss(plr=0.0)
        assert all(model.survives(_packet(i, i)) for i in range(100))

    def test_frame_rate_statistically_matches(self):
        model = UniformLoss(plr=0.3, seed=42, protect_first_frame=False)
        outcomes = [model.survives(_packet(i, i)) for i in range(4000)]
        loss_rate = 1 - sum(outcomes) / len(outcomes)
        assert abs(loss_rate - 0.3) < 0.03

    def test_packet_rate_statistically_matches(self):
        model = UniformLoss(
            plr=0.3, seed=42, protect_first_frame=False, granularity="packet"
        )
        outcomes = [model.survives(_packet(i, 1)) for i in range(4000)]
        loss_rate = 1 - sum(outcomes) / len(outcomes)
        assert abs(loss_rate - 0.3) < 0.03

    def test_frame_granularity_all_fragments_share_fate(self):
        model = UniformLoss(plr=0.5, seed=1, protect_first_frame=False)
        for frame in range(50):
            outcomes = {
                model.survives(Packet(i, frame, i, 3, b"")) for i in range(3)
            }
            assert len(outcomes) == 1

    def test_frame_granularity_order_independent(self):
        model = UniformLoss(plr=0.5, seed=4, protect_first_frame=False)
        forward = [model.survives(_packet(i, i)) for i in range(50)]
        model.reset()
        backward = [
            model.survives(_packet(i, i)) for i in reversed(range(50))
        ]
        assert forward == list(reversed(backward))

    def test_reproducible_with_seed(self):
        a = UniformLoss(plr=0.5, seed=9)
        b = UniformLoss(plr=0.5, seed=9)
        pa = [a.survives(_packet(i, i)) for i in range(200)]
        pb = [b.survives(_packet(i, i)) for i in range(200)]
        assert pa == pb

    def test_reset_replays_packet_mode(self):
        model = UniformLoss(plr=0.5, seed=3, granularity="packet")
        first = [model.survives(_packet(i, 1)) for i in range(100)]
        model.reset()
        second = [model.survives(_packet(i, 1)) for i in range(100)]
        assert first == second

    def test_first_frame_protected(self):
        model = UniformLoss(plr=1.0, seed=0, protect_first_frame=True)
        assert model.survives(_packet(0, 0))
        assert not model.survives(_packet(1, 1))

    def test_rejects_bad_plr(self):
        with pytest.raises(ValueError):
            UniformLoss(plr=1.5)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            UniformLoss(plr=0.1, granularity="bit")


class TestScriptedLoss:
    def test_drops_exactly_listed_frames(self):
        model = ScriptedLoss([2, 5])
        for frame in range(8):
            survived = model.survives(_packet(0, frame))
            assert survived == (frame not in (2, 5))

    def test_all_fragments_of_lost_frame_dropped(self):
        model = ScriptedLoss([3])
        assert not model.survives(Packet(0, 3, 0, 2, b""))
        assert not model.survives(Packet(1, 3, 1, 2, b""))

    def test_rejects_negative_frames(self):
        with pytest.raises(ValueError):
            ScriptedLoss([-1])


class TestGilbertElliott:
    def test_steady_state_rate(self):
        model = GilbertElliottLoss(
            p_good_to_bad=0.1,
            p_bad_to_good=0.4,
            seed=7,
            protect_first_frame=False,
        )
        expected = model.steady_state_loss_rate
        outcomes = [model.survives(_packet(i, 1)) for i in range(8000)]
        measured = 1 - sum(outcomes) / len(outcomes)
        assert abs(measured - expected) < 0.03

    def test_losses_are_bursty(self):
        model = GilbertElliottLoss(
            p_good_to_bad=0.02,
            p_bad_to_good=0.3,
            seed=11,
            protect_first_frame=False,
        )
        outcomes = [model.survives(_packet(i, 1)) for i in range(5000)]
        # Mean burst length of losses must exceed i.i.d. expectation.
        bursts, current = [], 0
        for ok in outcomes:
            if not ok:
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        assert bursts and np.mean(bursts) > 1.5

    def test_reset(self):
        model = GilbertElliottLoss(0.1, 0.4, seed=5, protect_first_frame=False)
        first = [model.survives(_packet(i, 1)) for i in range(100)]
        model.reset()
        second = [model.survives(_packet(i, 1)) for i in range(100)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.5)


class TestChannel:
    def test_lossless_channel_delivers_everything(self):
        channel = Channel(NoLoss())
        packets = [_packet(i, i) for i in range(10)]
        assert channel.transmit(packets) == packets
        assert channel.log.loss_rate == 0.0
        assert channel.log.bytes_sent == channel.log.bytes_delivered

    def test_log_tracks_losses(self):
        channel = Channel(ScriptedLoss([1]))
        packets = [_packet(0, 0), _packet(1, 1), _packet(2, 2)]
        delivered = channel.transmit(packets)
        assert len(delivered) == 2
        assert channel.log.lost_packets == [1]
        assert channel.log.lost_frames == {1}
        assert channel.log.loss_rate == pytest.approx(1 / 3)

    def test_byte_accounting_includes_transport_header(self):
        channel = Channel(NoLoss())
        channel.transmit([_packet()])
        assert channel.log.bytes_sent == 50 + TRANSPORT_HEADER_BYTES

    def test_reset(self):
        channel = Channel(ScriptedLoss([0]))
        channel.transmit([_packet(0, 0)])
        channel.reset()
        assert channel.log.sent == 0
