"""Unit tests for the bit-level writer/reader."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.codec.bitstream import (
    BitReader,
    BitWriter,
    BitstreamError,
    append_bit_slice,
)


class TestBitWriter:
    def test_empty_stream(self):
        writer = BitWriter()
        assert writer.getvalue() == b""
        assert writer.bit_length == 0

    def test_single_bit_padding(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"
        assert writer.bit_length == 1

    def test_exact_byte(self):
        writer = BitWriter()
        writer.write_bits(0xA5, 8)
        assert writer.getvalue() == b"\xa5"

    def test_multibyte_value(self):
        writer = BitWriter()
        writer.write_bits(0x1234, 16)
        assert writer.getvalue() == b"\x12\x34"

    def test_unaligned_values(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0b11111, 5)
        assert writer.getvalue() == bytes([0b10111111])

    def test_rejects_bad_bit(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bit(2)

    def test_rejects_value_too_wide(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_rejects_negative_value(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(-1, 4)

    def test_write_unary(self):
        writer = BitWriter()
        writer.write_unary(3)
        assert writer.getvalue() == bytes([0b00010000])

    def test_unary_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_getvalue_is_idempotent(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        assert writer.getvalue() == writer.getvalue()


class TestBitReader:
    def test_read_bits(self):
        reader = BitReader(b"\xa5")
        assert reader.read_bits(8) == 0xA5

    def test_read_bit_by_bit(self):
        reader = BitReader(b"\x80")
        assert reader.read_bit() == 1
        assert all(reader.read_bit() == 0 for _ in range(7))

    def test_exhaustion_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_overread_raises(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\xff").read_bits(9)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_remaining == 11
        assert reader.bits_consumed == 5

    def test_skip_bits(self):
        reader = BitReader(b"\x0f")
        reader.skip_bits(4)
        assert reader.read_bits(4) == 0xF

    def test_skip_past_end_raises(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\xff").skip_bits(9)

    def test_read_unary(self):
        reader = BitReader(bytes([0b00010000]))
        assert reader.read_unary() == 3

    def test_unary_runaway_guard(self):
        reader = BitReader(b"\x00" * 20)
        with pytest.raises(BitstreamError):
            reader.read_unary(max_zeros=32)


class TestRoundTrip:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=200))
    def test_bit_roundtrip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in bits] == bits

    @given(
        st.lists(
            st.tuples(st.integers(1, 24), st.integers(0, 2**24 - 1)),
            min_size=1,
            max_size=50,
        )
    )
    def test_value_roundtrip(self, pairs):
        pairs = [(w, v % (1 << w)) for w, v in pairs]
        writer = BitWriter()
        for width, value in pairs:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for width, value in pairs:
            assert reader.read_bits(width) == value


class TestAppendBitSlice:
    def test_whole_stream_copy(self):
        source = bytes([0xDE, 0xAD, 0xBE, 0xEF])
        writer = BitWriter()
        append_bit_slice(writer, source, 0, 32)
        assert writer.getvalue() == source

    def test_unaligned_slice(self):
        source = bytes([0b10110100, 0b01101100])
        writer = BitWriter()
        append_bit_slice(writer, source, 3, 7)  # bits 3..9 -> 1010001...
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(7) == 0b1010001

    def test_out_of_range_raises(self):
        from repro.codec.bitstream import BitstreamError

        with pytest.raises(BitstreamError):
            append_bit_slice(BitWriter(), b"\xff", 4, 8)

    def test_negative_args_raise(self):
        with pytest.raises(ValueError):
            append_bit_slice(BitWriter(), b"\xff", -1, 4)

    @given(st.binary(min_size=1, max_size=40), st.data())
    def test_slice_matches_direct_read(self, data, draw):
        total = len(data) * 8
        start = draw.draw(st.integers(0, total))
        length = draw.draw(st.integers(0, total - start))
        writer = BitWriter()
        append_bit_slice(writer, data, start, length)
        out = BitReader(writer.getvalue())
        reference = BitReader(data)
        reference.skip_bits(start)
        for _ in range(length):
            assert out.read_bit() == reference.read_bit()


class BitstreamMachine(RuleBasedStateMachine):
    """Stateful model: whatever sequence of writes is performed, reading
    it back in the same order yields the same values."""

    def __init__(self):
        super().__init__()
        self.writer = BitWriter()
        self.expected = []  # (kind, value, width)

    @rule(bit=st.integers(0, 1))
    def write_bit(self, bit):
        self.writer.write_bit(bit)
        self.expected.append(("bits", bit, 1))

    @rule(width=st.integers(1, 32), data=st.data())
    def write_bits(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        self.writer.write_bits(value, width)
        self.expected.append(("bits", value, width))

    @rule(value=st.integers(0, 2**16))
    def write_ue_value(self, value):
        from repro.codec.entropy import write_ue

        write_ue(self.writer, value)
        self.expected.append(("ue", value, None))

    @rule(value=st.integers(-(2**15), 2**15))
    def write_se_value(self, value):
        from repro.codec.entropy import write_se

        write_se(self.writer, value)
        self.expected.append(("se", value, None))

    @invariant()
    def readback_matches(self):
        from repro.codec.entropy import read_se, read_ue

        reader = BitReader(self.writer.getvalue())
        for kind, value, width in self.expected:
            if kind == "bits":
                assert reader.read_bits(width) == value
            elif kind == "ue":
                assert read_ue(reader) == value
            else:
                assert read_se(reader) == value
        # Only byte-alignment padding may remain.
        assert reader.bits_remaining < 8


TestBitstreamStateMachine = BitstreamMachine.TestCase
