"""Unit tests for the Section 3.2 power-awareness adaptation policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptation import (
    EnergyBudgetController,
    FeedbackIntraThController,
    intra_th_for_plr_change,
)
from repro.core.correctness import refresh_interval


class TestIntraThForPlrChange:
    def test_identity_when_plr_unchanged(self):
        assert intra_th_for_plr_change(0.4, 0.1, 0.1) == pytest.approx(0.4)

    def test_plr_increase_lowers_threshold(self):
        # The paper: rising PLR -> decrease Intra_Th to keep the intra
        # rate similar.
        new_th = intra_th_for_plr_change(0.5, 0.05, 0.2)
        assert new_th < 0.5

    def test_plr_decrease_raises_threshold(self):
        new_th = intra_th_for_plr_change(0.5, 0.2, 0.05)
        assert new_th > 0.5

    def test_preserves_refresh_interval(self):
        old_plr, new_plr, th = 0.1, 0.25, 0.5
        new_th = intra_th_for_plr_change(th, old_plr, new_plr)
        assert refresh_interval(new_plr, new_th) == pytest.approx(
            refresh_interval(old_plr, th), rel=1e-9
        )

    @pytest.mark.parametrize("th", [0.0, 1.0])
    def test_extreme_thresholds_fixed_points(self, th):
        assert intra_th_for_plr_change(th, 0.1, 0.3) == th

    def test_degenerate_plrs_no_change(self):
        assert intra_th_for_plr_change(0.5, 0.0, 0.2) == 0.5
        assert intra_th_for_plr_change(0.5, 0.2, 1.0) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            intra_th_for_plr_change(1.5, 0.1, 0.2)
        with pytest.raises(ValueError):
            intra_th_for_plr_change(0.5, -0.1, 0.2)

    @given(
        th=st.floats(0.01, 0.99),
        old=st.floats(0.01, 0.9),
        new=st.floats(0.01, 0.9),
    )
    @settings(max_examples=100)
    def test_result_always_in_unit_interval(self, th, old, new):
        out = intra_th_for_plr_change(th, old, new)
        assert 0.0 <= out <= 1.0


class TestFeedbackController:
    def test_raises_threshold_when_intra_rate_low(self):
        controller = FeedbackIntraThController(
            intra_th=0.5, target_intra_fraction=0.3, gain=0.1
        )
        new = controller.observe(0.1)
        assert new > 0.5

    def test_lowers_threshold_when_intra_rate_high(self):
        controller = FeedbackIntraThController(
            intra_th=0.5, target_intra_fraction=0.3, gain=0.1
        )
        new = controller.observe(0.8)
        assert new < 0.5

    def test_clamped_to_bounds(self):
        controller = FeedbackIntraThController(
            intra_th=0.98, target_intra_fraction=1.0, gain=0.5, max_th=1.0
        )
        for _ in range(10):
            controller.observe(0.0)
        assert controller.intra_th == 1.0

    def test_at_target_is_stationary(self):
        controller = FeedbackIntraThController(
            intra_th=0.4, target_intra_fraction=0.25, gain=0.1
        )
        assert controller.observe(0.25) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackIntraThController(0.5, target_intra_fraction=2.0)
        with pytest.raises(ValueError):
            FeedbackIntraThController(0.5, 0.3, gain=0.0)
        with pytest.raises(ValueError):
            FeedbackIntraThController(0.5, 0.3, min_th=0.8, max_th=0.2)
        controller = FeedbackIntraThController(0.5, 0.3)
        with pytest.raises(ValueError):
            controller.observe(1.5)


class TestEnergyBudgetController:
    def test_over_budget_raises_threshold(self):
        # More intra refresh = less ME = less energy, so exceeding the
        # budget must push the threshold UP.
        controller = EnergyBudgetController(
            intra_th=0.5, budget_joules_per_frame=0.01
        )
        new = controller.observe_energy(0.02)
        assert new > 0.5

    def test_under_budget_lowers_threshold(self):
        controller = EnergyBudgetController(
            intra_th=0.5, budget_joules_per_frame=0.01
        )
        new = controller.observe_energy(0.005)
        assert new < 0.5

    def test_deadband_holds_threshold(self):
        controller = EnergyBudgetController(
            intra_th=0.5, budget_joules_per_frame=0.01, deadband=0.2
        )
        assert controller.observe_energy(0.0105) == pytest.approx(0.5)
        assert controller.observe_energy(0.0095) == pytest.approx(0.5)

    def test_clamping(self):
        controller = EnergyBudgetController(
            intra_th=0.99, budget_joules_per_frame=0.01, step=0.1
        )
        for _ in range(5):
            controller.observe_energy(1.0)
        assert controller.intra_th == 1.0

    def test_expected_refresh_interval(self):
        controller = EnergyBudgetController(
            intra_th=0.5, budget_joules_per_frame=0.01
        )
        assert controller.expected_refresh_interval(0.1) == pytest.approx(
            refresh_interval(0.1, 0.5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyBudgetController(0.5, budget_joules_per_frame=0.0)
        with pytest.raises(ValueError):
            EnergyBudgetController(0.5, 0.01, step=-1)
        with pytest.raises(ValueError):
            EnergyBudgetController(0.5, 0.01, deadband=-0.1)
        controller = EnergyBudgetController(0.5, 0.01)
        with pytest.raises(ValueError):
            controller.observe_energy(-1.0)
