"""Unit tests for the H.263-style quantizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.quant import (
    COEFF_MAX,
    COEFF_MIN,
    INTRA_DC_STEP,
    LEVEL_MAX,
    dequantize,
    quantize,
)


def _block(fill: int = 0) -> np.ndarray:
    return np.full((1, 8, 8), fill, dtype=np.int64)


class TestQuantize:
    def test_rejects_bad_qp(self):
        for qp in (0, 32, -3):
            with pytest.raises(ValueError):
                quantize(_block(), qp, intra=False)
            with pytest.raises(ValueError):
                dequantize(_block(), qp, intra=False)

    def test_inter_dead_zone_kills_small_coeffs(self):
        qp = 8
        block = _block(qp)  # below the dead zone (< QP/2 + step)
        levels = quantize(block, qp, intra=False)
        assert levels[0, 1:, :].sum() == 0 and levels[0, 0, 1:].sum() == 0

    def test_intra_has_no_dead_zone_beyond_step(self):
        qp = 8
        block = _block(2 * qp)  # exactly one step
        levels = quantize(block, qp, intra=True)
        assert levels[0, 3, 3] == 1

    def test_sign_preserved(self, rng):
        coeffs = rng.integers(-500, 500, size=(4, 8, 8))
        levels = quantize(coeffs, 5, intra=False)
        product = levels.astype(np.int64) * coeffs
        assert (product >= 0).all()

    def test_levels_clamped(self):
        levels = quantize(_block(COEFF_MAX), 1, intra=False)
        assert levels.max() <= LEVEL_MAX

    def test_intra_dc_special_step(self):
        block = _block(0)
        block[0, 0, 0] = 800
        levels = quantize(block, 10, intra=True)
        assert levels[0, 0, 0] == 800 // INTRA_DC_STEP

    def test_intra_dc_clamped_positive(self):
        block = _block(0)  # DC of zero would be illegal in H.263
        levels = quantize(block, 10, intra=True)
        assert levels[0, 0, 0] == 1


class TestDequantize:
    def test_zero_levels_stay_zero(self):
        out = dequantize(np.zeros((1, 8, 8), dtype=np.int32), 7, intra=False)
        assert (out[..., 1:, :] == 0).all()

    def test_h263_reconstruction_formula_odd_qp(self):
        levels = np.zeros((1, 8, 8), dtype=np.int32)
        levels[0, 2, 2] = 3
        out = dequantize(levels, 7, intra=False)
        assert out[0, 2, 2] == 7 * (2 * 3 + 1)

    def test_h263_oddification_even_qp(self):
        levels = np.zeros((1, 8, 8), dtype=np.int32)
        levels[0, 2, 2] = 3
        out = dequantize(levels, 8, intra=False)
        assert out[0, 2, 2] == 8 * (2 * 3 + 1) - 1
        assert out[0, 2, 2] % 2 == 1

    def test_intra_dc_reconstruction(self):
        levels = np.zeros((1, 8, 8), dtype=np.int32)
        levels[0, 0, 0] = 100
        out = dequantize(levels, 12, intra=True)
        assert out[0, 0, 0] == 100 * INTRA_DC_STEP

    def test_output_clamped(self):
        levels = np.full((1, 8, 8), LEVEL_MAX, dtype=np.int32)
        out = dequantize(levels, 31, intra=False)
        assert out.max() <= COEFF_MAX and out.min() >= COEFF_MIN


class TestRoundTripError:
    @pytest.mark.parametrize("qp", [1, 4, 8, 15, 31])
    @pytest.mark.parametrize("intra", [True, False])
    def test_ac_error_bounded_by_step(self, qp, intra, rng):
        coeffs = rng.integers(-1500, 1500, size=(8, 8, 8))
        levels = quantize(coeffs, qp, intra=intra)
        recon = dequantize(levels, qp, intra=intra)
        error = np.abs(recon.astype(np.int64) - coeffs)
        step = 2 * qp
        # AC positions only (DC is special-cased for intra), and only
        # where the level did not clamp.  Truncating quantization with
        # mid-rise reconstruction errs at most ~1 step; the inter dead
        # zone widens the zero bin by another half step.
        ac = np.ones((8, 8), dtype=bool)
        ac[0, 0] = False
        unclamped = np.abs(levels) < LEVEL_MAX
        mask = unclamped & ac[None, :, :]
        bound = 1.5 * step + qp if not intra else step + qp
        assert (error[mask] <= bound).all()

    def test_intra_dc_roundtrip_error(self, rng):
        coeffs = rng.integers(8, 2000, size=(10, 8, 8))
        levels = quantize(coeffs, 10, intra=True)
        recon = dequantize(levels, 10, intra=True)
        dc_err = np.abs(recon[:, 0, 0] - coeffs[:, 0, 0])
        clamped = levels[:, 0, 0] == 254
        assert (dc_err[~clamped] <= INTRA_DC_STEP // 2).all()

    @given(
        arrays(np.int64, (1, 8, 8), elements=st.integers(-2000, 2000)),
        st.integers(1, 31),
        st.booleans(),
    )
    def test_roundtrip_never_flips_sign(self, coeffs, qp, intra):
        levels = quantize(coeffs, qp, intra=intra)
        recon = dequantize(levels, qp, intra=intra)
        ac = recon[..., 1:, 1:] * coeffs[..., 1:, 1:]
        assert (ac >= 0).all()
