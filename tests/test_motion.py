"""Unit tests for the motion estimators and motion compensation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.motion import (
    DiamondSearchMotionEstimator,
    FullSearchMotionEstimator,
    ThreeStepMotionEstimator,
    build_motion_estimator,
    motion_compensate,
)

ESTIMATORS = [
    FullSearchMotionEstimator(7),
    ThreeStepMotionEstimator(7),
    DiamondSearchMotionEstimator(7, early_exit_sad=0),
]


def _textured_frame(rng, h=48, w=64):
    # Strong unique texture so translation recovery is unambiguous.
    return rng.integers(0, 256, size=(h, w)).astype(np.uint8)


def _translate(frame, dy, dx):
    return np.roll(np.roll(frame, dy, axis=0), dx, axis=1)


def _smooth_frame(rng, h=48, w=64):
    # Low-frequency texture: the SAD surface is unimodal, which is the
    # regime gradient searches (TSS, diamond) are designed for.
    field = rng.standard_normal((h + 8, w + 8))
    kernel = np.ones(9) / 9.0
    field = np.apply_along_axis(lambda r: np.convolve(r, kernel, "same"), 0, field)
    field = np.apply_along_axis(lambda r: np.convolve(r, kernel, "same"), 1, field)
    field = field[4 : 4 + h, 4 : 4 + w]
    field = (field - field.min()) / (field.max() - field.min() + 1e-9)
    return (field * 255).astype(np.uint8)


class TestTranslationRecovery:
    @pytest.mark.parametrize("shift", [(0, 0), (2, -3), (-4, 4), (6, 1)])
    def test_full_search_recovers_exactly(self, shift, rng):
        dy, dx = shift
        reference = _textured_frame(rng)
        current = _translate(reference, dy, dx)
        field = FullSearchMotionEstimator(7).estimate(current, reference)
        # current[y] = reference[y - dy], so the motion vector pointing
        # into the reference is the *negated* roll.  Interior
        # macroblocks (away from the wrap-around border) must find it.
        interior = field.mvs[1:-1, 1:-1]
        expected = np.array([-dy, -dx])
        matches = (interior == expected).all(axis=-1)
        assert matches.mean() > 0.9
        assert (field.sads[1:-1, 1:-1][matches[:, :]] == 0).all()

    @pytest.mark.parametrize(
        "estimator",
        [ThreeStepMotionEstimator(7), DiamondSearchMotionEstimator(7, 0)],
        ids=lambda e: type(e).__name__,
    )
    @pytest.mark.parametrize("shift", [(1, -1), (2, 3), (-4, 2)])
    def test_heuristic_search_tracks_smooth_motion(self, estimator, shift, rng):
        # Gradient searches need a well-behaved SAD surface; on smooth
        # content they must land within one pixel of the optimum for
        # most interior macroblocks.
        dy, dx = shift
        reference = _smooth_frame(rng)
        current = _translate(reference, dy, dx)
        field = estimator.estimate(current, reference)
        interior = field.mvs[1:-1, 1:-1]
        expected = np.array([-dy, -dx])
        error = np.abs(interior - expected).max(axis=-1)
        assert np.median(error) <= 1

    @pytest.mark.parametrize("estimator", ESTIMATORS, ids=lambda e: type(e).__name__)
    def test_identical_frames_zero_motion(self, estimator, rng):
        frame = _textured_frame(rng)
        field = estimator.estimate(frame, frame)
        assert (field.mvs == 0).all()
        assert (field.sads == 0).all()


class TestActiveMask:
    @pytest.mark.parametrize("estimator", ESTIMATORS, ids=lambda e: type(e).__name__)
    def test_inactive_blocks_cost_nothing(self, estimator, rng):
        reference = _textured_frame(rng)
        current = _translate(reference, 1, 1)
        active = np.zeros((3, 4), dtype=bool)
        active[1, 2] = True
        field = estimator.estimate(current, reference, active=active)
        assert (field.mvs[~active] == 0).all()
        assert field.candidates_evaluated > 0
        full = estimator.estimate(current, reference)
        assert field.candidates_evaluated < full.candidates_evaluated

    @pytest.mark.parametrize("estimator", ESTIMATORS, ids=lambda e: type(e).__name__)
    def test_all_inactive(self, estimator, rng):
        frame = _textured_frame(rng)
        field = estimator.estimate(
            frame, frame, active=np.zeros((3, 4), dtype=bool)
        )
        assert field.candidates_evaluated == 0
        assert (field.candidates_per_mb == 0).all()


class TestCandidateAccounting:
    def test_full_search_count_exact(self, rng):
        frame = _textured_frame(rng)
        field = FullSearchMotionEstimator(3).estimate(frame, frame)
        assert field.candidates_evaluated == 49 * 12
        assert (field.candidates_per_mb == 49).all()

    def test_per_mb_sums_to_total(self, rng):
        reference = _textured_frame(rng)
        current = _translate(reference, 3, -2)
        for estimator in ESTIMATORS:
            field = estimator.estimate(current, reference)
            assert field.candidates_per_mb.sum() == pytest.approx(
                field.candidates_evaluated, abs=field.mvs.shape[0] * field.mvs.shape[1]
            )

    def test_diamond_early_exit_is_cheap(self, rng):
        frame = _textured_frame(rng)
        est = DiamondSearchMotionEstimator(15, early_exit_sad=100)
        field = est.estimate(frame, frame)
        assert (field.candidates_per_mb == 1).all()

    def test_diamond_cost_scales_with_motion(self, rng):
        reference = _textured_frame(rng)
        est = DiamondSearchMotionEstimator(15, early_exit_sad=100)
        near = est.estimate(_translate(reference, 1, 0), reference)
        far = est.estimate(_translate(reference, 0, 9), reference)
        assert far.candidates_evaluated > near.candidates_evaluated

    def test_diamond_search_cheaper_than_full(self, rng):
        reference = _textured_frame(rng)
        current = _translate(reference, 2, 2)
        diamond = DiamondSearchMotionEstimator(7, early_exit_sad=0)
        full = FullSearchMotionEstimator(7)
        assert (
            diamond.estimate(current, reference).candidates_evaluated
            < full.estimate(current, reference).candidates_evaluated
        )


class TestCostFunction:
    def test_cost_function_steers_choice(self, rng):
        # A cost that forbids the true displacement forces second best.
        reference = _textured_frame(rng)
        current = _translate(reference, 0, 3)

        def veto_true_mv(sad, dy, dx, r, c):
            penalty = np.where((np.asarray(dy) == 0) & (np.asarray(dx) == 3), 1e9, 0.0)
            return sad + penalty

        field = FullSearchMotionEstimator(7).estimate(
            current, reference, cost_function=veto_true_mv
        )
        assert not ((field.mvs[1:-1, 1:-1] == [0, 3]).all(axis=-1)).any()

    def test_reported_sad_is_true_sad(self, rng):
        # Even under a biased cost, `sads` holds the real SAD of the
        # winner, not the biased cost.
        reference = _textured_frame(rng)
        current = _translate(reference, 1, 1)

        def biased(sad, dy, dx, r, c):
            return sad + 1000.0

        field = FullSearchMotionEstimator(3).estimate(
            current, reference, cost_function=biased
        )
        # Constant bias changes nothing; SADs must be the unbiased optima.
        baseline = FullSearchMotionEstimator(3).estimate(current, reference)
        np.testing.assert_array_equal(field.sads, baseline.sads)


class TestValidation:
    def test_mismatched_frames_rejected(self):
        with pytest.raises(ValueError):
            FullSearchMotionEstimator(3).estimate(
                np.zeros((32, 32)), np.zeros((32, 48))
            )

    def test_bad_search_range(self):
        for cls in (FullSearchMotionEstimator, ThreeStepMotionEstimator):
            with pytest.raises(ValueError):
                cls(0)
            with pytest.raises(ValueError):
                cls(16)
        with pytest.raises(ValueError):
            DiamondSearchMotionEstimator(0)

    def test_factory(self):
        assert isinstance(
            build_motion_estimator("full", 7), FullSearchMotionEstimator
        )
        assert isinstance(
            build_motion_estimator("three-step", 7), ThreeStepMotionEstimator
        )
        assert isinstance(
            build_motion_estimator("diamond", 7), DiamondSearchMotionEstimator
        )
        with pytest.raises(ValueError):
            build_motion_estimator("psychic", 7)


class TestMotionCompensate:
    def test_zero_motion_is_identity(self, rng):
        frame = _textured_frame(rng)
        mvs = np.zeros((3, 4, 2), dtype=np.int64)
        np.testing.assert_array_equal(motion_compensate(frame, mvs), frame)

    def test_uniform_shift(self, rng):
        reference = _textured_frame(rng)
        mvs = np.full((3, 4, 2), 2, dtype=np.int64)
        predicted = motion_compensate(reference, mvs)
        np.testing.assert_array_equal(
            predicted[:-2, :-2], reference[2:, 2:]
        )

    def test_edge_padding(self, rng):
        reference = _textured_frame(rng)
        mvs = np.zeros((3, 4, 2), dtype=np.int64)
        mvs[0, 0] = (-5, -5)  # points outside the frame at the corner
        predicted = motion_compensate(reference, mvs)
        # Top-left pixels replicate the frame edge.
        assert predicted[0, 0] == reference[0, 0]

    def test_consistency_with_estimator(self, rng):
        # MC at the estimated vectors must reproduce the estimator's SAD.
        reference = _textured_frame(rng)
        current = _translate(reference, 2, -1)
        field = FullSearchMotionEstimator(7).estimate(current, reference)
        predicted = motion_compensate(reference, field.mvs)
        diff = np.abs(current.astype(np.int64) - predicted.astype(np.int64))
        sads = diff.reshape(3, 16, 4, 16).sum(axis=(1, 3))
        np.testing.assert_array_equal(sads, field.sads)

    def test_bad_field_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            motion_compensate(_textured_frame(rng), np.zeros((2, 2, 2)))
