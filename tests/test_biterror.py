"""Tests for the bit-error channel and decoder robustness under it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.biterror import PROTECTED_HEADER_BYTES, BitErrorChannel
from repro.network.loss import NoLoss
from repro.network.packet import Packet
from repro.resilience.none import NoResilience
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.core.pbpair import PBPAIRConfig
from repro.sim.pipeline import SimulationConfig, simulate

from tests.conftest import small_config, small_sequence


def _packet(payload: bytes, frame=1) -> Packet:
    return Packet(0, frame, 0, 1, payload)


class TestBitErrorChannel:
    def test_zero_ber_is_identity(self):
        channel = BitErrorChannel(ber=0.0)
        payload = bytes(range(64))
        out = channel.corrupt([_packet(payload)])
        assert out[0].payload == payload

    def test_flip_rate_statistical(self):
        channel = BitErrorChannel(ber=0.05, seed=3, protect_header=False)
        payload = bytes(4000)
        out = channel.corrupt([_packet(payload)])[0].payload
        flipped = np.unpackbits(np.frombuffer(out, dtype=np.uint8)).sum()
        assert abs(flipped / (len(payload) * 8) - 0.05) < 0.01

    def test_header_protected(self):
        channel = BitErrorChannel(ber=1.0, protect_header=True)
        payload = bytes(range(32))
        out = channel.corrupt([_packet(payload)])[0].payload
        assert out[:PROTECTED_HEADER_BYTES] == payload[:PROTECTED_HEADER_BYTES]
        assert out[PROTECTED_HEADER_BYTES:] != payload[PROTECTED_HEADER_BYTES:]

    def test_first_frame_protected(self):
        channel = BitErrorChannel(ber=1.0)
        payload = bytes(range(32))
        out = channel.corrupt([_packet(payload, frame=0)])[0].payload
        assert out == payload

    def test_metadata_preserved(self):
        channel = BitErrorChannel(ber=0.5, seed=1, protect_header=False)
        packet = Packet(9, 3, 1, 2, bytes(100))
        out = channel.corrupt([packet])[0]
        assert (out.sequence_number, out.frame_index, out.fragment_index) == (
            9,
            3,
            1,
        )

    def test_reset_replays(self):
        channel = BitErrorChannel(ber=0.3, seed=8, protect_header=False)
        payload = bytes(200)
        first = channel.corrupt([_packet(payload)])[0].payload
        channel.reset()
        second = channel.corrupt([_packet(payload)])[0].payload
        assert first == second

    def test_rejects_bad_ber(self):
        with pytest.raises(ValueError):
            BitErrorChannel(ber=1.5)


class TestEndToEndUnderBitErrors:
    def test_pipeline_survives_corruption(self):
        clip = small_sequence(n_frames=8)
        result = simulate(
            clip,
            NoResilience(),
            NoLoss(),
            SimulationConfig(codec=small_config()),
            bit_errors=BitErrorChannel(ber=0.002, seed=4),
        )
        assert result.n_frames == len(clip)
        assert np.isfinite(result.average_psnr_decoder)

    def test_corruption_degrades_quality(self):
        clip = small_sequence(n_frames=10)
        config = SimulationConfig(codec=small_config())
        clean = simulate(clip, NoResilience(), NoLoss(), config)
        dirty = simulate(
            clip,
            NoResilience(),
            NoLoss(),
            config,
            bit_errors=BitErrorChannel(ber=0.003, seed=4),
        )
        assert dirty.average_psnr_decoder < clean.average_psnr_decoder

    def test_refresh_bounds_desync_damage_lifetime(self):
        # The paper's VLC-desync motivation: a corrupted frame's damage
        # persists under plain predictive coding but is cleaned up by
        # intra refresh.  Corrupt exactly one frame (5) and compare the
        # damage remaining in the final frames.  (Comparing *totals*
        # under a fixed BER would be misleading: the refresh scheme's
        # larger stream absorbs proportionally more bit flips.)
        class SingleFrameCorruption(BitErrorChannel):
            def corrupt(self, packets):
                out = []
                for packet in packets:
                    if packet.frame_index == 5:
                        out.extend(super().corrupt([packet]))
                    else:
                        out.append(packet)
                return out

        clip = small_sequence(n_frames=16)
        config = SimulationConfig(codec=small_config())

        def tail_damage(strategy):
            result = simulate(
                clip,
                strategy,
                NoLoss(),
                config,
                bit_errors=SingleFrameCorruption(ber=0.02, seed=9),
            )
            assert result.frames[5].bad_pixels > 0  # the hit landed
            return sum(r.bad_pixels for r in result.frames[12:])

        no_tail = tail_damage(NoResilience())
        pbpair_tail = tail_damage(
            PBPAIRStrategy(PBPAIRConfig(intra_th=0.95, plr=0.2))
        )
        assert pbpair_tail < no_tail
