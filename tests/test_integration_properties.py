"""Cross-module integration properties.

Invariants that only hold when every layer cooperates: determinism of
whole runs, lossless transparency across the full feature matrix,
loss-rate monotonicity, and the big behavioural contrasts the paper is
built on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.types import CodecConfig
from repro.network.loss import NoLoss, UniformLoss
from repro.network.packet import Packetizer
from repro.resilience.registry import build_strategy
from repro.sim.pipeline import SimulationConfig, simulate

from tests.conftest import small_config, small_sequence
from tests.test_chroma import chroma_sequence

SCHEME_SPECS = [
    ("NO", {}),
    ("GOP-2", {}),
    ("AIR-3", {}),
    ("PGOP-1", {}),
    ("PBPAIR", dict(intra_th=0.9, plr=0.2)),
]

FEATURE_CONFIGS = [
    dict(),
    dict(half_pel=True),
    dict(allow_skip=True),
    dict(motion_search="three-step"),
    dict(motion_search="full", search_range=4),
    dict(use_fixed_point_dct=False),
    dict(half_pel=True, allow_skip=True),
]


class TestLosslessTransparencyMatrix:
    @pytest.mark.parametrize(
        "spec,kwargs", SCHEME_SPECS, ids=[s for s, _ in SCHEME_SPECS]
    )
    @pytest.mark.parametrize(
        "features",
        FEATURE_CONFIGS,
        ids=["plain", "halfpel", "skip", "tss", "full", "floatdct", "hp+skip"],
    )
    def test_decoder_bit_exact_for_every_combination(self, spec, kwargs, features):
        """Every scheme x codec-feature combination must round-trip:
        without loss, the decoder reproduces the encoder's
        reconstruction bit for bit."""
        config = small_config(**features)
        sequence = small_sequence(n_frames=4)
        encoder = Encoder(config, build_strategy(spec, **kwargs))
        decoder = Decoder(config)
        packetizer = Packetizer(config)
        reference = None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            assert result.received.all()
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            reference = result.frame


class TestDeterminism:
    def test_simulate_is_reproducible(self):
        clip = small_sequence(n_frames=8)
        config = SimulationConfig(codec=small_config())

        def run():
            return simulate(
                clip,
                build_strategy("PBPAIR", intra_th=0.9, plr=0.2),
                UniformLoss(plr=0.2, seed=5),
                config,
            )

        a, b = run(), run()
        assert a.psnr_series() == b.psnr_series()
        assert a.size_series() == b.size_series()
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_long_run_no_encoder_decoder_drift(self):
        # 24 frames lossless: any mismatch between the encoder's and
        # decoder's arithmetic would accumulate into visible drift.
        config = small_config()
        sequence = small_sequence(n_frames=24)
        encoder = Encoder(config, build_strategy("NO"))
        decoder = Decoder(config)
        packetizer = Packetizer(config)
        reference = None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            reference = result.frame


class TestLossMonotonicity:
    def test_quality_degrades_with_loss_rate(self):
        clip = small_sequence(n_frames=12)
        config = SimulationConfig(codec=small_config())
        bad_pixels = []
        for plr in (0.0, 0.15, 0.45):
            totals = []
            for seed in (1, 2, 3):
                result = simulate(
                    clip,
                    build_strategy("NO"),
                    UniformLoss(plr=plr, seed=seed),
                    config,
                )
                totals.append(result.total_bad_pixels)
            bad_pixels.append(float(np.mean(totals)))
        assert bad_pixels[0] < bad_pixels[1] < bad_pixels[2]

    def test_energy_independent_of_channel(self):
        # The encoder never sees the channel: its work (and thus its
        # energy) must be identical whatever the loss pattern.
        clip = small_sequence(n_frames=8)
        config = SimulationConfig(codec=small_config())
        runs = [
            simulate(
                clip,
                build_strategy("PBPAIR", intra_th=0.9, plr=0.2),
                loss,
                config,
            )
            for loss in (NoLoss(), UniformLoss(plr=0.5, seed=9))
        ]
        assert runs[0].counters.as_dict() == runs[1].counters.as_dict()
        assert runs[0].energy_joules == runs[1].energy_joules


class TestPaperContrasts:
    def test_resilience_beats_no_under_loss_all_schemes(self):
        clip = small_sequence(n_frames=16)
        config = SimulationConfig(codec=small_config())

        def total_bad(spec, kwargs):
            totals = 0
            for seed in (2, 3, 4):
                result = simulate(
                    clip,
                    build_strategy(spec, **kwargs),
                    UniformLoss(plr=0.25, seed=seed),
                    config,
                )
                totals += result.total_bad_pixels
            return totals

        no_bad = total_bad("NO", {})
        for spec, kwargs in SCHEME_SPECS[1:]:
            assert total_bad(spec, kwargs) < no_bad, spec

    def test_pre_me_schemes_do_less_me_work(self):
        clip = small_sequence(n_frames=10)
        config = SimulationConfig(codec=small_config())

        def sad_work(spec, kwargs):
            result = simulate(clip, build_strategy(spec, **kwargs), NoLoss(), config)
            return result.counters.sad_blocks

        no_work = sad_work("NO", {})
        assert sad_work("PGOP-1", {}) < no_work
        assert sad_work("PBPAIR", dict(intra_th=0.95, plr=0.3)) < no_work
        # AIR decides after ME: approximately the same search work.
        assert abs(sad_work("AIR-3", {}) - no_work) < 0.1 * no_work
