"""Unit and property tests for the correctness matrix (formulas 1-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.types import MacroblockMode
from repro.core.correctness import (
    CorrectnessMatrix,
    approximate_sigma,
    min_sigma_related,
    refresh_interval,
    similarity_from_sad,
)

ROWS, COLS = 3, 4


def _modes(intra_mask: np.ndarray) -> np.ndarray:
    return np.where(
        intra_mask,
        np.full(intra_mask.shape, MacroblockMode.INTRA, dtype=object),
        np.full(intra_mask.shape, MacroblockMode.INTER, dtype=object),
    )


def _zero_mvs() -> np.ndarray:
    return np.zeros((ROWS, COLS, 2), dtype=np.int64)


class TestSimilarity:
    def test_identical_blocks_give_one(self):
        sims = similarity_from_sad(np.zeros((2, 2)))
        assert (sims == 1.0).all()

    def test_large_difference_gives_zero(self):
        sims = similarity_from_sad(np.full((2, 2), 256 * 255))
        assert (sims == 0.0).all()

    def test_linear_in_between(self):
        sad = np.array([[256 * 32.0]])  # mean abs diff of 32 at scale 64
        assert similarity_from_sad(sad)[0, 0] == pytest.approx(0.5)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            similarity_from_sad(np.zeros((1, 1)), scale=0)


class TestApproximation:
    def test_formula_three(self):
        assert approximate_sigma(0.1, 0) == 1.0
        assert approximate_sigma(0.1, 1) == pytest.approx(0.9)
        assert approximate_sigma(0.1, 10) == pytest.approx(0.9**10)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            approximate_sigma(1.5, 1)
        with pytest.raises(ValueError):
            approximate_sigma(0.5, -1)

    def test_refresh_interval_matches_formula(self):
        n = refresh_interval(0.1, 0.5)
        assert approximate_sigma(0.1, int(np.floor(n))) >= 0.5
        assert approximate_sigma(0.1, int(np.ceil(n)) + 1) < 0.5

    def test_refresh_interval_edge_cases(self):
        assert refresh_interval(0.0, 0.5) == float("inf")
        assert refresh_interval(0.1, 1.0) == 0.0
        assert refresh_interval(0.1, 0.0) == float("inf")

    def test_refresh_interval_monotone_in_plr(self):
        assert refresh_interval(0.2, 0.5) < refresh_interval(0.05, 0.5)


class TestMinSigmaRelated:
    def test_zero_motion_is_identity(self):
        sigma = np.linspace(0.1, 1.0, ROWS * COLS).reshape(ROWS, COLS)
        out = min_sigma_related(sigma, _zero_mvs())
        np.testing.assert_allclose(out, sigma)

    def test_positive_displacement_takes_neighbour_minimum(self):
        sigma = np.ones((ROWS, COLS))
        sigma[1, 2] = 0.2
        mvs = _zero_mvs()
        mvs[1, 1] = (0, 5)  # points right: overlaps (1,1) and (1,2)
        out = min_sigma_related(sigma, mvs)
        assert out[1, 1] == pytest.approx(0.2)

    def test_diagonal_overlap_includes_corner(self):
        sigma = np.ones((ROWS, COLS))
        sigma[2, 3] = 0.1
        mvs = _zero_mvs()
        mvs[1, 2] = (3, 3)  # overlaps (1,2),(1,3),(2,2),(2,3)
        out = min_sigma_related(sigma, mvs)
        assert out[1, 2] == pytest.approx(0.1)

    def test_edge_clamping(self):
        sigma = np.ones((ROWS, COLS))
        mvs = _zero_mvs()
        mvs[0, 0] = (-5, -5)  # points out of frame
        out = min_sigma_related(sigma, mvs)
        assert out[0, 0] == pytest.approx(1.0)

    def test_rejects_oversized_mv(self):
        mvs = _zero_mvs()
        mvs[0, 0] = (16, 0)
        with pytest.raises(ValueError):
            min_sigma_related(np.ones((ROWS, COLS)), mvs)

    def test_result_never_exceeds_own_sigma(self, rng):
        sigma = rng.uniform(0, 1, size=(ROWS, COLS))
        mvs = rng.integers(-7, 8, size=(ROWS, COLS, 2))
        out = min_sigma_related(sigma, mvs)
        assert (out <= sigma + 1e-12).all()


class TestCorrectnessMatrix:
    def test_starts_error_free(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        assert (matrix.sigma == 1.0).all()

    def test_sigma_view_is_readonly(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        with pytest.raises(ValueError):
            matrix.sigma[0, 0] = 0.5

    def test_intra_formula_two(self):
        # One update of an intra MB with similarity s from sigma=1:
        # sigma' = (1 - a) + a * s * 1.
        matrix = CorrectnessMatrix(ROWS, COLS)
        similarity = np.full((ROWS, COLS), 0.5)
        matrix.update(0.2, _modes(np.ones((ROWS, COLS), bool)), _zero_mvs(), similarity)
        assert matrix.sigma[0, 0] == pytest.approx(0.8 + 0.2 * 0.5)

    def test_inter_formula_one_zero_motion(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        similarity = np.full((ROWS, COLS), 0.25)
        intra_none = np.zeros((ROWS, COLS), bool)
        matrix.update(0.1, _modes(intra_none), _zero_mvs(), similarity)
        # sigma' = 0.9 * 1 + 0.1 * 0.25 * 1
        assert matrix.sigma[1, 1] == pytest.approx(0.925)
        matrix.update(0.1, _modes(intra_none), _zero_mvs(), similarity)
        expected = 0.9 * 0.925 + 0.1 * 0.25 * 0.925
        assert matrix.sigma[1, 1] == pytest.approx(expected)

    def test_matches_formula_three_without_similarity(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        zero_sim = np.zeros((ROWS, COLS))
        intra_none = np.zeros((ROWS, COLS), bool)
        for k in range(1, 6):
            matrix.update(0.15, _modes(intra_none), _zero_mvs(), zero_sim)
            np.testing.assert_allclose(
                matrix.sigma, approximate_sigma(0.15, k), rtol=1e-12
            )

    def test_intra_refresh_raises_sigma(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        zero_sim = np.zeros((ROWS, COLS))
        intra_none = np.zeros((ROWS, COLS), bool)
        for _ in range(10):
            matrix.update(0.2, _modes(intra_none), _zero_mvs(), zero_sim)
        low = matrix.sigma[0, 0]
        refresh = np.zeros((ROWS, COLS), bool)
        refresh[0, 0] = True
        matrix.update(0.2, _modes(refresh), _zero_mvs(), zero_sim)
        assert matrix.sigma[0, 0] > low
        assert matrix.sigma[0, 0] == pytest.approx(0.8)

    def test_motion_propagates_low_sigma(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        # Manufacture one damaged MB via targeted decay.
        zero_sim = np.zeros((ROWS, COLS))
        intra_all_but = np.ones((ROWS, COLS), bool)
        intra_all_but[1, 1] = False
        for _ in range(8):
            matrix.update(0.3, _modes(intra_all_but), _zero_mvs(), zero_sim)
        weak = matrix.sigma[1, 1]
        assert weak < matrix.sigma[0, 0]
        # Now an inter MB at (1,2) references (1,1): it inherits weakness.
        mvs = _zero_mvs()
        mvs[1, 2] = (0, -8)
        modes = _modes(np.zeros((ROWS, COLS), bool))
        matrix.update(0.0, modes, mvs, zero_sim)
        assert matrix.sigma[1, 2] == pytest.approx(weak)

    def test_reset(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        matrix.update(
            0.5,
            _modes(np.zeros((ROWS, COLS), bool)),
            _zero_mvs(),
            np.zeros((ROWS, COLS)),
        )
        matrix.reset()
        assert (matrix.sigma == 1.0).all()

    def test_validation(self):
        matrix = CorrectnessMatrix(ROWS, COLS)
        with pytest.raises(ValueError):
            matrix.update(
                1.5,
                _modes(np.zeros((ROWS, COLS), bool)),
                _zero_mvs(),
                np.zeros((ROWS, COLS)),
            )
        with pytest.raises(ValueError):
            matrix.update(
                0.1,
                _modes(np.zeros((ROWS, COLS), bool)),
                _zero_mvs(),
                np.full((ROWS, COLS), 2.0),
            )
        with pytest.raises(ValueError):
            CorrectnessMatrix(0, 5)

    @given(
        plr=st.floats(0.0, 1.0),
        sim=st.floats(0.0, 1.0),
        steps=st.integers(1, 12),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_sigma_stays_in_unit_interval(self, plr, sim, steps, seed):
        rng = np.random.default_rng(seed)
        matrix = CorrectnessMatrix(ROWS, COLS)
        for _ in range(steps):
            intra = rng.random((ROWS, COLS)) < 0.3
            mvs = rng.integers(-7, 8, size=(ROWS, COLS, 2))
            matrix.update(plr, _modes(intra), mvs, np.full((ROWS, COLS), sim))
            assert (matrix.sigma >= 0.0).all() and (matrix.sigma <= 1.0).all()

    @given(plr=st.floats(0.01, 0.5), steps=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_all_inter_no_similarity_is_monotone_decreasing(self, plr, steps):
        matrix = CorrectnessMatrix(ROWS, COLS)
        previous = matrix.sigma.copy()
        for _ in range(steps):
            matrix.update(
                plr,
                _modes(np.zeros((ROWS, COLS), bool)),
                _zero_mvs(),
                np.zeros((ROWS, COLS)),
            )
            assert (matrix.sigma <= previous + 1e-12).all()
            previous = matrix.sigma.copy()
