"""Unit tests for frames, sequences, synthetic generators and raw I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.frame import Frame, VideoSequence, MB_SIZE, QCIF_HEIGHT, QCIF_WIDTH
from repro.video.io import (
    read_raw_luma,
    write_pgm,
    write_ppm,
    write_raw_luma,
    yuv420_to_rgb,
)
from repro.video.synthetic import (
    SEQUENCE_GENERATORS,
    SyntheticConfig,
    akiyo_like,
    foreman_like,
    garden_like,
    generate_sequence,
)


class TestFrame:
    def test_valid_frame(self, rng):
        pixels = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        frame = Frame(pixels, 3)
        assert frame.width == 64 and frame.height == 48
        assert frame.mb_rows == 3 and frame.mb_cols == 4
        assert frame.index == 3

    def test_macroblock_extraction(self, rng):
        pixels = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        frame = Frame(pixels)
        mb = frame.macroblock(2, 3)
        np.testing.assert_array_equal(mb, pixels[32:48, 48:64])
        with pytest.raises(IndexError):
            frame.macroblock(3, 0)

    def test_rejects_bad_dtype(self):
        with pytest.raises(TypeError):
            Frame(np.zeros((48, 64), dtype=np.float64))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Frame(np.zeros((50, 64), dtype=np.uint8))
        with pytest.raises(ValueError):
            Frame(np.zeros((48, 64, 3), dtype=np.uint8))

    def test_with_index(self, rng):
        frame = Frame(rng.integers(0, 256, (16, 16)).astype(np.uint8), 0)
        assert frame.with_index(7).index == 7


class TestVideoSequence:
    def test_from_arrays(self, rng):
        arrays = [rng.integers(0, 256, (16, 32)).astype(np.uint8) for _ in range(4)]
        seq = VideoSequence.from_arrays(arrays, name="x", fps=25)
        assert len(seq) == 4
        assert [f.index for f in seq] == [0, 1, 2, 3]
        assert seq.width == 32 and seq.fps == 25

    def test_rejects_mixed_sizes(self, rng):
        frames = (
            Frame(np.zeros((16, 16), dtype=np.uint8), 0),
            Frame(np.zeros((16, 32), dtype=np.uint8), 1),
        )
        with pytest.raises(ValueError):
            VideoSequence(frames)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VideoSequence(())

    def test_clip(self, sequence):
        clipped = sequence.clip(3)
        assert len(clipped) == 3
        with pytest.raises(ValueError):
            sequence.clip(0)


class TestSyntheticGenerators:
    def test_deterministic(self):
        a = foreman_like(n_frames=5, seed=3)
        b = foreman_like(n_frames=5, seed=3)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa.pixels, fb.pixels)

    def test_different_seeds_differ(self):
        a = foreman_like(n_frames=3, seed=1)
        b = foreman_like(n_frames=3, seed=2)
        assert (a[0].pixels != b[0].pixels).any()

    def test_qcif_dimensions(self):
        seq = akiyo_like(n_frames=2)
        assert seq.width == QCIF_WIDTH and seq.height == QCIF_HEIGHT

    def test_registry_names(self):
        assert set(SEQUENCE_GENERATORS) == {"foreman", "akiyo", "garden"}
        for name, gen in SEQUENCE_GENERATORS.items():
            seq = gen(2)
            assert seq.name == name

    def test_motion_profiles_ordered(self):
        """akiyo < foreman < garden in temporal activity (the property
        the paper's sequence choice is built on)."""

        def activity(seq):
            total = 0
            for a, b in zip(seq.frames, seq.frames[1:]):
                total += np.abs(
                    a.pixels.astype(np.int64) - b.pixels.astype(np.int64)
                ).mean()
            return total / (len(seq) - 1)

        akiyo = activity(akiyo_like(n_frames=12))
        foreman = activity(foreman_like(n_frames=12))
        garden = activity(garden_like(n_frames=12))
        assert akiyo < foreman < garden

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(width=50)
        with pytest.raises(ValueError):
            SyntheticConfig(n_frames=0)
        with pytest.raises(ValueError):
            SyntheticConfig(texture_drift=-1)
        with pytest.raises(ValueError):
            SyntheticConfig(camera_jitter=-0.5)

    def test_custom_size(self):
        seq = generate_sequence(
            SyntheticConfig(width=64, height=48, n_frames=2), name="tiny"
        )
        assert seq.width == 64 and seq.height == 48

    def test_pixels_are_uint8_full_range_safe(self):
        seq = garden_like(n_frames=3)
        for frame in seq:
            assert frame.pixels.dtype == np.uint8


class TestRawIO:
    def test_roundtrip(self, tmp_path, sequence):
        path = tmp_path / "clip.yuv"
        written = write_raw_luma(sequence, path)
        assert written == len(sequence) * sequence.width * sequence.height
        loaded = read_raw_luma(
            path, sequence.width, sequence.height, name="clip"
        )
        assert len(loaded) == len(sequence)
        for a, b in zip(sequence, loaded):
            np.testing.assert_array_equal(a.pixels, b.pixels)

    def test_max_frames(self, tmp_path, sequence):
        path = tmp_path / "clip.yuv"
        write_raw_luma(sequence, path)
        loaded = read_raw_luma(path, sequence.width, sequence.height, max_frames=2)
        assert len(loaded) == 2

    def test_rejects_partial_file(self, tmp_path):
        path = tmp_path / "bad.yuv"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            read_raw_luma(path, 64, 48)

    def test_default_name_from_stem(self, tmp_path, sequence):
        path = tmp_path / "foreman.yuv"
        write_raw_luma(sequence, path)
        loaded = read_raw_luma(path, sequence.width, sequence.height)
        assert loaded.name == "foreman"


class TestImageWriters:
    def _colour_frame(self, rng):
        luma = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        cb = rng.integers(0, 256, (24, 32)).astype(np.uint8)
        cr = rng.integers(0, 256, (24, 32)).astype(np.uint8)
        return Frame(luma, 0, cb, cr)

    def test_pgm_header_and_size(self, tmp_path, rng):
        frame = Frame(rng.integers(0, 256, (48, 64)).astype(np.uint8), 0)
        path = tmp_path / "out.pgm"
        write_pgm(frame, path)
        data = path.read_bytes()
        assert data.startswith(b"P5\n64 48\n255\n")
        assert len(data) == len(b"P5\n64 48\n255\n") + 48 * 64

    def test_ppm_header_and_size(self, tmp_path, rng):
        frame = self._colour_frame(rng)
        path = tmp_path / "out.ppm"
        write_ppm(frame, path)
        data = path.read_bytes()
        assert data.startswith(b"P6\n64 48\n255\n")
        assert len(data) == len(b"P6\n64 48\n255\n") + 48 * 64 * 3

    def test_rgb_conversion_grey_point(self):
        luma = np.full((16, 16), 77, dtype=np.uint8)
        neutral = np.full((8, 8), 128, dtype=np.uint8)
        rgb = yuv420_to_rgb(Frame(luma, 0, neutral, neutral))
        # Neutral chroma: R = G = B = Y.
        assert (rgb == 77).all()

    def test_rgb_conversion_red_shift(self):
        luma = np.full((16, 16), 128, dtype=np.uint8)
        cb = np.full((8, 8), 128, dtype=np.uint8)
        cr = np.full((8, 8), 200, dtype=np.uint8)
        rgb = yuv420_to_rgb(Frame(luma, 0, cb, cr))
        assert rgb[0, 0, 0] > rgb[0, 0, 1]  # red above green
        assert rgb[0, 0, 0] > rgb[0, 0, 2]  # red above blue

    def test_rgb_requires_chroma(self, rng):
        frame = Frame(rng.integers(0, 256, (16, 16)).astype(np.uint8), 0)
        with pytest.raises(ValueError):
            yuv420_to_rgb(frame)


class TestSyntheticChroma:
    def test_chroma_planes_generated(self):
        seq = generate_sequence(
            SyntheticConfig(width=64, height=48, n_frames=3, chroma=True),
            name="c",
        )
        assert seq.has_chroma
        for frame in seq:
            assert frame.cb.shape == (24, 32)
            assert frame.cr.dtype == np.uint8

    def test_chroma_deterministic(self):
        cfg = SyntheticConfig(
            width=64, height=48, n_frames=3, chroma=True, seed=9
        )
        a = generate_sequence(cfg, name="a")
        b = generate_sequence(cfg, name="b")
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa.cb, fb.cb)
            np.testing.assert_array_equal(fa.cr, fb.cr)

    def test_object_tints_chroma(self):
        cfg = SyntheticConfig(
            width=64,
            height=48,
            n_frames=1,
            chroma=True,
            object_radius=12,
            object_motion_amplitude=4.0,
            seed=3,
        )
        frame = generate_sequence(cfg, name="t")[0]
        # The warm foreground tint raises Cr around the object centre
        # relative to the frame's background mean.
        centre = frame.cr[10:16, 12:20].astype(np.float64).mean()
        background = frame.cr[:4, :].astype(np.float64).mean()
        assert centre > background + 5

    def test_luma_only_by_default(self):
        seq = generate_sequence(
            SyntheticConfig(width=64, height=48, n_frames=2), name="g"
        )
        assert not seq.has_chroma

    def test_chroma_pans_with_luma(self):
        cfg = SyntheticConfig(
            width=64,
            height=48,
            n_frames=4,
            chroma=True,
            pan_speed=4.0,
            sensor_noise=0.0,
            seed=5,
        )
        seq = generate_sequence(cfg, name="p")
        # Panning moves the chroma field too: consecutive Cb planes
        # differ, and frame 0 shifted by 2 (half of 4 px at 4:2:0)
        # matches frame 1 better than unshifted.
        a = seq[1].cb.astype(np.int64)
        b = seq[2].cb.astype(np.int64)
        unshifted = np.abs(a - b).mean()
        shifted = np.abs(a[:, 2:] - b[:, :-2]).mean()
        assert shifted < unshifted
