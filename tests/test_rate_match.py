"""Matched-bitrate comparison API: RateMatchSpec, the deprecated shim,
rate-aware cache keys and grid determinism under rate control."""

from __future__ import annotations

import pickle

import pytest

from repro.codec.rate import RateControlConfig
from repro.sim.experiment import (
    CalibrationResult,
    RateMatchSpec,
    calibrate_intra_th,
    match_intra_th_to_size,
)
from repro.sim.pipeline import SimulationConfig
from repro.sim.runner import (
    JobSpec,
    RunnerOptions,
    encode_stream_key,
    run_grid,
)

from repro.video.synthetic import SyntheticConfig

from tests.conftest import SMALL_H, SMALL_W, small_config, small_sequence

TINY_CLIP = SyntheticConfig(
    width=SMALL_W,
    height=SMALL_H,
    n_frames=8,
    texture_scale=30.0,
    object_radius=10,
    object_motion_amplitude=10.0,
    object_motion_period=8,
    seed=11,
)


@pytest.fixture(scope="module")
def clip():
    return small_sequence(n_frames=10)


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(codec=small_config())


class TestRateMatchSpec:
    def test_default_schemes_are_the_figure_legend(self):
        match = RateMatchSpec(target_kbps=200.0)
        assert match.schemes == ("NO", "GOP-3", "AIR-24", "PGOP-3", "PBPAIR")

    def test_schemes_normalised_to_tuple(self):
        match = RateMatchSpec(target_kbps=200.0, schemes=["NO", "PBPAIR"])
        assert match.schemes == ("NO", "PBPAIR")

    def test_validation(self):
        with pytest.raises(ValueError):
            RateMatchSpec(target_kbps=200.0, schemes=())
        with pytest.raises(ValueError):
            RateMatchSpec(target_kbps=-1.0)
        with pytest.raises(ValueError):
            RateMatchSpec(target_kbps=200.0, sensitivity=0.0)

    def test_jobs_share_one_rate_config(self, sim_config):
        match = RateMatchSpec(target_kbps=200.0)
        jobs = match.jobs(plr=0.1, config=sim_config)
        assert [job.scheme for job in jobs] == list(match.schemes)
        assert len({job.rate for job in jobs}) == 1
        assert jobs[0].rate == match.rate_config()

    def test_pbpair_kwargs_only_reach_pbpair(self, sim_config):
        match = RateMatchSpec(target_kbps=200.0, schemes=("NO", "PBPAIR"))
        jobs = match.jobs(
            plr=0.1, config=sim_config, pbpair_kwargs={"intra_th": 0.8}
        )
        assert jobs[0].pbpair_kwargs == {}
        assert jobs[1].pbpair_kwargs == {"intra_th": 0.8}


class TestDeprecatedShim:
    def test_shim_warns_and_delegates(self, clip, sim_config):
        calibrated = calibrate_intra_th(
            clip, 6000, plr=0.1, config=sim_config, max_iterations=2
        )
        with pytest.warns(DeprecationWarning, match="RateMatchSpec"):
            shimmed = match_intra_th_to_size(
                clip, 6000, plr=0.1, config=sim_config, max_iterations=2
            )
        assert isinstance(shimmed, CalibrationResult)
        assert float(shimmed) == float(calibrated)

    def test_calibrate_does_not_warn(self, clip, sim_config):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            calibrate_intra_th(
                clip, 6000, plr=0.1, config=sim_config, max_iterations=1
            )


class TestCalibrationResultStats:
    """The float subclass keeps its calibration-cost stats pinned."""

    def test_stats_present_and_consistent(self, clip, sim_config):
        result = calibrate_intra_th(
            clip, 6000, plr=0.1, config=sim_config, max_iterations=3
        )
        assert result.probes >= 1
        assert result.unique_encodes + result.cache_hits == result.probes
        assert result.saved_encodes == result.probes - result.unique_encodes

    def test_float_semantics_preserved(self):
        result = CalibrationResult(0.5, probes=4, unique_encodes=3,
                                   cache_hits=1)
        assert result == 0.5 and result * 2 == 1.0
        assert f"{result:.3f}" == "0.500"
        assert isinstance(result + 0.0, float)

    def test_stats_survive_pickling(self):
        result = CalibrationResult(0.5, probes=4, unique_encodes=3,
                                   cache_hits=1)
        clone = pickle.loads(pickle.dumps(result))
        assert float(clone) == 0.5
        assert (clone.probes, clone.unique_encodes, clone.cache_hits) == (
            4, 3, 1,
        )


class TestRateAwareCacheKeys:
    def test_job_hash_changes_with_rate(self, sim_config):
        base = JobSpec(scheme="NO", plr=0.1, channel_seed=0,
                       sequence="foreman", n_frames=8, config=sim_config)
        rated = JobSpec(scheme="NO", plr=0.1, channel_seed=0,
                        sequence="foreman", n_frames=8, config=sim_config,
                        rate=RateControlConfig(target_kbps=200.0))
        assert base.content_hash() != rated.content_hash()

    def test_job_hash_changes_with_rate_parameters(self, sim_config):
        def spec(kbps):
            return JobSpec(
                scheme="NO", plr=0.1, channel_seed=0, sequence="foreman",
                n_frames=8, config=sim_config,
                rate=RateControlConfig(target_kbps=kbps),
            )

        assert spec(200.0).content_hash() != spec(300.0).content_hash()
        assert spec(200.0).content_hash() == spec(200.0).content_hash()

    def test_stream_key_changes_with_rate(self, sim_config):
        def key(rate):
            return encode_stream_key(
                sequence=("foreman", 8), scheme="NO", strategy_kwargs={},
                config=sim_config, rate=rate,
            )

        off = key(None)
        on = key(RateControlConfig(target_kbps=200.0))
        other = key(RateControlConfig(target_kbps=300.0))
        assert len({off, on, other}) == 3
        assert key(RateControlConfig(target_kbps=200.0)) == on


class TestRateControlledGrid:
    def _jobs(self, sim_config, rate=None):
        return [
            JobSpec(
                scheme=scheme, plr=0.1, channel_seed=3, sequence="tiny",
                synthetic=TINY_CLIP, config=sim_config, rate=rate,
            )
            for scheme in ("NO", "GOP-3", "PBPAIR")
        ]

    def test_run_level_rate_applies_to_bare_specs(self, sim_config):
        rate = RateControlConfig(target_kbps=100.0)
        jobs = self._jobs(sim_config)
        options = RunnerOptions(jobs=1, use_cache=False, rate=rate)
        results = run_grid(jobs, options=options)
        assert all(r.ok for r in results)
        assert all(r.spec.rate == rate for r in results)

    def test_spec_level_rate_wins_over_run_level(self, sim_config):
        spec_rate = RateControlConfig(target_kbps=120.0)
        run_rate = RateControlConfig(target_kbps=480.0)
        jobs = self._jobs(sim_config, rate=spec_rate)
        results = run_grid(
            jobs, options=RunnerOptions(jobs=1, use_cache=False,
                                        rate=run_rate)
        )
        assert all(r.spec.rate == spec_rate for r in results)

    def test_serial_and_pooled_grids_agree_under_rate(self, sim_config):
        rate = RateControlConfig(target_kbps=150.0)
        jobs = self._jobs(sim_config, rate=rate)
        serial = run_grid(
            jobs, options=RunnerOptions(jobs=1, use_cache=False)
        )
        pooled = run_grid(
            jobs, options=RunnerOptions(jobs=2, use_cache=False)
        )
        for a, b in zip(serial, pooled):
            assert a.ok and b.ok
            assert a.result.total_bytes == b.result.total_bytes
            assert a.result.average_psnr_decoder == pytest.approx(
                b.result.average_psnr_decoder
            )

    def test_rate_changes_the_encode(self, sim_config):
        free = run_grid(
            self._jobs(sim_config),
            options=RunnerOptions(jobs=1, use_cache=False),
        )
        squeezed = run_grid(
            self._jobs(
                sim_config, rate=RateControlConfig(target_kbps=50.0)
            ),
            options=RunnerOptions(jobs=1, use_cache=False),
        )
        assert sum(r.result.total_bytes for r in squeezed) < sum(
            r.result.total_bytes for r in free
        )
