"""Unit tests for Exp-Golomb codes and run-level block coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.bitstream import BitReader, BitWriter, BitstreamError
from repro.codec.entropy import (
    decode_block,
    decode_blocks,
    encode_block,
    encode_blocks,
    read_se,
    read_ue,
    run_level_events,
    write_se,
    write_ue,
)
from repro.codec.zigzag import zigzag_order


class TestExpGolomb:
    @pytest.mark.parametrize(
        "value,expected_bits",
        [(0, "1"), (1, "010"), (2, "011"), (3, "00100"), (7, "0001000")],
    )
    def test_known_ue_codewords(self, value, expected_bits):
        writer = BitWriter()
        write_ue(writer, value)
        assert writer.bit_length == len(expected_bits)
        reader = BitReader(writer.getvalue())
        got = "".join(str(reader.read_bit()) for _ in expected_bits)
        assert got == expected_bits

    def test_ue_rejects_negative(self):
        with pytest.raises(ValueError):
            write_ue(BitWriter(), -1)

    @given(st.integers(0, 2**20))
    def test_ue_roundtrip(self, value):
        writer = BitWriter()
        write_ue(writer, value)
        assert read_ue(BitReader(writer.getvalue())) == value

    @given(st.integers(-(2**18), 2**18))
    def test_se_roundtrip(self, value):
        writer = BitWriter()
        write_se(writer, value)
        assert read_se(BitReader(writer.getvalue())) == value

    def test_se_mapping_order(self):
        # H.264 mapping: 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4 ...
        lengths = []
        for value in (0, 1, -1, 2, -2):
            writer = BitWriter()
            write_se(writer, value)
            lengths.append(writer.bit_length)
        assert lengths == sorted(lengths)

    def test_corrupt_prefix_raises(self):
        with pytest.raises(BitstreamError):
            read_ue(BitReader(b"\x00" * 10))


class TestRunLevelEvents:
    def test_all_zero_block(self):
        assert run_level_events(np.zeros(64, dtype=np.int32)) == []

    def test_single_dc(self):
        vec = np.zeros(64, dtype=np.int32)
        vec[0] = 5
        assert run_level_events(vec) == [(0, 5, True)]

    def test_runs_counted(self):
        vec = np.zeros(64, dtype=np.int32)
        vec[0], vec[3], vec[63] = 1, -2, 7
        assert run_level_events(vec) == [
            (0, 1, False),
            (2, -2, False),
            (59, 7, True),
        ]


class TestBlockCoding:
    def test_zero_block_is_one_bit(self):
        writer = BitWriter()
        encode_block(writer, np.zeros((8, 8), dtype=np.int32))
        assert writer.bit_length == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            encode_block(BitWriter(), np.zeros((4, 4), dtype=np.int32))

    def test_roundtrip_dense_block(self, rng):
        block = rng.integers(-30, 30, size=(8, 8)).astype(np.int32)
        writer = BitWriter()
        encode_block(writer, block)
        decoded = decode_block(BitReader(writer.getvalue()))
        np.testing.assert_array_equal(decoded, block)

    @given(
        arrays(
            np.int32,
            (8, 8),
            elements=st.integers(-120, 120),
        )
    )
    def test_roundtrip_property(self, block):
        writer = BitWriter()
        encode_block(writer, block)
        decoded = decode_block(BitReader(writer.getvalue()))
        np.testing.assert_array_equal(decoded, block)

    def test_multi_block_roundtrip(self, rng):
        blocks = rng.integers(-50, 50, size=(6, 8, 8)).astype(np.int32)
        writer = BitWriter()
        encode_blocks(writer, blocks)
        decoded = decode_blocks(BitReader(writer.getvalue()), 6)
        np.testing.assert_array_equal(decoded, blocks)

    def test_sparse_block_is_compact(self):
        block = np.zeros((8, 8), dtype=np.int32)
        block[0, 0] = 3
        writer = BitWriter()
        encode_block(writer, block)
        assert writer.bit_length < 16

    def test_truncated_stream_raises(self, rng):
        block = rng.integers(-30, 30, size=(8, 8)).astype(np.int32)
        writer = BitWriter()
        encode_block(writer, block)
        data = writer.getvalue()
        with pytest.raises(BitstreamError):
            # Drop the final bytes: the run-level chain never sees LAST.
            decode_block(BitReader(data[: max(1, len(data) // 2)]))

    def test_zigzag_clusters_trailing_zeros(self):
        # A low-frequency-only block must produce very few events.
        block = np.zeros((8, 8), dtype=np.int32)
        block[0, 0], block[0, 1], block[1, 0] = 10, 5, -5
        vec = block.reshape(-1)[zigzag_order()]
        events = run_level_events(vec)
        assert len(events) == 3
        assert all(run == 0 for run, _, _ in events)
