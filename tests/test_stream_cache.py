"""ResultCache byte-budget LRU and the two-level EncodedStreamCache."""

from __future__ import annotations

import os

import pytest

from repro.resilience.registry import build_strategy
from repro.sim.pipeline import SimulationConfig, encode_phase
from repro.sim.runner import EncodedStreamCache, ResultCache

from tests.conftest import small_config, small_sequence


def _stream(gop: int = 2):
    return encode_phase(
        small_sequence(4),
        build_strategy(f"GOP-{gop}"),
        SimulationConfig(codec=small_config()),
    )


def _age(cache: ResultCache, key: str, seconds_ago: float) -> None:
    """Backdate an entry's mtime so LRU ordering is deterministic."""
    path = cache.path_for(key)
    stat = path.stat()
    os.utime(path, (stat.st_atime, stat.st_mtime - seconds_ago))


class TestResultCacheLRU:
    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(20):
            cache.put(f"k{i}", b"x" * 1024)
        assert len(cache) == 20
        assert cache.evictions == 0

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)

    def test_evicts_stalest_first(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=4096)
        cache.put("old", b"x" * 1500)
        _age(cache, "old", 100)
        cache.put("mid", b"x" * 1500)
        _age(cache, "mid", 50)
        cache.put("new", b"x" * 1500)
        assert "old" not in cache
        assert "mid" in cache and "new" in cache
        assert cache.evictions == 1

    def test_never_evicts_just_written_entry(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=64)
        cache.put("huge", b"x" * 4096)
        assert "huge" in cache  # over budget, but kept
        assert cache.get("huge") == b"x" * 4096
        cache.put("huge2", b"x" * 4096)
        assert "huge2" in cache
        assert "huge" not in cache  # the *previous* entry pays

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=4096)
        cache.put("a", b"x" * 1500)
        cache.put("b", b"x" * 1500)
        _age(cache, "a", 100)
        _age(cache, "b", 50)
        assert cache.get("a") is not None  # touch: a becomes most recent
        cache.put("c", b"x" * 1500)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"value": 1})
        cache.path_for("k").write_bytes(b"not a pickle")
        assert cache.get("k") is None
        assert "k" not in cache
        assert cache.misses == 1


class TestEncodedStreamCache:
    def test_rejects_nonpositive_max_entries(self):
        with pytest.raises(ValueError, match="max_entries"):
            EncodedStreamCache(max_entries=0)

    def test_memory_only_get_or_encode(self):
        cache = EncodedStreamCache()
        calls = {"n": 0}

        def encode():
            calls["n"] += 1
            return _stream()

        first, reused_a = cache.get_or_encode("k", encode)
        second, reused_b = cache.get_or_encode("k", encode)
        assert (reused_a, reused_b) == (False, True)
        assert second is first
        assert calls["n"] == 1
        assert (cache.encodes, cache.hits, cache.misses) == (1, 1, 1)

    def test_memory_lru_evicts_oldest(self):
        cache = EncodedStreamCache(max_entries=2)
        streams = {name: _stream() for name in ("a", "b", "c")}
        cache.put("a", streams["a"])
        cache.put("b", streams["b"])
        assert cache.get("a") is streams["a"]  # refresh: b is now oldest
        cache.put("c", streams["c"])
        assert cache.get("b") is None
        assert cache.get("a") is streams["a"]
        assert cache.get("c") is streams["c"]

    def test_disk_round_trip_across_instances(self, tmp_path):
        writer = EncodedStreamCache(tmp_path / "streams")
        stream = _stream()
        writer.put("k", stream)

        reader = EncodedStreamCache(tmp_path / "streams")
        loaded = reader.get("k")
        assert loaded is not None
        assert loaded.n_frames == stream.n_frames
        assert [
            [p.payload for p in frame.packets] for frame in loaded.frames
        ] == [[p.payload for p in frame.packets] for frame in stream.frames]
        assert reader.hits == 1

    def test_disk_eviction_falls_back_to_reencode(self, tmp_path):
        cache = EncodedStreamCache(
            tmp_path / "streams", max_entries=1, max_bytes=1
        )
        cache.put("a", _stream(2))
        cache.put("b", _stream(3))  # evicts a's disk entry and memory slot
        assert cache.disk.evictions == 1
        fresh, reused = cache.get_or_encode("a", lambda: _stream(2))
        assert reused is False
        assert fresh.n_frames == 4

    def test_corrupt_disk_entry_recovers(self, tmp_path):
        cache = EncodedStreamCache(tmp_path / "streams")
        cache.put("k", _stream())
        cache._memory.clear()
        cache.disk.path_for("k").write_bytes(b"garbage")
        stream, reused = cache.get_or_encode("k", _stream)
        assert reused is False
        assert stream.n_frames == 4

    def test_non_stream_disk_value_is_ignored(self, tmp_path):
        """A foreign pickle under our key must not be served as a stream."""
        cache = EncodedStreamCache(tmp_path / "streams")
        cache.disk.put("k", {"not": "a stream"})
        assert cache.get("k") is None
