"""Unit tests for the float and fixed-point DCTs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.dct import (
    dct_basis,
    forward_dct,
    forward_dct_float,
    forward_dct_int,
    inverse_dct,
    inverse_dct_float,
    inverse_dct_int,
)


class TestBasis:
    def test_orthonormal(self):
        basis = dct_basis()
        np.testing.assert_allclose(basis @ basis.T, np.eye(8), atol=1e-12)

    def test_dc_row_is_constant(self):
        basis = dct_basis()
        np.testing.assert_allclose(basis[0], np.full(8, np.sqrt(1 / 8)))


class TestFloatDCT:
    def test_roundtrip_identity(self, rng):
        blocks = rng.uniform(-255, 255, size=(10, 8, 8))
        back = inverse_dct_float(forward_dct_float(blocks))
        np.testing.assert_allclose(back, blocks, atol=1e-9)

    def test_constant_block_energy_in_dc(self):
        block = np.full((8, 8), 100.0)
        coeffs = forward_dct_float(block)[0]
        assert coeffs[0, 0] == pytest.approx(800.0)
        assert np.abs(coeffs).sum() == pytest.approx(800.0)

    def test_parseval_energy_preserved(self, rng):
        block = rng.uniform(-128, 128, size=(1, 8, 8))
        coeffs = forward_dct_float(block)
        assert np.sum(block**2) == pytest.approx(np.sum(coeffs**2))

    def test_single_block_2d_input_accepted(self, rng):
        block = rng.uniform(0, 255, size=(8, 8))
        out = forward_dct_float(block)
        assert out.shape == (1, 8, 8)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            forward_dct_float(np.zeros((8, 7)))
        with pytest.raises(ValueError):
            forward_dct_float(np.zeros((2, 8, 7)))

    def test_linearity(self, rng):
        a = rng.uniform(-50, 50, size=(3, 8, 8))
        b = rng.uniform(-50, 50, size=(3, 8, 8))
        lhs = forward_dct_float(a + b)
        rhs = forward_dct_float(a) + forward_dct_float(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)


class TestFixedPointDCT:
    def test_close_to_float_forward(self, rng):
        blocks = rng.integers(-255, 256, size=(20, 8, 8))
        int_out = forward_dct_int(blocks)
        float_out = forward_dct_float(blocks.astype(np.float64))
        assert np.abs(int_out - float_out).max() <= 2.0

    def test_roundtrip_error_within_two_levels(self, rng):
        blocks = rng.integers(0, 256, size=(30, 8, 8))
        back = inverse_dct_int(forward_dct_int(blocks))
        assert np.abs(back - blocks).max() <= 2

    @given(
        arrays(np.int64, (2, 8, 8), elements=st.integers(-255, 255))
    )
    def test_roundtrip_property(self, blocks):
        back = inverse_dct_int(forward_dct_int(blocks))
        assert np.abs(back - blocks).max() <= 3

    def test_integer_output_dtype(self, rng):
        out = forward_dct_int(rng.integers(0, 256, size=(2, 8, 8)))
        assert np.issubdtype(out.dtype, np.integer)

    def test_constant_block(self):
        coeffs = forward_dct_int(np.full((1, 8, 8), 128, dtype=np.int64))[0]
        assert abs(int(coeffs[0, 0]) - 1024) <= 1
        assert np.abs(coeffs).sum() - abs(coeffs[0, 0]) <= 4


class TestDispatch:
    def test_forward_dispatch(self, rng):
        blocks = rng.integers(0, 256, size=(4, 8, 8))
        np.testing.assert_array_equal(
            forward_dct(blocks, fixed_point=True), forward_dct_int(blocks)
        )
        np.testing.assert_allclose(
            forward_dct(blocks, fixed_point=False),
            forward_dct_float(blocks.astype(np.float64)),
        )

    def test_inverse_dispatch(self, rng):
        coeffs = rng.integers(-500, 500, size=(4, 8, 8))
        np.testing.assert_array_equal(
            inverse_dct(coeffs, fixed_point=True), inverse_dct_int(coeffs)
        )
