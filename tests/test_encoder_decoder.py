"""Integration tests for the encoder/decoder pair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.types import FrameType, MacroblockMode
from repro.network.packet import Packetizer
from repro.metrics.psnr import psnr
from repro.resilience.gop import GOPStrategy
from repro.resilience.none import NoResilience

from tests.conftest import small_config, small_sequence


def _decode_all(config, encoded_frames, packetizer=None):
    """Decode a lossless stream; returns the decoder-side frames."""
    decoder = Decoder(config)
    packetizer = packetizer or Packetizer(config)
    reference = None
    out = []
    for ef in encoded_frames:
        packets = packetizer.packetize(ef)
        result = decoder.decode_frame(
            [p.payload for p in packets], reference, expected_index=ef.frame_index
        )
        assert result.received.all()
        reference = result.frame
        out.append(result)
    return out


class TestLosslessRoundTrip:
    def test_decoder_matches_encoder_reconstruction(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoded = encoder.encode_sequence(sequence)
        decoded = _decode_all(codec_config, encoded)
        for ef, dr in zip(encoded, decoded):
            np.testing.assert_array_equal(dr.frame, ef.reconstruction)

    def test_reconstruction_quality_reasonable(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            assert psnr(frame.pixels, ef.reconstruction) > 28.0

    def test_first_frame_is_intra(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        ef = encoder.encode_frame(sequence[0])
        assert ef.frame_type is FrameType.I
        assert ef.stats.intra_mbs == codec_config.mb_count

    def test_decoded_modes_match_encoder_decisions(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoded = encoder.encode_sequence(sequence)
        decoded = _decode_all(codec_config, encoded)
        for ef, dr in zip(encoded, decoded):
            decoder_modes = [
                dr.modes[r, c]
                for r in range(codec_config.mb_rows)
                for c in range(codec_config.mb_cols)
            ]
            encoder_modes = [d.mode for d in ef.decisions]
            assert decoder_modes == encoder_modes

    def test_small_mtu_fragmentation_is_transparent(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoded = encoder.encode_sequence(sequence)
        tiny = Packetizer(codec_config, mtu=128)
        decoded = _decode_all(codec_config, encoded, tiny)
        for ef, dr in zip(encoded, decoded):
            np.testing.assert_array_equal(dr.frame, ef.reconstruction)

    def test_fixed_vs_float_dct_both_roundtrip(self, sequence):
        for fixed in (True, False):
            config = small_config(use_fixed_point_dct=fixed)
            encoder = Encoder(config, NoResilience())
            encoded = encoder.encode_sequence(sequence.clip(3))
            decoded = _decode_all(config, encoded)
            for ef, dr in zip(encoded, decoded):
                np.testing.assert_array_equal(dr.frame, ef.reconstruction)


class TestEncoderInvariants:
    def test_stats_consistency(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            assert ef.stats.intra_mbs + ef.stats.inter_mbs == codec_config.mb_count
            assert ef.stats.bits == ef.mb_bit_offsets[-1]
            assert len(ef.payload) == (ef.stats.bits + 7) // 8
            assert len(ef.decisions) == codec_config.mb_count
            assert len(ef.mb_bit_offsets) == codec_config.mb_count + 1

    def test_offsets_monotone(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        ef = encoder.encode_frame(sequence[0])
        offsets = np.array(ef.mb_bit_offsets)
        assert (np.diff(offsets) > 0).all()

    def test_counters_accumulate(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.encode_frame(sequence[0])
        after_one = encoder.counters.copy()
        encoder.encode_frame(sequence[1])
        assert encoder.counters.dct_blocks > after_one.dct_blocks
        assert encoder.counters.entropy_bits > after_one.entropy_bits

    def test_i_frame_skips_all_me(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.encode_frame(sequence[0])
        assert encoder.counters.sad_blocks == 0

    def test_wrong_frame_size_rejected(self, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        big = small_sequence(n_frames=1, width=96, height=64)
        with pytest.raises(ValueError):
            encoder.encode_frame(big[0])

    def test_reset_forgets_reference(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.encode_frame(sequence[0])
        encoder.encode_frame(sequence[1])
        encoder.reset()
        ef = encoder.encode_frame(sequence[2])
        assert ef.frame_type is FrameType.I

    def test_p_frames_mostly_inter_on_static_content(
        self, still_sequence, codec_config
    ):
        encoder = Encoder(codec_config, NoResilience())
        encoded = encoder.encode_sequence(still_sequence)
        for ef in encoded[1:]:
            assert ef.frame_type is FrameType.P
            assert ef.stats.inter_mbs == codec_config.mb_count

    def test_p_frame_smaller_than_i_frame(self, still_sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoded = encoder.encode_sequence(still_sequence)
        assert encoded[1].size_bytes < encoded[0].size_bytes / 2


class TestDecoderRobustness:
    def test_no_fragments_returns_concealment_seed(self, sequence, codec_config):
        decoder = Decoder(codec_config)
        reference = np.full(
            (codec_config.height, codec_config.width), 55, dtype=np.uint8
        )
        result = decoder.decode_frame([], reference, expected_index=4)
        assert not result.received.any()
        np.testing.assert_array_equal(result.frame, reference)
        assert result.frame_index == 4

    def test_no_fragments_no_reference_gives_grey(self, codec_config):
        decoder = Decoder(codec_config)
        result = decoder.decode_frame([], None)
        assert (result.frame == 128).all()

    def test_corrupt_payload_salvages_prefix(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        ef = encoder.encode_frame(sequence[0])
        packets = Packetizer(codec_config).packetize(ef)
        payload = bytearray(packets[0].payload)
        payload = payload[: len(payload) * 2 // 3]  # truncate: VLC desync
        decoder = Decoder(codec_config)
        result = decoder.decode_frame([bytes(payload)], None, expected_index=0)
        received = result.received.reshape(-1)
        assert received.any() and not received.all()
        # Received macroblocks form a prefix in raster order.
        first_lost = int(np.argmin(received))
        assert not received[first_lost:].any()

    def test_garbage_fragment_ignored(self, codec_config):
        decoder = Decoder(codec_config)
        result = decoder.decode_frame([b"\x00\x01\x02"], None)
        assert not result.received.any()

    def test_mv_out_of_range_stops_fragment(self, sequence, codec_config):
        # A fragment claiming an absurd motion vector must not crash or
        # read out of bounds; the decoder abandons the fragment.
        from repro.codec.bitstream import BitWriter
        from repro.codec.syntax import FragmentHeader, write_fragment_header
        from repro.codec.entropy import write_se

        writer = BitWriter()
        write_fragment_header(
            writer,
            FragmentHeader(1, FrameType.P, codec_config.quantizer, 0, 1),
        )
        writer.write_bit(0)  # inter mode
        write_se(writer, 2000)
        write_se(writer, 0)
        for _ in range(4):
            writer.write_bit(0)  # empty blocks
        decoder = Decoder(codec_config)
        reference = np.zeros(
            (codec_config.height, codec_config.width), dtype=np.uint8
        )
        result = decoder.decode_frame([writer.getvalue()], reference)
        assert not result.received.any()

    def test_fragment_beyond_mb_count_ignored(self, codec_config):
        from repro.codec.bitstream import BitWriter
        from repro.codec.syntax import FragmentHeader, write_fragment_header

        writer = BitWriter()
        write_fragment_header(
            writer,
            FragmentHeader(0, FrameType.I, 5, codec_config.mb_count - 1, 5),
        )
        decoder = Decoder(codec_config)
        result = decoder.decode_frame([writer.getvalue()], None)
        assert not result.received.any()

    def test_wrong_reference_shape_rejected(self, codec_config):
        decoder = Decoder(codec_config)
        with pytest.raises(ValueError):
            decoder.decode_frame([], np.zeros((8, 8), dtype=np.uint8))


class TestGOPFrames:
    def test_gop_cadence(self, sequence, codec_config):
        encoder = Encoder(codec_config, GOPStrategy(p_frames=2))
        encoded = encoder.encode_sequence(sequence)
        types = [ef.frame_type for ef in encoded]
        expected = [
            FrameType.I if i % 3 == 0 else FrameType.P for i in range(len(types))
        ]
        assert types == expected

    def test_i_frames_larger_than_p_frames(self, sequence, codec_config):
        encoder = Encoder(codec_config, GOPStrategy(p_frames=2))
        encoded = encoder.encode_sequence(sequence)
        i_sizes = [ef.size_bytes for ef in encoded if ef.frame_type is FrameType.I]
        p_sizes = [ef.size_bytes for ef in encoded if ef.frame_type is FrameType.P]
        assert min(i_sizes) > max(p_sizes)
