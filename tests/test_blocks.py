"""Unit tests for frame/macroblock/block reshaping helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.blocks import (
    blocks_to_macroblocks,
    colocated_sad,
    frame_to_macroblocks,
    macroblocks_to_blocks,
    macroblocks_to_frame,
    sad_self,
)


class TestFrameMacroblockReshape:
    def test_roundtrip(self, rng):
        frame = rng.integers(0, 256, size=(48, 64))
        mbs = frame_to_macroblocks(frame)
        assert mbs.shape == (3, 4, 16, 16)
        np.testing.assert_array_equal(macroblocks_to_frame(mbs), frame)

    def test_block_placement(self):
        frame = np.zeros((32, 32), dtype=np.int64)
        frame[16:32, 16:32] = 7
        mbs = frame_to_macroblocks(frame)
        assert (mbs[1, 1] == 7).all()
        assert mbs[0, 0].sum() == 0

    def test_rejects_non_multiple_dims(self):
        with pytest.raises(ValueError):
            frame_to_macroblocks(np.zeros((30, 32)))

    @given(
        arrays(np.int64, (32, 48), elements=st.integers(0, 255))
    )
    @settings(max_examples=25)
    def test_roundtrip_property(self, frame):
        np.testing.assert_array_equal(
            macroblocks_to_frame(frame_to_macroblocks(frame)), frame
        )


class TestMacroblockBlockReshape:
    def test_roundtrip(self, rng):
        mbs = rng.integers(0, 256, size=(2, 3, 16, 16))
        blocks = macroblocks_to_blocks(mbs)
        assert blocks.shape == (2, 3, 4, 8, 8)
        np.testing.assert_array_equal(blocks_to_macroblocks(blocks), mbs)

    def test_h263_block_order(self):
        mb = np.zeros((16, 16), dtype=np.int64)
        mb[:8, :8] = 1  # top-left
        mb[:8, 8:] = 2  # top-right
        mb[8:, :8] = 3  # bottom-left
        mb[8:, 8:] = 4  # bottom-right
        blocks = macroblocks_to_blocks(mb)
        assert [int(blocks[i, 0, 0]) for i in range(4)] == [1, 2, 3, 4]

    def test_batch_axis_preserved(self, rng):
        mbs = rng.integers(0, 256, size=(5, 16, 16))
        blocks = macroblocks_to_blocks(mbs)
        assert blocks.shape == (5, 4, 8, 8)


class TestSadSelf:
    def test_constant_macroblock_is_zero(self):
        frame = np.full((32, 32), 77, dtype=np.uint8)
        assert (sad_self(frame) == 0).all()

    def test_high_variance_means_high_sad(self, rng):
        flat = np.full((16, 32), 100, dtype=np.uint8)
        noisy = np.concatenate(
            [flat[:, :16], rng.integers(0, 256, (16, 16)).astype(np.uint8)],
            axis=1,
        )
        sads = sad_self(noisy)
        assert sads[0, 0] == 0
        assert sads[0, 1] > 5000

    def test_shape(self, rng):
        frame = rng.integers(0, 256, size=(48, 80)).astype(np.uint8)
        assert sad_self(frame).shape == (3, 5)


class TestColocatedSad:
    def test_identical_frames_zero(self, rng):
        frame = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        assert (colocated_sad(frame, frame) == 0).all()

    def test_counts_differences_per_block(self):
        a = np.zeros((32, 32), dtype=np.uint8)
        b = a.copy()
        b[0, 0] = 10  # only MB (0,0) differs
        sads = colocated_sad(a, b)
        assert sads[0, 0] == 10
        assert sads.sum() == 10

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            colocated_sad(np.zeros((32, 32)), np.zeros((32, 48)))

    def test_symmetry(self, rng):
        a = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        b = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        np.testing.assert_array_equal(colocated_sad(a, b), colocated_sad(b, a))
