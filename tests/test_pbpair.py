"""Unit tests for the PBPAIR controller and its strategy adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.codec.types import MacroblockMode
from repro.core.pbpair import PBPAIRConfig, PBPAIRController
from repro.resilience.pbpair_strategy import PBPAIRStrategy

from tests.conftest import small_config, small_sequence

ROWS, COLS = 3, 4


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(intra_th=-0.1),
            dict(intra_th=1.1),
            dict(plr=-0.5),
            dict(plr=2.0),
            dict(loss_penalty_per_pixel=-1.0),
            dict(similarity_scale=0.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            PBPAIRConfig(**kwargs)

    def test_defaults_valid(self):
        config = PBPAIRConfig()
        assert 0 <= config.intra_th <= 1


class TestModeSelection:
    def test_fresh_state_selects_nothing(self):
        controller = PBPAIRController(PBPAIRConfig(intra_th=0.9), ROWS, COLS)
        assert not controller.select_intra_macroblocks().any()

    def test_threshold_one_selects_everything(self):
        controller = PBPAIRController(PBPAIRConfig(intra_th=1.0), ROWS, COLS)
        # sigma == 1 < 1.0 is false; but after any decay all qualify.
        modes = np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object)
        controller.update_after_frame(
            modes,
            np.zeros((ROWS, COLS, 2), dtype=np.int64),
            np.full((ROWS, COLS), 256 * 64.0),  # similarity 0
        )
        assert controller.select_intra_macroblocks().all()

    def test_threshold_zero_never_selects(self):
        controller = PBPAIRController(PBPAIRConfig(intra_th=0.0, plr=0.5), ROWS, COLS)
        modes = np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object)
        for _ in range(20):
            controller.update_after_frame(
                modes,
                np.zeros((ROWS, COLS, 2), dtype=np.int64),
                np.full((ROWS, COLS), 256 * 64.0),
            )
        assert not controller.select_intra_macroblocks().any()

    def test_decay_crosses_threshold_eventually(self):
        controller = PBPAIRController(PBPAIRConfig(intra_th=0.5, plr=0.2), ROWS, COLS)
        modes = np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object)
        for _ in range(10):
            controller.update_after_frame(
                modes,
                np.zeros((ROWS, COLS, 2), dtype=np.int64),
                np.full((ROWS, COLS), 256 * 64.0),  # similarity 0
            )
        assert controller.select_intra_macroblocks().all()

    def test_runtime_knobs_settable(self):
        controller = PBPAIRController(PBPAIRConfig(), ROWS, COLS)
        controller.intra_th = 0.7
        controller.plr = 0.25
        assert controller.intra_th == 0.7
        assert controller.plr == 0.25
        with pytest.raises(ValueError):
            controller.intra_th = 1.5
        with pytest.raises(ValueError):
            controller.plr = -0.1

    def test_reset_restores_config(self):
        controller = PBPAIRController(PBPAIRConfig(intra_th=0.3, plr=0.1), ROWS, COLS)
        controller.intra_th = 0.9
        modes = np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object)
        controller.update_after_frame(
            modes, np.zeros((ROWS, COLS, 2), dtype=np.int64), np.zeros((ROWS, COLS))
        )
        controller.reset()
        assert controller.intra_th == 0.3
        assert (controller.matrix.sigma == 1.0).all()


class TestMECost:
    def _decayed_controller(self):
        controller = PBPAIRController(
            PBPAIRConfig(intra_th=0.0, plr=0.3, loss_penalty_per_pixel=4.0),
            ROWS,
            COLS,
        )
        # Damage one macroblock's sigma.
        intra = np.ones((ROWS, COLS), bool)
        intra[1, 1] = False
        modes = np.where(
            intra,
            np.full((ROWS, COLS), MacroblockMode.INTRA, dtype=object),
            np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object),
        )
        for _ in range(6):
            controller.update_after_frame(
                modes,
                np.zeros((ROWS, COLS, 2), dtype=np.int64),
                np.full((ROWS, COLS), 256 * 64.0),
            )
        return controller

    def test_penalizes_low_sigma_references(self):
        controller = self._decayed_controller()
        cost = controller.me_cost_function()
        sad = np.array([1000])
        safe = cost(sad, np.array([0]), np.array([0]), np.array([0]), np.array([0]))
        risky = cost(sad, np.array([0]), np.array([0]), np.array([1]), np.array([1]))
        assert risky > safe

    def test_cost_reduces_to_sad_when_sigma_is_one(self):
        controller = PBPAIRController(PBPAIRConfig(), ROWS, COLS)
        cost = controller.me_cost_function()
        sad = np.array([123.0, 456.0])
        out = cost(sad, np.array([0, 0]), np.array([0, 0]), np.array([0, 1]), np.array([0, 1]))
        np.testing.assert_allclose(out, sad)

    def test_displacement_pulls_in_neighbour_sigma(self):
        controller = self._decayed_controller()
        cost = controller.me_cost_function()
        sad = np.array([1000])
        # Candidate for MB (1,2) displaced left overlaps damaged (1,1).
        toward = cost(sad, np.array([0]), np.array([-4]), np.array([1]), np.array([2]))
        away = cost(sad, np.array([0]), np.array([4]), np.array([1]), np.array([2]))
        assert toward > away

    def test_snapshot_semantics(self):
        # The cost function binds the sigma at build time.
        controller = self._decayed_controller()
        cost = controller.me_cost_function()
        before = cost(
            np.array([0.0]), np.array([0]), np.array([0]), np.array([1]), np.array([1])
        )
        controller.matrix.reset()
        after_reset = cost(
            np.array([0.0]), np.array([0]), np.array([0]), np.array([1]), np.array([1])
        )
        assert before == after_reset  # still the old snapshot


class TestStrategyAdapter:
    def test_lazy_controller_creation(self):
        strategy = PBPAIRStrategy(PBPAIRConfig())
        assert strategy.controller is None

    def test_end_to_end_encoding_produces_refresh(self):
        config = small_config()
        sequence = small_sequence(n_frames=10)
        strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.3))
        encoder = Encoder(config, strategy)
        encoded = encoder.encode_sequence(sequence)
        pre_me = sum(
            1
            for ef in encoded[1:]
            for d in ef.decisions
            if d.forced_by == "pre-me"
        )
        assert pre_me > 0
        assert strategy.controller is not None

    def test_me_skipped_for_pre_me_intras(self):
        config = small_config()
        sequence = small_sequence(n_frames=10)
        strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.3))
        encoder = Encoder(config, strategy)
        for ef in encoder.encode_sequence(sequence)[1:]:
            for d in ef.decisions:
                if d.forced_by == "pre-me":
                    assert d.me_skipped
                    assert d.mv == (0, 0)

    def test_zero_penalty_disables_cost_function(self):
        strategy = PBPAIRStrategy(PBPAIRConfig(loss_penalty_per_pixel=0.0))
        config = small_config()
        encoder = Encoder(config, strategy)
        encoder.encode_frame(small_sequence(n_frames=1)[0])
        assert strategy.me_cost_function() is None

    def test_probability_updates_charged(self):
        config = small_config()
        sequence = small_sequence(n_frames=4)
        strategy = PBPAIRStrategy(PBPAIRConfig())
        encoder = Encoder(config, strategy)
        encoder.encode_sequence(sequence)
        assert encoder.counters.probability_updates == config.mb_count * 4

    def test_reset_between_runs(self):
        config = small_config()
        sequence = small_sequence(n_frames=6)
        strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.3))
        encoder = Encoder(config, strategy)
        first = [ef.stats.intra_mbs for ef in encoder.encode_sequence(sequence)]
        encoder.reset()
        second = [ef.stats.intra_mbs for ef in encoder.encode_sequence(sequence)]
        assert first == second


class TestRefreshCap:
    def _decayed(self, cap):
        controller = PBPAIRController(
            PBPAIRConfig(intra_th=0.9, plr=0.3, max_refresh_per_frame=cap),
            ROWS,
            COLS,
        )
        modes = np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object)
        sad = np.full((ROWS, COLS), 256 * 64.0)
        sad[0, 0] = 0.0  # this macroblock keeps similarity 1
        for _ in range(4):
            controller.update_after_frame(
                modes, np.zeros((ROWS, COLS, 2), dtype=np.int64), sad
            )
        return controller

    def test_cap_limits_selection(self):
        controller = self._decayed(cap=3)
        mask = controller.select_intra_macroblocks()
        assert int(mask.sum()) == 3

    def test_cap_prefers_lowest_sigma(self):
        controller = self._decayed(cap=3)
        mask = controller.select_intra_macroblocks()
        sigma = controller.matrix.sigma
        worst_selected = sigma[mask].max()
        best_unselected = sigma[
            ~mask & (sigma < controller.intra_th)
        ].min()
        assert worst_selected <= best_unselected + 1e-12

    def test_no_cap_selects_everything_below_threshold(self):
        controller = self._decayed(cap=None)
        mask = controller.select_intra_macroblocks()
        assert int(mask.sum()) > 3

    def test_deferred_macroblocks_refresh_later(self):
        config = small_config()
        sequence = small_sequence(n_frames=14)
        strategy = PBPAIRStrategy(
            PBPAIRConfig(intra_th=0.95, plr=0.3, max_refresh_per_frame=2)
        )
        encoder = Encoder(config, strategy)
        encoded = encoder.encode_sequence(sequence)
        per_frame = [ef.stats.intra_mbs for ef in encoded[1:]]
        # Never above the cap (plus any SAD-test intras), and the total
        # budget is still being spent steadily.
        pre_me = [
            sum(1 for d in ef.decisions if d.forced_by == "pre-me")
            for ef in encoded[1:]
        ]
        assert max(pre_me) <= 2
        assert sum(pre_me) >= 10

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            PBPAIRConfig(max_refresh_per_frame=0)


class TestControllerProperties:
    """Hypothesis invariants on the decision machinery."""

    from hypothesis import given, settings, strategies as st

    @given(
        th_low=st.floats(0.0, 1.0),
        th_high=st.floats(0.0, 1.0),
        plr=st.floats(0.05, 0.5),
        steps=st.integers(1, 6),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=40, deadline=None)
    def test_higher_threshold_selects_superset(
        self, th_low, th_high, plr, steps, seed
    ):
        import numpy as np
        from hypothesis import assume

        assume(th_low <= th_high)
        rng = np.random.default_rng(seed)
        controller = PBPAIRController(PBPAIRConfig(intra_th=0.5, plr=plr), ROWS, COLS)
        modes = np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object)
        for _ in range(steps):
            controller.update_after_frame(
                modes,
                rng.integers(-7, 8, size=(ROWS, COLS, 2)),
                rng.uniform(0, 256 * 64.0, size=(ROWS, COLS)),
            )
        controller.intra_th = th_low
        low_mask = controller.select_intra_macroblocks()
        controller.intra_th = th_high
        high_mask = controller.select_intra_macroblocks()
        assert (high_mask | low_mask == high_mask).all()  # low ⊆ high

    @given(
        cap=st.integers(1, ROWS * COLS),
        plr=st.floats(0.1, 0.5),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=40, deadline=None)
    def test_cap_is_respected_and_subset_of_uncapped(self, cap, plr, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        capped = PBPAIRController(
            PBPAIRConfig(intra_th=0.95, plr=plr, max_refresh_per_frame=cap),
            ROWS,
            COLS,
        )
        plain = PBPAIRController(
            PBPAIRConfig(intra_th=0.95, plr=plr), ROWS, COLS
        )
        modes = np.full((ROWS, COLS), MacroblockMode.INTER, dtype=object)
        for _ in range(4):
            mvs = rng.integers(-7, 8, size=(ROWS, COLS, 2))
            sads = rng.uniform(0, 256 * 64.0, size=(ROWS, COLS))
            capped.update_after_frame(modes, mvs, sads)
            plain.update_after_frame(modes, mvs, sads)
        capped_mask = capped.select_intra_macroblocks()
        plain_mask = plain.select_intra_macroblocks()
        assert int(capped_mask.sum()) <= cap
        assert (capped_mask & ~plain_mask).sum() == 0  # capped ⊆ plain


class TestCorrectnessMathProperties:
    from hypothesis import given, settings, strategies as st

    @given(
        th_a=st.floats(0.01, 0.99),
        th_b=st.floats(0.01, 0.99),
        plr=st.floats(0.01, 0.9),
    )
    @settings(max_examples=60)
    def test_refresh_interval_monotone_in_threshold(self, th_a, th_b, plr):
        from hypothesis import assume
        from repro.core.correctness import refresh_interval

        assume(th_a < th_b)
        # A higher threshold is crossed sooner.
        assert refresh_interval(plr, th_b) <= refresh_interval(plr, th_a)

    @given(sad_a=st.floats(0, 1e7), sad_b=st.floats(0, 1e7))
    @settings(max_examples=60)
    def test_similarity_antitone_in_sad(self, sad_a, sad_b):
        import numpy as np
        from hypothesis import assume
        from repro.core.correctness import similarity_from_sad

        assume(sad_a <= sad_b)
        a = similarity_from_sad(np.array([[sad_a]]))[0, 0]
        b = similarity_from_sad(np.array([[sad_b]]))[0, 0]
        assert b <= a
