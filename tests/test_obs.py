"""Tests for the per-stage observability layer (:mod:`repro.obs`)."""

from __future__ import annotations

import json

import pytest

from repro.energy.profiles import IPAQ_H5555
from repro.network.loss import UniformLoss
from repro.obs import (
    MERGED_TRACE_NAME,
    NULL_TRACER,
    HistogramSummary,
    MetricsRegistry,
    NullTracer,
    TraceFormatError,
    Tracer,
    aggregate_stages,
    coverage,
    get_tracer,
    job_trace_files,
    load_trace,
    merge_job_traces,
    merge_traces,
    set_tracer,
    trace_summary,
    use_tracer,
    write_trace,
)
from repro.resilience.registry import build_strategy
from repro.sim.pipeline import SimulationConfig, simulate
from repro.sim.runner import JobSpec, run_grid
from repro.video.synthetic import SyntheticConfig

from tests.conftest import SMALL_H, SMALL_W, small_config, small_sequence


class TestTracer:
    def test_spans_record_nesting(self):
        tracer = Tracer(trace_id="t")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records  # inner closes first
        assert inner.name == "inner"
        assert inner.parent == "outer"
        assert inner.depth == 2
        assert outer.name == "outer"
        assert outer.parent is None
        assert outer.depth == 1
        assert inner.trace_id == outer.trace_id == "t"
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_span_counters_accumulate(self):
        tracer = Tracer()
        with tracer.span("stage", bits=10) as span:
            span.add(bits=5, blocks=2)
            span.add(blocks=1)
        (record,) = tracer.records
        assert record.counters == {"bits": 15, "blocks": 3}

    def test_count_attaches_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.count(sad_blocks=7)
            tracer.count(bits=3)
        inner, outer = tracer.records
        assert inner.counters == {"sad_blocks": 7}
        assert outer.counters == {"bits": 3}

    def test_count_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.count(bits=1)  # must not raise
        assert tracer.records == []

    def test_default_tracer_is_noop(self):
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        assert not tracer.enabled
        with tracer.span("anything") as span:
            span.add(bits=1)
        tracer.count(bits=1)
        tracer.metrics.inc("x")
        assert tracer.records == []
        assert not tracer.metrics

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer())
        assert isinstance(get_tracer(), Tracer)
        set_tracer(None)
        assert get_tracer() is NULL_TRACER
        set_tracer(previous)

    def test_null_tracer_reuses_one_span_object(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        metrics.inc("packets", 3)
        metrics.inc("packets")
        metrics.gauge("frames", 20)
        metrics.gauge("frames", 24)
        assert metrics.counter_value("packets") == 4
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["packets"] == 4
        assert snapshot["gauges"]["frames"] == 24

    def test_histograms(self):
        metrics = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            metrics.observe("psnr", value)
        histogram = metrics.histogram("psnr")
        assert histogram.count == 3
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        a.gauge("g", 1)
        b.gauge("g", 9)
        a.merge(b.snapshot())
        assert a.counter_value("n") == 3
        merged = a.histogram("h")
        assert merged.count == 2 and merged.maximum == 5.0
        assert a.snapshot()["gauges"]["g"] == 9  # last writer wins

    def test_bool_reflects_content(self):
        metrics = MetricsRegistry()
        assert not metrics
        metrics.inc("x")
        assert metrics

    def test_histogram_summary_merge(self):
        a, b = HistogramSummary(), HistogramSummary()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b.as_dict())
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)


class TestTraceFiles:
    def _traced_run(self, trace_id="t"):
        tracer = Tracer(trace_id=trace_id)
        with tracer.span("simulate") as root:
            with tracer.span("encode_frame") as span:
                span.add(bits=100)
            root.add(frames=1)
        tracer.metrics.inc("channel.packets_sent", 4)
        return tracer

    def test_round_trip(self, tmp_path):
        tracer = self._traced_run()
        path = write_trace(tmp_path / "trace.jsonl", tracer)
        data = load_trace(path)
        assert data.spans == tracer.records
        assert data.trace_ids == ["t"]
        assert data.metrics.counter_value("channel.packets_sent") == 4

    def test_file_is_schema_versioned_jsonl(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", self._traced_run())
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert isinstance(header["schema"], int)
        assert all(json.loads(line) for line in lines)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header"\n')
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"type": "header", "schema": 999}\n')
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_load_rejects_unknown_record_type(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_merge_traces_concatenates(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl", self._traced_run("a"))
        b = write_trace(tmp_path / "b.jsonl", self._traced_run("b"))
        merged = merge_traces([a, b], tmp_path / "merged.jsonl")
        data = load_trace(merged)
        assert sorted(data.trace_ids) == ["a", "b"]
        assert data.n_spans == 4
        assert data.metrics.counter_value("channel.packets_sent") == 8

    def test_merge_job_traces_empty_dir(self, tmp_path):
        assert merge_job_traces(tmp_path) is None
        assert job_trace_files(tmp_path) == []


#: Tiny clip for end-to-end traced runs (shape shared with test_runner).
TINY_CLIP = SyntheticConfig(
    width=SMALL_W,
    height=SMALL_H,
    n_frames=4,
    texture_scale=30.0,
    object_radius=10,
    object_motion_amplitude=10.0,
    object_motion_period=8,
    seed=11,
)


def _run(tracer=None):
    video = small_sequence(n_frames=4)
    strategy = build_strategy("PBPAIR", intra_th=0.9, plr=0.2)
    loss = UniformLoss(plr=0.2, seed=3)
    config = SimulationConfig(codec=small_config())
    if tracer is None:
        return simulate(video, strategy, loss_model=loss, config=config)
    with use_tracer(tracer):
        return simulate(video, strategy, loss_model=loss, config=config)


class TestPipelineTracing:
    def test_traced_run_is_bit_identical_to_untraced(self):
        baseline = _run()
        traced = _run(Tracer())
        assert traced.frames == baseline.frames
        assert traced.counters == baseline.counters
        assert traced.channel_log.lost_packets == (
            baseline.channel_log.lost_packets
        )
        assert traced.size_stats == baseline.size_stats

    def test_expected_stage_spans_present(self):
        tracer = Tracer()
        _run(tracer)
        names = {record.name for record in tracer.records}
        assert {
            "simulate",
            "encode_frame",
            "quantize",
            "entropy_code",
            "packetize",
            "channel",
            "decode_frame",
            "conceal",
        } <= names

    def test_stage_coverage_within_two_percent(self):
        tracer = Tracer()
        _run(tracer)
        ratio = coverage(tracer.records).ratio
        assert 0.98 <= ratio <= 1.02

    def test_counters_match_run_totals(self):
        tracer = Tracer()
        result = _run(tracer)
        stages = {s.name: s for s in aggregate_stages(tracer.records)}
        assert stages["encode_frame"].counters["intra_mbs"] == sum(
            record.intra_mbs for record in result.frames
        )
        assert stages["packetize"].counters["packets"] == (
            result.channel_log.sent
        )
        assert stages["channel"].counters["packets_lost"] == len(
            result.channel_log.lost_packets
        )

    def test_energy_attribution_uses_device_prices(self):
        tracer = Tracer()
        _run(tracer)
        stages = {s.name: s for s in aggregate_stages(tracer.records)}
        assert stages["quantize"].energy_joules(IPAQ_H5555) > 0.0
        assert stages["channel"].energy_joules(IPAQ_H5555) == 0.0

    def test_trace_summary_renders(self, tmp_path):
        tracer = Tracer()
        _run(tracer)
        path = write_trace(tmp_path / "trace.jsonl", tracer)
        text = trace_summary(load_trace(path), IPAQ_H5555)
        assert "simulate" in text
        assert "encode_frame" in text
        assert "stage coverage" in text


class TestRunnerTracing:
    def _jobs(self):
        config = SimulationConfig(codec=small_config())
        return [
            JobSpec(
                scheme=scheme,
                plr=0.2,
                channel_seed=1,
                sequence="tiny",
                synthetic=TINY_CLIP,
                config=config,
            )
            for scheme in ("NO", "GOP-2")
        ]

    def test_run_grid_merges_job_traces(self, tmp_path):
        trace_dir = tmp_path / "traces"
        outcomes = run_grid(
            self._jobs(), max_workers=1, cache=None, trace_dir=trace_dir
        )
        assert len(outcomes) == 2
        assert len(job_trace_files(trace_dir)) == 2
        data = load_trace(trace_dir / MERGED_TRACE_NAME)
        assert len(data.trace_ids) == 2
        roots = [span for span in data.spans if span.name == "simulate"]
        assert len(roots) == 2

    def test_untraced_grid_writes_nothing(self, tmp_path):
        run_grid(self._jobs(), max_workers=1, cache=None)
        assert list(tmp_path.iterdir()) == []

    def test_grid_results_unchanged_by_tracing(self, tmp_path):
        plain = run_grid(self._jobs(), max_workers=1, cache=None)
        traced = run_grid(
            self._jobs(), max_workers=1, cache=None, trace_dir=tmp_path
        )
        for a, b in zip(plain, traced):
            assert a.result.frames == b.result.frames
