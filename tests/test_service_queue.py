"""Claim-lifecycle tests for the persistent service job queue.

The properties under test are the queue's durability contract: no job
is ever lost or double-executed — CAS claims have exactly one winner,
a hung worker's lease expires back to pending, and a job that keeps
failing is quarantined instead of looping forever.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.queue import ClaimLost, JobQueue, JobRecord, QueueFull
from repro.service.wire import JobSubmit
from repro.sim.pipeline import SimulationConfig
from repro.sim.runner import JobSpec
from repro.video.synthetic import SyntheticConfig

from tests.conftest import SMALL_H, SMALL_W, small_config

TINY_CLIP = SyntheticConfig(
    width=SMALL_W, height=SMALL_H, n_frames=4, seed=11
)


class FakeClock:
    """Injectable time source so lease-expiry tests do not sleep."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_submit(seed: int = 1, priority: int = 0, **kwargs) -> JobSubmit:
    return JobSubmit(
        spec=JobSpec(
            scheme="NO",
            plr=0.2,
            channel_seed=seed,
            sequence="tiny",
            synthetic=TINY_CLIP,
            config=SimulationConfig(codec=small_config()),
        ),
        priority=priority,
        **kwargs,
    )


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def queue(tmp_path, clock) -> JobQueue:
    return JobQueue(tmp_path / "q", lease_s=30.0, max_fails=3, clock=clock)


class TestSubmitAndClaim:
    def test_submit_claim_complete(self, queue):
        record = queue.submit(tiny_submit())
        assert record.state == "pending"
        claimed = queue.claim("w1")
        assert claimed is not None
        assert claimed.job_id == record.job_id
        assert claimed.state == "running"
        assert claimed.attempts == 1
        done = queue.complete(claimed.job_id, "w1")
        assert done.state == "ok"
        assert queue.drained()

    def test_cached_completion_state(self, queue):
        queue.submit(tiny_submit())
        claimed = queue.claim("w1")
        done = queue.complete(claimed.job_id, "w1", from_cache=True)
        assert done.state == "cached"
        assert done.status().from_cache

    def test_claim_order_priority_then_fifo(self, queue):
        low = queue.submit(tiny_submit(seed=1, priority=0))
        high = queue.submit(tiny_submit(seed=2, priority=5))
        mid = queue.submit(tiny_submit(seed=3, priority=1))
        order = [queue.claim("w").job_id for _ in range(3)]
        assert order == [high.job_id, mid.job_id, low.job_id]

    def test_claim_batch_takes_best_n(self, queue):
        ids = [
            queue.submit(tiny_submit(seed=i, priority=i)).job_id
            for i in range(4)
        ]
        batch = queue.claim_batch("w1", 2)
        assert [r.job_id for r in batch] == [ids[3], ids[2]]
        assert queue.pending_count() == 2

    def test_claim_on_empty_queue(self, queue):
        assert queue.claim("w1") is None

    def test_duplicate_job_id_rejected(self, queue):
        queue.submit(tiny_submit(), job_id="fixed")
        with pytest.raises(ValueError):
            queue.submit(tiny_submit(), job_id="fixed")

    def test_backpressure_raises_queue_full(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", max_pending=2, clock=clock)
        queue.submit(tiny_submit(seed=1))
        queue.submit(tiny_submit(seed=2))
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(tiny_submit(seed=3))
        assert excinfo.value.retry_after_s > 0

    def test_backpressure_clears_after_claim(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", max_pending=1, clock=clock)
        queue.submit(tiny_submit(seed=1))
        with pytest.raises(QueueFull):
            queue.submit(tiny_submit(seed=2))
        queue.claim("w1")
        queue.submit(tiny_submit(seed=2))  # running jobs don't count


class TestConcurrentClaims:
    def test_cas_race_has_one_winner_per_job(self, tmp_path, clock):
        """Many clients over one directory: every job claimed exactly once."""
        directory = tmp_path / "q"
        submitter = JobQueue(directory, max_pending=512, clock=clock)
        n_jobs, n_workers = 24, 8
        for i in range(n_jobs):
            submitter.submit(tiny_submit(seed=i))
        # Separate JobQueue instances share nothing in memory — the
        # claim files on disk are the only arbiter, as with separate
        # client processes.
        queues = [
            JobQueue(directory, max_pending=512, clock=clock)
            for _ in range(n_workers)
        ]
        barrier = threading.Barrier(n_workers)

        def drain(worker: int) -> list[str]:
            barrier.wait()
            mine = []
            while True:
                batch = queues[worker].claim_batch(f"w{worker}", 3)
                if not batch:
                    break
                mine.extend(r.job_id for r in batch)
            return mine

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            claims = list(pool.map(drain, range(n_workers)))
        flat = [job_id for chunk in claims for job_id in chunk]
        assert len(flat) == n_jobs, "a job was lost or never claimed"
        assert len(set(flat)) == n_jobs, "a job was claimed twice"

    def test_lost_cas_moves_to_next_candidate(self, queue):
        first = queue.submit(tiny_submit(seed=1))
        second = queue.submit(tiny_submit(seed=2))
        a = queue.claim("w1")
        b = queue.claim("w2")
        assert {a.job_id, b.job_id} == {first.job_id, second.job_id}
        assert a.owner != b.owner


class TestStaleClaims:
    def test_release_after_lease_expiry(self, queue, clock):
        record = queue.submit(tiny_submit())
        queue.claim("hung-worker")
        # Worker goes silent: no heartbeat, lease runs out.
        clock.advance(31.0)
        released = queue.release_stale()
        assert released == [record.job_id]
        requeued = queue.get(record.job_id)
        assert requeued.state == "pending"
        assert requeued.fail_count == 1
        assert "lease expired" in requeued.error
        # And the job is claimable again by someone else.
        again = queue.claim("w2")
        assert again.job_id == record.job_id
        assert again.attempts == 2

    def test_heartbeat_keeps_lease_alive(self, queue, clock):
        record = queue.submit(tiny_submit())
        queue.claim("w1")
        clock.advance(20.0)
        assert queue.heartbeat(record.job_id, "w1")
        clock.advance(20.0)  # 40s total, but lease renewed at t+20
        assert queue.release_stale() == []
        assert queue.get(record.job_id).state == "running"

    def test_heartbeat_refused_for_non_owner(self, queue):
        record = queue.submit(tiny_submit())
        queue.claim("w1")
        assert not queue.heartbeat(record.job_id, "impostor")

    def test_complete_after_reap_raises_claim_lost(self, queue, clock):
        """The double-execution guard: a reaped worker cannot report."""
        record = queue.submit(tiny_submit())
        queue.claim("w1")
        clock.advance(31.0)
        queue.release_stale()
        rerun = queue.claim("w2")
        assert rerun.job_id == record.job_id
        # The original worker wakes up and tries to report — refused,
        # so w2's execution is the only one that lands.
        with pytest.raises(ClaimLost):
            queue.complete(record.job_id, "w1")
        done = queue.complete(record.job_id, "w2")
        assert done.state == "ok"

    def test_fail_after_reap_raises_claim_lost(self, queue, clock):
        record = queue.submit(tiny_submit())
        queue.claim("w1")
        clock.advance(31.0)
        queue.release_stale()
        with pytest.raises(ClaimLost):
            queue.fail(record.job_id, "w1", "late failure")

    def test_live_lease_not_reaped(self, queue, clock):
        queue.submit(tiny_submit())
        queue.claim("w1")
        clock.advance(10.0)
        assert queue.release_stale() == []


class TestQuarantine:
    def test_quarantined_after_max_fails(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", max_fails=2, clock=clock)
        record = queue.submit(tiny_submit())
        claimed = queue.claim("w1")
        failed = queue.fail(claimed.job_id, "w1", "boom 1")
        assert failed.state == "pending"
        assert failed.fail_count == 1
        claimed = queue.claim("w1")
        assert claimed.attempts == 2
        failed = queue.fail(claimed.job_id, "w1", "boom 2")
        assert failed.state == "quarantined"
        assert failed.fail_count == 2
        # Quarantined jobs are terminal: not claimable, not lost.
        assert queue.claim("w1") is None
        assert queue.drained()
        assert queue.get(record.job_id).error == "boom 2"

    def test_lease_expiries_count_toward_quarantine(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", max_fails=2, clock=clock)
        record = queue.submit(tiny_submit())
        for _ in range(2):
            queue.claim("hung")
            clock.advance(31.0)
            queue.release_stale()
        final = queue.get(record.job_id)
        assert final.state == "quarantined"
        assert final.fail_count == 2


class TestPersistence:
    def test_reopen_preserves_jobs_and_seq(self, tmp_path, clock):
        directory = tmp_path / "q"
        queue = JobQueue(directory, clock=clock)
        first = queue.submit(tiny_submit(seed=1))
        claimed = queue.claim("w1")
        queue.complete(claimed.job_id, "w1")
        queue.submit(tiny_submit(seed=2))

        reopened = JobQueue(directory, clock=clock)
        assert reopened.counts() == {"ok": 1, "pending": 1}
        later = reopened.submit(tiny_submit(seed=3))
        assert later.seq > first.seq  # seq survives the restart
        # The pending job submitted before the restart is claimable.
        batch = reopened.claim_batch("w2", 2)
        assert len(batch) == 2

    def test_running_job_recovers_via_reaper_after_crash(
        self, tmp_path, clock
    ):
        """A daemon that dies mid-job: the claim file survives, the
        lease expires, and a new daemon's reaper requeues the job."""
        directory = tmp_path / "q"
        queue = JobQueue(directory, clock=clock)
        record = queue.submit(tiny_submit())
        queue.claim("old-daemon")
        del queue  # daemon gone; claim + running record still on disk

        clock.advance(31.0)
        revived = JobQueue(directory, clock=clock)
        assert revived.release_stale() == [record.job_id]
        assert revived.claim("new-daemon").job_id == record.job_id

    def test_journal_records_every_transition(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", clock=clock)
        record = queue.submit(tiny_submit())
        queue.claim("w1")
        queue.fail(record.job_id, "w1", "x")
        queue.claim("w1")
        queue.complete(record.job_id, "w1")
        lines = [
            json.loads(line)
            for line in (tmp_path / "q" / "journal.jsonl")
            .read_text()
            .splitlines()
        ]
        assert lines[0]["type"] == "header"
        events = [line["event"] for line in lines[1:]]
        assert events == [
            "submitted", "claimed", "requeued", "claimed", "completed",
        ]

    def test_corrupt_record_does_not_break_scans(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", clock=clock)
        queue.submit(tiny_submit(seed=1))
        (tmp_path / "q" / "jobs" / "garbage.json").write_text("{not json")
        assert len(queue.records()) == 1
        assert queue.pending_count() == 1


class TestValidation:
    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            JobQueue(tmp_path / "a", max_pending=0)
        with pytest.raises(ValueError):
            JobQueue(tmp_path / "b", lease_s=0)
        with pytest.raises(ValueError):
            JobQueue(tmp_path / "c", max_fails=0)

    def test_claim_batch_rejects_bad_limit(self, queue):
        with pytest.raises(ValueError):
            queue.claim_batch("w1", 0)

    def test_get_unknown_job(self, queue):
        with pytest.raises(KeyError):
            queue.get("nope")

    def test_record_round_trip(self, queue):
        record = queue.submit(tiny_submit(priority=3))
        rebuilt = JobRecord.from_json(record.to_json())
        assert rebuilt == record
