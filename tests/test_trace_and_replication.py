"""Tests for trace-driven loss and multi-seed replication."""

from __future__ import annotations

import pytest

from repro.network.loss import TraceLoss, UniformLoss
from repro.network.packet import Packet
from repro.resilience.none import NoResilience
from repro.sim.experiment import ReplicationSummary, replicate
from repro.sim.pipeline import SimulationConfig, simulate

from tests.conftest import small_config, small_sequence


def _packet(frame):
    return Packet(0, frame, 0, 1, b"")


class TestTraceLoss:
    def test_replays_trace(self):
        model = TraceLoss([True, False, True, False])
        outcomes = [model.survives(_packet(i)) for i in range(4)]
        assert outcomes == [True, False, True, False]

    def test_beyond_trace_uses_default(self):
        model = TraceLoss([False], default_survives=True)
        assert model.survives(_packet(5))
        model = TraceLoss([False], default_survives=False)
        assert not model.survives(_packet(5))

    def test_from_pattern(self):
        model = TraceLoss.from_loss_rate_pattern("..x.x")
        assert [model.survives(_packet(i)) for i in range(5)] == [
            True,
            True,
            False,
            True,
            False,
        ]

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            TraceLoss.from_loss_rate_pattern("")
        with pytest.raises(ValueError):
            TraceLoss.from_loss_rate_pattern("..?")

    def test_in_simulation(self):
        clip = small_sequence(n_frames=6)
        model = TraceLoss.from_loss_rate_pattern("...x..")
        result = simulate(
            clip,
            NoResilience(),
            model,
            SimulationConfig(codec=small_config()),
        )
        lost = [r.frame_index for r in result.frames if r.packets_lost > 0]
        assert lost == [3]


class TestReplication:
    def test_summary_statistics(self):
        summary = ReplicationSummary("x", (1, 2, 3), (1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_replicate_runs_each_seed(self):
        clip = small_sequence(n_frames=6)
        summary = replicate(
            clip,
            strategy_factory=NoResilience,
            loss_factory=lambda seed: UniformLoss(plr=0.3, seed=seed),
            metric=lambda r: r.average_psnr_decoder,
            seeds=(1, 2, 3),
            label="NO",
            config=SimulationConfig(codec=small_config()),
        )
        assert summary.label == "NO"
        assert len(summary.values) == 3
        # Different seeds hit different frames: values spread.
        assert summary.std > 0

    def test_replicate_needs_seeds(self):
        clip = small_sequence(n_frames=4)
        with pytest.raises(ValueError):
            replicate(
                clip,
                NoResilience,
                lambda seed: UniformLoss(plr=0.1, seed=seed),
                lambda r: 0.0,
                seeds=(),
            )

    def test_deterministic_given_seeds(self):
        clip = small_sequence(n_frames=6)

        def run():
            return replicate(
                clip,
                NoResilience,
                lambda seed: UniformLoss(plr=0.3, seed=seed),
                lambda r: r.total_bad_pixels,
                seeds=(7, 8),
                config=SimulationConfig(codec=small_config()),
            )

        assert run().values == run().values
