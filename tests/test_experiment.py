"""Unit tests for the experiment harness and reporting."""

from __future__ import annotations

import pytest

from repro.network.loss import UniformLoss
from repro.sim.experiment import (
    ExperimentSpec,
    comparison_specs,
    match_intra_th_to_size,
    replicate,
    run_experiment,
    sweep,
    total_encoded_bytes,
)
from repro.sim.pipeline import SimulationConfig
from repro.sim.report import format_series, format_table
from repro.resilience.none import NoResilience
from repro.resilience.registry import build_strategy

from tests.conftest import small_config, small_sequence


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(codec=small_config())


@pytest.fixture(scope="module")
def clip():
    return small_sequence(n_frames=8)


class TestRunExperiment:
    def test_runs_and_labels(self, clip, sim_config):
        spec = ExperimentSpec(
            label="NO", strategy_factory=NoResilience
        )
        out = run_experiment(clip, spec, sim_config)
        assert out.label == "NO"
        assert out.result.n_frames == len(clip)

    def test_sweep_order_preserved(self, clip, sim_config):
        specs = comparison_specs(["NO", "GOP-2"], None)
        results = sweep(clip, specs, sim_config)
        assert [r.label for r in results] == ["NO", "GOP-2"]

    def test_loss_factory_used(self, clip, sim_config):
        spec = ExperimentSpec(
            label="lossy",
            strategy_factory=NoResilience,
            loss_factory=lambda: UniformLoss(plr=0.5, seed=2),
        )
        out = run_experiment(clip, spec, sim_config)
        assert out.result.channel_log.loss_rate > 0

    def test_parallel_sweep_matches_serial(self, clip, sim_config):
        specs = comparison_specs(
            ["NO", "GOP-2", "PBPAIR"],
            lambda: UniformLoss(plr=0.4, seed=7),
            pbpair_kwargs=dict(intra_th=0.8, plr=0.4),
        )
        serial = sweep(clip, specs, sim_config, max_workers=1)
        parallel = sweep(clip, specs, sim_config, max_workers=2)
        assert [r.label for r in serial] == [r.label for r in parallel]
        for s, p in zip(serial, parallel):
            assert s.result.frames == p.result.frames
            assert s.result.counters == p.result.counters
            assert s.result.energy == p.result.energy

    def test_parallel_replicate_matches_serial(self, clip, sim_config):
        kwargs = dict(
            sequence=clip,
            strategy_factory=NoResilience,
            loss_factory=lambda seed: UniformLoss(plr=0.4, seed=seed),
            metric=lambda r: r.average_psnr_decoder,
            seeds=[1, 2, 3],
            config=sim_config,
        )
        serial = replicate(max_workers=1, **kwargs)
        parallel = replicate(max_workers=3, **kwargs)
        assert serial == parallel


class TestComparisonSpecs:
    def test_pbpair_kwargs_applied(self, clip, sim_config):
        specs = comparison_specs(
            ["PBPAIR"], None, pbpair_kwargs=dict(intra_th=0.77, plr=0.3)
        )
        strategy = specs[0].strategy_factory()
        assert strategy.config.intra_th == 0.77

    def test_factories_produce_fresh_instances(self):
        specs = comparison_specs(["GOP-2"], None)
        a = specs[0].strategy_factory()
        b = specs[0].strategy_factory()
        assert a is not b


class TestSizeMatching:
    def test_size_monotone_in_threshold(self, clip, sim_config):
        sizes = [
            total_encoded_bytes(
                clip, build_strategy("PBPAIR", intra_th=th, plr=0.3), sim_config
            )
            for th in (0.2, 0.9, 1.0)
        ]
        assert sizes[0] < sizes[-1]

    def test_match_finds_reasonable_threshold(self, clip, sim_config):
        target = total_encoded_bytes(clip, build_strategy("GOP-3"), sim_config)
        th = match_intra_th_to_size(
            clip, target, plr=0.3, config=sim_config, max_iterations=6
        )
        matched = total_encoded_bytes(
            clip, build_strategy("PBPAIR", intra_th=th, plr=0.3), sim_config
        )
        assert abs(matched - target) / target < 0.35

    def test_validation(self, clip, sim_config):
        with pytest.raises(ValueError):
            match_intra_th_to_size(clip, 0, plr=0.1)
        with pytest.raises(ValueError):
            match_intra_th_to_size(clip, 100, plr=0.1, tolerance=0)

    def test_zero_iterations_rejected(self, clip):
        with pytest.raises(ValueError, match="max_iterations"):
            match_intra_th_to_size(clip, 100, plr=0.1, max_iterations=0)
        with pytest.raises(ValueError, match="max_iterations"):
            match_intra_th_to_size(clip, 100, plr=0.1, max_iterations=-3)

    def test_single_iteration_returns_first_probe(self, clip, sim_config):
        th = match_intra_th_to_size(
            clip, 10_000, plr=0.3, config=sim_config, max_iterations=1
        )
        assert th == 0.5  # one bisection probe: the midpoint

    def test_calibration_cache_reused(self, clip, sim_config, tmp_path):
        from repro.sim.runner import ResultCache

        cache = ResultCache(tmp_path)
        target = total_encoded_bytes(clip, build_strategy("GOP-3"), sim_config)
        th_cold = match_intra_th_to_size(
            clip, target, plr=0.3, config=sim_config, max_iterations=4,
            cache=cache,
        )
        probes = len(cache)
        assert probes >= 1
        th_warm = match_intra_th_to_size(
            clip, target, plr=0.3, config=sim_config, max_iterations=4,
            cache=cache,
        )
        assert th_warm == th_cold
        assert cache.hits >= probes  # every probe answered from disk
        assert th_warm.probes == th_warm.cache_hits
        assert th_warm.unique_encodes == 0


class TestCalibrationResult:
    def test_behaves_as_float(self):
        from repro.sim.experiment import CalibrationResult

        th = CalibrationResult(0.5, probes=4, unique_encodes=3, cache_hits=1)
        assert th == 0.5
        assert f"{th:.3f}" == "0.500"
        assert th * 2 == 1.0
        assert th.saved_encodes == 1

    def test_reports_probe_and_encode_counts(self, clip, sim_config):
        target = total_encoded_bytes(clip, build_strategy("GOP-3"), sim_config)
        th = match_intra_th_to_size(
            clip, target, plr=0.3, config=sim_config, max_iterations=4
        )
        assert th.probes >= 1
        assert th.unique_encodes == th.probes  # no cache: every probe encodes
        assert th.cache_hits == 0
        assert th.saved_encodes == 0

    def test_warm_stream_cache_skips_encodes(self, clip, sim_config):
        from repro.sim.runner import EncodedStreamCache

        target = total_encoded_bytes(clip, build_strategy("GOP-3"), sim_config)
        stream_cache = EncodedStreamCache(max_entries=16)
        cold = match_intra_th_to_size(
            clip, target, plr=0.3, config=sim_config, max_iterations=4,
            stream_cache=stream_cache,
        )
        assert cold.unique_encodes == cold.probes
        assert stream_cache.encodes == cold.probes
        warm = match_intra_th_to_size(
            clip, target, plr=0.3, config=sim_config, max_iterations=4,
            stream_cache=stream_cache,
        )
        assert warm == cold
        assert warm.unique_encodes == 0
        assert warm.cache_hits == warm.probes
        assert warm.saved_encodes == warm.probes
        assert stream_cache.encodes == cold.probes  # no new encoder runs


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(
            ["scheme", "psnr"],
            [["NO", 31.234], ["PBPAIR", 33.5]],
            title="Fig 5(a)",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 5(a)"
        assert "scheme" in lines[1] and "psnr" in lines[1]
        assert "31.23" in out and "33.50" in out

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_series(self):
        out = format_series("PSNR", [30.0, 31.5], precision=1)
        assert out == "PSNR: 30.0 31.5"


class TestCSV:
    def test_basic_csv(self):
        from repro.sim.report import format_csv

        out = format_csv(["a", "b"], [[1, 2.5], ["x", 3]])
        assert out == "a,b\n1,2.5\nx,3\n"

    def test_quoting(self):
        from repro.sim.report import format_csv

        out = format_csv(["name"], [['say "hi", ok']])
        assert out.splitlines()[1] == '"say ""hi"", ok"'

    def test_float_precision_preserved(self):
        from repro.sim.report import format_csv

        out = format_csv(["v"], [[1.23456789012345]])
        assert "1.23456789012345" in out

    def test_ragged_rejected(self):
        from repro.sim.report import format_csv

        with pytest.raises(ValueError):
            format_csv(["a", "b"], [[1]])
