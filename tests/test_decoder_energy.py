"""Tests for receive-side (decoder) energy accounting."""

from __future__ import annotations

import pytest

from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.network.loss import NoLoss, ScriptedLoss
from repro.network.packet import Packetizer
from repro.resilience.none import NoResilience
from repro.sim.pipeline import SimulationConfig, simulate

from tests.conftest import small_config, small_sequence


class TestDecoderCounters:
    def test_counts_decoded_work(self, codec_config, sequence):
        encoder = Encoder(codec_config, NoResilience())
        packetizer = Packetizer(codec_config)
        decoder = Decoder(codec_config)
        reference = None
        for frame in sequence.frames[:3]:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            reference = result.frame
        mb = codec_config.mb_count
        assert decoder.counters.idct_blocks == 3 * 4 * mb
        assert decoder.counters.dequant_blocks == 3 * 4 * mb
        assert decoder.counters.mode_decisions == 3 * mb
        assert decoder.counters.entropy_bits > 0
        # Frame 0 is all intra: MC only happens for inter macroblocks.
        assert decoder.counters.mc_blocks < 3 * mb

    def test_no_work_when_nothing_arrives(self, codec_config):
        decoder = Decoder(codec_config)
        decoder.decode_frame([], None)
        assert decoder.counters.total_operations() == 0

    def test_decoder_has_no_me_cost(self, codec_config, sequence):
        encoder = Encoder(codec_config, NoResilience())
        packetizer = Packetizer(codec_config)
        decoder = Decoder(codec_config)
        reference = None
        for frame in sequence.frames[:3]:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            reference = decoder.decode_frame(
                payloads, reference, frame.index
            ).frame
        assert decoder.counters.sad_blocks == 0


class TestSimulationDecoderEnergy:
    def test_decoder_energy_reported(self, sequence, codec_config):
        result = simulate(
            sequence,
            NoResilience(),
            NoLoss(),
            SimulationConfig(codec=codec_config),
        )
        assert result.decoder_energy is not None
        assert 0 < result.decoder_energy_joules < result.energy_joules

    def test_loss_reduces_decode_work(self, codec_config):
        clip = small_sequence(n_frames=8)
        config = SimulationConfig(codec=codec_config)
        full = simulate(clip, NoResilience(), NoLoss(), config)
        lossy = simulate(
            clip, NoResilience(), ScriptedLoss([2, 4, 6]), config
        )
        assert lossy.decoder_energy_joules < full.decoder_energy_joules
