"""Tests for the H.263 COD-bit skip mode (CodecConfig(allow_skip=True))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.syntax import (
    decode_macroblock_skippable,
    encode_macroblock_skippable,
)
from repro.codec.types import FrameType, MacroblockMode
from repro.network.packet import Packetizer
from repro.resilience.none import NoResilience
from repro.video.frame import Frame, VideoSequence

from tests.conftest import small_config, small_sequence


class TestSkipSyntax:
    def test_skipped_macroblock_is_one_bit(self):
        writer = BitWriter()
        encode_macroblock_skippable(
            writer,
            FrameType.P,
            MacroblockMode.INTER,
            (0, 0),
            np.zeros((4, 8, 8), dtype=np.int32),
        )
        assert writer.bit_length == 1

    def test_skip_roundtrip(self):
        writer = BitWriter()
        encode_macroblock_skippable(
            writer,
            FrameType.P,
            MacroblockMode.INTER,
            (0, 0),
            np.zeros((4, 8, 8), dtype=np.int32),
        )
        emb = decode_macroblock_skippable(BitReader(writer.getvalue()), FrameType.P)
        assert emb.mode is MacroblockMode.INTER
        assert emb.mv == (0, 0)
        assert not emb.coefficients.any()

    def test_nonzero_mv_not_skipped(self, rng):
        writer = BitWriter()
        encode_macroblock_skippable(
            writer,
            FrameType.P,
            MacroblockMode.INTER,
            (1, 0),
            np.zeros((4, 8, 8), dtype=np.int32),
        )
        assert writer.bit_length > 1
        emb = decode_macroblock_skippable(BitReader(writer.getvalue()), FrameType.P)
        assert emb.mv == (1, 0)

    def test_nonzero_levels_not_skipped(self, rng):
        levels = np.zeros((4, 8, 8), dtype=np.int32)
        levels[0, 0, 0] = 3
        writer = BitWriter()
        encode_macroblock_skippable(
            writer, FrameType.P, MacroblockMode.INTER, (0, 0), levels
        )
        emb = decode_macroblock_skippable(BitReader(writer.getvalue()), FrameType.P)
        np.testing.assert_array_equal(emb.coefficients, levels)

    def test_intra_never_skipped(self, rng):
        levels = rng.integers(-5, 5, (4, 8, 8)).astype(np.int32)
        writer = BitWriter()
        encode_macroblock_skippable(
            writer, FrameType.P, MacroblockMode.INTRA, (0, 0), levels
        )
        emb = decode_macroblock_skippable(BitReader(writer.getvalue()), FrameType.P)
        assert emb.mode is MacroblockMode.INTRA

    def test_i_frame_has_no_cod_bit(self):
        levels = np.zeros((4, 8, 8), dtype=np.int32)
        plain = BitWriter()
        encode_macroblock_skippable(
            plain, FrameType.I, MacroblockMode.INTRA, (0, 0), levels
        )
        skippable_free = BitWriter()
        from repro.codec.syntax import encode_macroblock

        encode_macroblock(
            skippable_free, FrameType.I, MacroblockMode.INTRA, (0, 0), levels
        )
        assert plain.bit_length == skippable_free.bit_length


class TestSkipEndToEnd:
    def _still_clip(self, n=5, seed=6):
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        return VideoSequence(
            tuple(Frame(base.copy(), i) for i in range(n)), name="still"
        )

    def test_roundtrip_matches_reconstruction(self):
        config = small_config(allow_skip=True)
        sequence = small_sequence(n_frames=6)
        encoder = Encoder(config, NoResilience())
        decoder = Decoder(config)
        packetizer = Packetizer(config)
        reference = None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            assert result.received.all()
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            reference = result.frame

    def test_static_content_collapses_to_bits(self):
        clip = self._still_clip()
        with_skip = Encoder(small_config(allow_skip=True), NoResilience())
        without = Encoder(small_config(), NoResilience())
        skip_sizes = [ef.size_bytes for ef in with_skip.encode_sequence(clip)]
        plain_sizes = [ef.size_bytes for ef in without.encode_sequence(clip)]
        # P-frames of a frozen scene: every macroblock skips -> ~1.5 B.
        mb_count = small_config().mb_count
        for size in skip_sizes[1:]:
            assert size <= (mb_count + 7) // 8 + 2
        assert sum(skip_sizes[1:]) < 0.25 * sum(plain_sizes[1:])

    def test_skip_composes_with_chroma_and_half_pel(self):
        from tests.test_chroma import chroma_sequence

        config = small_config(allow_skip=True, chroma=True, half_pel=True)
        sequence = chroma_sequence(n_frames=4)
        encoder = Encoder(config, NoResilience())
        decoder = Decoder(config)
        packetizer = Packetizer(config)
        luma_ref, chroma_ref = None, None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(
                payloads, luma_ref, frame.index, reference_chroma=chroma_ref
            )
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            luma_ref, chroma_ref = result.frame, result.chroma

    def test_fragmentation_with_skips(self):
        config = small_config(allow_skip=True)
        clip = self._still_clip()
        encoder = Encoder(config, NoResilience())
        decoder = Decoder(config)
        packetizer = Packetizer(config, mtu=64)
        reference = None
        for frame in clip:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            reference = result.frame
