"""Tests for the 4:2:0 chroma path through the codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.blocks import blocks_to_plane, chroma_vector, plane_to_blocks
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.motion import motion_compensate_chroma
from repro.codec.types import CodecConfig, FrameType
from repro.metrics.psnr import psnr
from repro.network.packet import Packetizer
from repro.resilience.none import NoResilience
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.core.pbpair import PBPAIRConfig
from repro.video.frame import Frame, VideoSequence
from repro.video.synthetic import SyntheticConfig, generate_sequence

from tests.conftest import SMALL_H, SMALL_W


def chroma_config(**overrides) -> CodecConfig:
    defaults = dict(width=SMALL_W, height=SMALL_H, quantizer=6, chroma=True)
    defaults.update(overrides)
    return CodecConfig(**defaults)


def chroma_sequence(n_frames: int = 6, seed: int = 13) -> VideoSequence:
    return generate_sequence(
        SyntheticConfig(
            width=SMALL_W,
            height=SMALL_H,
            n_frames=n_frames,
            texture_scale=30.0,
            object_radius=10,
            object_motion_amplitude=10.0,
            object_motion_period=8,
            sensor_noise=0.8,
            chroma=True,
            seed=seed,
        ),
        name="colour",
    )


class TestChromaHelpers:
    def test_plane_block_roundtrip(self, rng):
        plane = rng.integers(0, 256, (24, 32))
        blocks = plane_to_blocks(plane)
        assert blocks.shape == (3, 4, 8, 8)
        np.testing.assert_array_equal(blocks_to_plane(blocks), plane)

    def test_plane_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            plane_to_blocks(np.zeros((20, 32)))

    @pytest.mark.parametrize(
        "luma,chroma",
        [(0, 0), (1, 1), (2, 1), (3, 2), (-1, -1), (-2, -1), (-3, -2), (15, 8)],
    )
    def test_chroma_vector_mapping(self, luma, chroma):
        assert chroma_vector(luma) == chroma

    def test_chroma_vector_odd_symmetry(self):
        for v in range(-15, 16):
            assert chroma_vector(-v) == -chroma_vector(v)

    def test_motion_compensate_chroma_shift(self, rng):
        plane = rng.integers(0, 256, (24, 32)).astype(np.uint8)
        mvs = np.zeros((3, 4, 2), dtype=np.int64)
        mvs[:, :, 1] = 4  # luma dx 4 -> chroma dx 2
        predicted = motion_compensate_chroma(plane, mvs)
        np.testing.assert_array_equal(predicted[:, :-2], plane[:, 2:])


class TestChromaRoundTrip:
    def test_lossless_roundtrip_matches_encoder(self):
        config = chroma_config()
        sequence = chroma_sequence()
        encoder = Encoder(config, NoResilience())
        decoder = Decoder(config)
        packetizer = Packetizer(config)
        luma_ref, chroma_ref = None, None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            assert ef.reconstruction_chroma is not None
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(
                payloads, luma_ref, frame.index, reference_chroma=chroma_ref
            )
            assert result.received.all()
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            for got, expected in zip(result.chroma, ef.reconstruction_chroma):
                np.testing.assert_array_equal(got, expected)
            luma_ref, chroma_ref = result.frame, result.chroma

    def test_chroma_quality_reasonable(self):
        config = chroma_config()
        sequence = chroma_sequence()
        encoder = Encoder(config, NoResilience())
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            cb_recon, cr_recon = ef.reconstruction_chroma
            assert psnr(frame.cb, cb_recon) > 30.0
            assert psnr(frame.cr, cr_recon) > 30.0

    def test_chroma_stream_larger_than_luma_only(self):
        sequence = chroma_sequence()
        with_chroma = Encoder(chroma_config(), NoResilience())
        luma_only = Encoder(chroma_config(chroma=False), NoResilience())
        size_chroma = sum(
            ef.size_bytes for ef in with_chroma.encode_sequence(sequence)
        )
        size_luma = sum(
            ef.size_bytes for ef in luma_only.encode_sequence(sequence)
        )
        assert size_chroma > size_luma

    def test_small_mtu_fragmentation(self):
        config = chroma_config()
        sequence = chroma_sequence(n_frames=3)
        encoder = Encoder(config, NoResilience())
        decoder = Decoder(config)
        packetizer = Packetizer(config, mtu=128)
        luma_ref, chroma_ref = None, None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            assert len(payloads) > 1
            result = decoder.decode_frame(
                payloads, luma_ref, frame.index, reference_chroma=chroma_ref
            )
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            luma_ref, chroma_ref = result.frame, result.chroma

    def test_works_with_pbpair(self):
        config = chroma_config()
        sequence = chroma_sequence(n_frames=8)
        encoder = Encoder(config, PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2)))
        encoded = encoder.encode_sequence(sequence)
        assert sum(ef.stats.intra_mbs for ef in encoded[1:]) > 0

    def test_counters_include_chroma_blocks(self):
        config = chroma_config()
        sequence = chroma_sequence(n_frames=2)
        encoder = Encoder(config, NoResilience())
        encoder.encode_sequence(sequence)
        assert encoder.counters.dct_blocks == 2 * config.mb_count * 6


class TestChromaValidation:
    def test_chroma_codec_rejects_luma_frame(self, rng):
        config = chroma_config()
        encoder = Encoder(config, NoResilience())
        luma_frame = Frame(
            rng.integers(0, 256, (SMALL_H, SMALL_W)).astype(np.uint8), 0
        )
        with pytest.raises(ValueError):
            encoder.encode_frame(luma_frame)

    def test_luma_codec_ignores_chroma(self):
        config = chroma_config(chroma=False)
        sequence = chroma_sequence(n_frames=2)
        encoder = Encoder(config, NoResilience())
        ef = encoder.encode_frame(sequence[0])
        assert ef.reconstruction_chroma is None

    def test_frame_validation(self, rng):
        luma = rng.integers(0, 256, (SMALL_H, SMALL_W)).astype(np.uint8)
        half = rng.integers(0, 256, (SMALL_H // 2, SMALL_W // 2)).astype(np.uint8)
        with pytest.raises(ValueError):
            Frame(luma, 0, cb=half, cr=None)
        with pytest.raises(ValueError):
            Frame(luma, 0, cb=half[:4], cr=half)
        frame = Frame(luma, 0, cb=half, cr=half)
        assert frame.has_chroma

    def test_sequence_chroma_consistency(self, rng):
        luma = rng.integers(0, 256, (SMALL_H, SMALL_W)).astype(np.uint8)
        half = rng.integers(0, 256, (SMALL_H // 2, SMALL_W // 2)).astype(np.uint8)
        with pytest.raises(ValueError):
            VideoSequence(
                (Frame(luma, 0, half, half), Frame(luma, 1)), name="mixed"
            )

    def test_decoder_rejects_bad_chroma_reference(self):
        config = chroma_config()
        decoder = Decoder(config)
        bad = (
            np.zeros((4, 4), dtype=np.uint8),
            np.zeros((4, 4), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            decoder.decode_frame([], None, reference_chroma=bad)
