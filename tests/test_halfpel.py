"""Tests for half-pel motion compensation and search refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.halfpel import (
    fetch_block_half,
    halfpel_to_pixels,
    motion_compensate_half,
    refine_half_pel,
)
from repro.codec.types import CodecConfig
from repro.network.packet import Packetizer
from repro.resilience.none import NoResilience
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.core.pbpair import PBPAIRConfig
from repro.video.frame import Frame, VideoSequence

from tests.conftest import SMALL_H, SMALL_W, small_config, small_sequence


def halfpel_config(**overrides) -> CodecConfig:
    return small_config(half_pel=True, **overrides)


def _smooth(rng, h=SMALL_H, w=SMALL_W):
    field = rng.standard_normal((h + 8, w + 8))
    kernel = np.ones(7) / 7.0
    field = np.apply_along_axis(lambda r: np.convolve(r, kernel, "same"), 0, field)
    field = np.apply_along_axis(lambda r: np.convolve(r, kernel, "same"), 1, field)
    field = field[4 : 4 + h, 4 : 4 + w]
    field = (field - field.min()) / (field.max() - field.min() + 1e-9)
    return (field * 255).astype(np.uint8)


def _half_shift_x(frame: np.ndarray) -> np.ndarray:
    """Content resampled at x + 0.5 (H.263 rounding): each new pixel is
    the average of the old pixel and its right neighbour, so the best
    reference for the new frame sits at dx = +0.5 (+1 half-pel)."""
    shifted = (
        frame[:, :-1].astype(np.int64) + frame[:, 1:].astype(np.int64) + 1
    ) >> 1
    return np.concatenate([shifted, frame[:, -1:]], axis=1).astype(np.uint8)


class TestUnits:
    def test_halfpel_to_pixels_truncates_toward_zero(self):
        mvs = np.array([[[3, -3], [2, -2]], [[1, -1], [31, -31]]])
        out = halfpel_to_pixels(mvs)
        np.testing.assert_array_equal(
            out, [[[1, -1], [1, -1]], [[0, 0], [15, -15]]]
        )


class TestFetchAndCompensate:
    def test_integer_vector_matches_plain_fetch(self, rng):
        reference = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        padded = np.pad(reference.astype(np.int64), 4, mode="edge")
        block = fetch_block_half(padded, 4, 16, 16, (2, -4))  # = (1, -2) px
        np.testing.assert_array_equal(
            block, reference[17:33, 14:30].astype(np.int64)
        )

    def test_half_vector_is_h263_average(self):
        reference = np.zeros((48, 64), dtype=np.uint8)
        reference[:, 16] = 10
        reference[:, 17] = 21
        padded = np.pad(reference.astype(np.int64), 4, mode="edge")
        block = fetch_block_half(padded, 4, 0, 16, (0, 1))  # +0.5 px right
        assert block[0, 0] == (10 + 21 + 1) >> 1

    def test_motion_compensate_half_zero_is_identity(self, rng):
        reference = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        mvs = np.zeros((3, 4, 2), dtype=np.int64)
        np.testing.assert_array_equal(
            motion_compensate_half(reference, mvs), reference
        )

    def test_motion_compensate_even_vector_matches_integer_mc(self, rng):
        from repro.codec.motion import motion_compensate

        reference = rng.integers(0, 256, (48, 64)).astype(np.uint8)
        mvs_px = rng.integers(-3, 4, size=(3, 4, 2))
        half = motion_compensate_half(reference, 2 * mvs_px)
        integer = motion_compensate(reference, mvs_px)
        np.testing.assert_array_equal(half, integer.astype(np.int64))


class TestRefinement:
    def test_finds_half_pixel_shift(self, rng):
        reference = _smooth(rng)
        current = _half_shift_x(reference)
        mvs_int = np.zeros((SMALL_H // 16, SMALL_W // 16, 2), dtype=np.int64)
        # Integer SADs at zero motion:
        diff = np.abs(current.astype(np.int64) - reference.astype(np.int64))
        sads_int = diff.reshape(SMALL_H // 16, 16, SMALL_W // 16, 16).sum(
            axis=(1, 3)
        )
        active = np.ones_like(sads_int, dtype=bool)
        mvs_half, sads, evals = refine_half_pel(
            current, reference, mvs_int, sads_int, active, search_range=7
        )
        # Most interior macroblocks lock onto dx = +1 half-pel with a
        # large SAD drop.
        interior_dx = mvs_half[1:-1, 1:-1, 1]
        assert (interior_dx == 1).mean() > 0.7
        assert sads.sum() < 0.35 * sads_int.sum()
        assert evals == 8 * active.sum()

    def test_inactive_macroblocks_untouched(self, rng):
        reference = _smooth(rng)
        current = _half_shift_x(reference)
        shape = (SMALL_H // 16, SMALL_W // 16)
        active = np.zeros(shape, dtype=bool)
        mvs_half, sads, evals = refine_half_pel(
            current,
            reference,
            np.zeros((*shape, 2), dtype=np.int64),
            np.full(shape, 999, dtype=np.int64),
            active,
            7,
        )
        assert evals == 0
        assert (mvs_half == 0).all()

    def test_never_exceeds_coded_range(self, rng):
        reference = _smooth(rng)
        current = np.roll(reference, -7, axis=1)
        shape = (SMALL_H // 16, SMALL_W // 16)
        mvs_int = np.full((*shape, 2), 7, dtype=np.int64)
        sads_int = np.full(shape, 10**6, dtype=np.int64)
        mvs_half, _, _ = refine_half_pel(
            current, reference, mvs_int, sads_int,
            np.ones(shape, dtype=bool), search_range=7,
        )
        assert np.abs(mvs_half).max() <= 14


class TestEndToEnd:
    def test_lossless_roundtrip(self):
        config = halfpel_config()
        sequence = small_sequence(n_frames=6)
        encoder = Encoder(config, NoResilience())
        decoder = Decoder(config)
        packetizer = Packetizer(config)
        reference = None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            assert result.received.all()
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            reference = result.frame

    def test_half_pel_beats_integer_on_subpixel_motion(self, rng):
        # A clip whose only motion is a repeated half-pixel drift: the
        # half-pel codec should represent it far more cheaply.
        base = _smooth(rng)
        frames = [base]
        for _ in range(5):
            frames.append(_half_shift_x(frames[-1]))
        clip = VideoSequence(
            tuple(Frame(f, i) for i, f in enumerate(frames)), name="drift"
        )
        integer = Encoder(small_config(), NoResilience())
        halfpel = Encoder(halfpel_config(), NoResilience())
        size_int = sum(ef.size_bytes for ef in integer.encode_sequence(clip))
        size_half = sum(ef.size_bytes for ef in halfpel.encode_sequence(clip))
        assert size_half < 0.8 * size_int

    def test_refinement_candidates_charged(self):
        config = halfpel_config()
        sequence = small_sequence(n_frames=3)
        half = Encoder(config, NoResilience())
        half.encode_sequence(sequence)
        integer = Encoder(small_config(), NoResilience())
        integer.encode_sequence(sequence)
        assert half.counters.sad_blocks > integer.counters.sad_blocks

    def test_works_with_pbpair(self):
        config = halfpel_config()
        sequence = small_sequence(n_frames=8)
        strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2))
        encoder = Encoder(config, strategy)
        encoded = encoder.encode_sequence(sequence)
        assert sum(ef.stats.intra_mbs for ef in encoded[1:]) > 0

    def test_works_with_chroma(self):
        from tests.test_chroma import chroma_sequence

        config = small_config(half_pel=True, chroma=True)
        sequence = chroma_sequence(n_frames=4)
        encoder = Encoder(config, NoResilience())
        decoder = Decoder(config)
        packetizer = Packetizer(config)
        luma_ref, chroma_ref = None, None
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(
                payloads, luma_ref, frame.index, reference_chroma=chroma_ref
            )
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            for got, expected in zip(result.chroma, ef.reconstruction_chroma):
                np.testing.assert_array_equal(got, expected)
            luma_ref, chroma_ref = result.frame, result.chroma
