"""Tests for repro.faults: plans, injection semantics, determinism.

The determinism contract is the heart of this layer: a fault plan is a
*seeded description* of failure, so the same plan must produce the same
injections, the same event log, and byte-identical downstream results —
in any process, at any worker count.  The tests here pin that contract
at every level: raw injector ops, the simulation pipeline, the grid
runner, and the obs trace the events land in.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.codec.encoder import Encoder
from repro.faults import (
    KIND_STAGES,
    STAGE_CHANNEL,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    inject_faults,
    load_fault_plan,
    parse_fault_plan,
    write_fault_plan,
)
from repro.network.packet import Packetizer
from repro.obs import Tracer, load_trace, trace_summary, use_tracer, write_trace
from repro.resilience.none import NoResilience
from repro.sim.pipeline import SimulationConfig, simulate
from repro.sim.runner import JobSpec, run_grid
from repro.video.synthetic import SyntheticConfig

from tests.conftest import SMALL_H, SMALL_W, small_config, small_sequence

CONFIG = small_config()


@pytest.fixture(scope="module")
def packets():
    encoder = Encoder(CONFIG, NoResilience())
    packetizer = Packetizer(CONFIG, mtu=160)
    ef = encoder.encode_frame(small_sequence(n_frames=1)[0])
    return packetizer.packetize(ef)


def plan_of(*specs, seed=7) -> FaultPlan:
    return FaultPlan(faults=tuple(specs), seed=seed)


class TestFaultSpec:
    def test_stage_autofilled_from_kind(self):
        for kind, stage in KIND_STAGES.items():
            assert FaultSpec(kind=kind).stage == stage

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_wrong_stage_rejected(self):
        with pytest.raises(ValueError, match="belongs to stage"):
            FaultSpec(kind="truncate", stage="runner")

    def test_validation_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="drop", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="duplicate", amount=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="worker_crash", times=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="worker_hang", hang_seconds=-1)

    def test_frame_and_attempt_windows(self):
        spec = FaultSpec(kind="drop", frames=(1, 3))
        assert spec.applies_to_frame(1) and spec.applies_to_frame(3)
        assert not spec.applies_to_frame(2)
        bounded = FaultSpec(kind="worker_crash", times=2)
        assert bounded.applies_to_attempt(2)
        assert not bounded.applies_to_attempt(3)
        poison = FaultSpec(kind="worker_crash", times=None)
        assert poison.applies_to_attempt(99)


class TestPlanSerialization:
    PLAN = plan_of(
        FaultSpec(kind="truncate", probability=0.3, frames=(0, 2)),
        FaultSpec(kind="byteflip", probability=0.5, amount=4),
        FaultSpec(kind="worker_crash", times=None),
        seed=42,
    )

    def test_json_round_trip(self):
        assert FaultPlan.from_json(self.PLAN.to_json()) == self.PLAN

    def test_json_omits_defaults(self):
        record = FaultSpec(kind="drop").to_json()
        assert record == {"kind": "drop"}

    def test_file_round_trip(self, tmp_path):
        path = write_fault_plan(tmp_path / "plan.json", self.PLAN)
        assert load_fault_plan(path) == self.PLAN

    def test_parse_compact_tokens(self):
        plan = parse_fault_plan("truncate:0.3,byteflip,worker_crash", seed=9)
        assert plan.seed == 9
        assert [s.kind for s in plan.faults] == [
            "truncate", "byteflip", "worker_crash",
        ]
        assert plan.faults[0].probability == 0.3
        assert plan.faults[1].probability == 1.0

    def test_parse_inline_json(self):
        plan = parse_fault_plan(json.dumps(self.PLAN.to_json()))
        assert plan == self.PLAN

    def test_parse_file_path(self, tmp_path):
        path = write_fault_plan(tmp_path / "plan.json", self.PLAN)
        assert parse_fault_plan(str(path)) == self.PLAN

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_fault_plan("")
        with pytest.raises(ValueError):
            parse_fault_plan("no_such_kind")

    def test_unknown_json_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_json({"kind": "drop", "zap": 1})

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert plan_of(FaultSpec(kind="drop"))


class TestInjectorSemantics:
    def test_truncate_shortens_payloads(self, packets):
        injector = FaultInjector(plan_of(FaultSpec(kind="truncate")))
        out = injector.apply_to_packets(packets, 0)
        assert len(out) == len(packets)
        assert all(
            len(o.payload) <= len(p.payload) for o, p in zip(out, packets)
        )
        assert all(e.kind == "truncate" for e in injector.events)
        assert len(injector.events) == len(packets)

    def test_byteflip_preserves_length(self, packets):
        injector = FaultInjector(plan_of(FaultSpec(kind="byteflip", amount=3)))
        out = injector.apply_to_packets(packets, 0)
        assert [len(o.payload) for o in out] == [
            len(p.payload) for p in packets
        ]
        assert any(
            o.payload != p.payload for o, p in zip(out, packets)
        )

    def test_duplicate_grows_stream(self, packets):
        injector = FaultInjector(
            plan_of(FaultSpec(kind="duplicate", amount=2))
        )
        out = injector.apply_to_packets(packets, 0)
        assert len(out) == 3 * len(packets)

    def test_drop_removes_packets(self, packets):
        injector = FaultInjector(plan_of(FaultSpec(kind="drop")))
        assert injector.apply_to_packets(packets, 0) == []

    def test_reorder_permutes_not_mutates(self, packets):
        injector = FaultInjector(plan_of(FaultSpec(kind="reorder")))
        out = injector.apply_to_packets(packets, 0)
        assert sorted(p.sequence_number for p in out) == sorted(
            p.sequence_number for p in packets
        )

    def test_max_per_frame_caps_hits(self, packets):
        injector = FaultInjector(
            plan_of(FaultSpec(kind="truncate", max_per_frame=1))
        )
        injector.apply_to_packets(packets, 0)
        assert len(injector.events) == 1

    def test_frame_window_respected(self, packets):
        injector = FaultInjector(
            plan_of(FaultSpec(kind="drop", frames=(5,)))
        )
        assert injector.apply_to_packets(packets, 0) == list(packets)
        assert injector.apply_to_packets(packets, 5) == []

    def test_fragment_faults(self, packets):
        fragments = [p.payload for p in packets]
        injector = FaultInjector(
            plan_of(FaultSpec(kind="corrupt_fragment", amount=2))
        )
        out = injector.apply_to_fragments(fragments, 0)
        assert [len(f) for f in out] == [len(f) for f in fragments]
        assert all(e.target.startswith("fragment:") for e in injector.events)

    def test_inject_faults_helper(self, packets):
        plan = plan_of(FaultSpec(kind="truncate", probability=0.5))
        faulted, events = inject_faults(packets, plan=plan)
        assert len(faulted) == len(packets)
        assert all(isinstance(e, FaultEvent) for e in events)

    def test_injection_is_deterministic(self, packets):
        plan = plan_of(
            FaultSpec(kind="truncate", probability=0.5),
            FaultSpec(kind="byteflip", probability=0.5, amount=2),
            FaultSpec(kind="reorder", probability=0.5),
        )
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            out = injector.apply_to_packets(packets, 0)
            runs.append(([p.payload for p in out], injector.events))
        assert runs[0] == runs[1]

    def test_rng_streams_structural_not_call_ordered(self):
        plan = plan_of(FaultSpec(kind="drop", probability=0.5))
        # Frame 3's draw must not depend on whether frames 0-2 were
        # visited first.
        a = plan.rng(STAGE_CHANNEL, 0, 3).random()
        for frame in range(3):
            plan.rng(STAGE_CHANNEL, 0, frame).random()
        assert plan.rng(STAGE_CHANNEL, 0, 3).random() == a


PIPELINE_PLAN = plan_of(
    FaultSpec(kind="truncate", probability=0.4),
    FaultSpec(kind="reorder", probability=0.5),
    FaultSpec(kind="corrupt_fragment", probability=0.4, amount=3),
    seed=13,
)


class TestPipelineFaults:
    def _run(self):
        return simulate(
            small_sequence(n_frames=4),
            NoResilience(),
            config=SimulationConfig(codec=CONFIG),
            faults=PIPELINE_PLAN,
        )

    def test_faults_recorded_and_contained(self):
        result = self._run()
        assert result.n_frames == 4
        assert result.fault_events
        kinds = {e.kind for e in result.fault_events}
        assert kinds <= {"truncate", "reorder", "corrupt_fragment"}
        assert result.total_damaged_fragments >= 0

    def test_pipeline_determinism(self):
        a, b = self._run(), self._run()
        assert a.frames == b.frames
        assert a.fault_events == b.fault_events

    def test_empty_plan_changes_nothing(self):
        clean = simulate(
            small_sequence(n_frames=3),
            NoResilience(),
            config=SimulationConfig(codec=CONFIG),
        )
        with_empty = simulate(
            small_sequence(n_frames=3),
            NoResilience(),
            config=SimulationConfig(codec=CONFIG),
            faults=FaultPlan(),
        )
        assert clean.frames == with_empty.frames
        assert with_empty.fault_events == ()


class TestGridDeterminism:
    CLIP = SyntheticConfig(width=SMALL_W, height=SMALL_H, n_frames=4, seed=11)

    def _jobs(self):
        return [
            JobSpec(
                scheme=scheme,
                plr=0.2,
                channel_seed=seed,
                sequence="tiny",
                synthetic=self.CLIP,
                config=SimulationConfig(codec=CONFIG),
                faults=PIPELINE_PLAN,
            )
            for scheme in ("NO", "GOP-2")
            for seed in (1, 2)
        ]

    def test_identical_results_across_worker_counts(self):
        serial = run_grid(self._jobs(), max_workers=1)
        pooled = run_grid(self._jobs(), max_workers=2)
        for s, p in zip(serial, pooled):
            assert s.ok and p.ok
            assert s.result.frames == p.result.frames
            assert s.result.fault_events == p.result.fault_events

    def test_identical_decoded_frame_hashes(self):
        # The strongest form of the contract: hash every decoded
        # frame's pixels.  FrameRecord equality could in principle hide
        # a pixel-level divergence behind equal summary metrics; a
        # digest of the concealed frames cannot.
        def digest_run():
            sha = hashlib.sha256()
            result = simulate(
                small_sequence(n_frames=4),
                NoResilience(),
                config=SimulationConfig(codec=CONFIG),
                faults=PIPELINE_PLAN,
            )
            for record in result.frames:
                sha.update(
                    json.dumps(
                        [record.psnr_decoder, record.bad_pixels],
                        sort_keys=True,
                    ).encode()
                )
            for event in result.fault_events:
                sha.update(json.dumps(event.to_json(), sort_keys=True).encode())
            return sha.hexdigest()

        assert digest_run() == digest_run()


class TestFaultEventsInTraces:
    def test_events_round_trip_through_trace_files(self, tmp_path):
        tracer = Tracer(trace_id="faulted-run")
        with use_tracer(tracer):
            simulate(
                small_sequence(n_frames=3),
                NoResilience(),
                config=SimulationConfig(codec=CONFIG),
                faults=PIPELINE_PLAN,
            )
        assert tracer.events
        path = write_trace(tmp_path / "trace.jsonl", tracer)
        loaded = load_trace(path)
        assert len(loaded.events) == len(tracer.events)
        first = loaded.events[0]
        assert first.name == "fault"
        assert first.fields["kind"] in KIND_STAGES
        summary = trace_summary(loaded)
        assert "events:" in summary and "fault:" in summary

    def test_schema_v1_traces_still_load(self, tmp_path):
        # Event records bumped the trace schema to 2; files written by
        # older builds (schema 1, spans only) must keep loading.
        path = tmp_path / "old.jsonl"
        lines = [
            json.dumps(
                {"type": "header", "schema": 1, "format": "repro-trace"}
            ),
            json.dumps(
                {
                    "type": "span",
                    "name": "simulate",
                    "start_s": 0.0,
                    "duration_s": 1.0,
                    "depth": 0,
                    "parent": None,
                    "counters": {},
                    "trace_id": "old",
                }
            ),
        ]
        path.write_text("\n".join(lines) + "\n")
        loaded = load_trace(path)
        assert len(loaded.spans) == 1
        assert loaded.events == []
