"""Tests for the parallel experiment runner and its result cache."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.codec.types import CodecConfig
from repro.faults import FaultPlan, FaultSpec
from repro.sim.pipeline import SimulationConfig
from repro.sim.runner import (
    JobFailure,
    JobResult,
    JobSpec,
    ResultCache,
    RetryPolicy,
    build_grid,
    grid_manifest,
    load_manifest,
    run_grid,
    run_job,
    run_simulations,
    sequence_digest,
    stable_hash,
)
from repro.video.synthetic import SyntheticConfig

from tests.conftest import SMALL_H, SMALL_W, small_config, small_sequence

#: A tiny declarative clip every job in this file shares (5 frames of
#: 64x48 keeps a full grid under a second per cell).
TINY_CLIP = SyntheticConfig(
    width=SMALL_W,
    height=SMALL_H,
    n_frames=5,
    texture_scale=30.0,
    object_radius=10,
    object_motion_amplitude=10.0,
    object_motion_period=8,
    seed=11,
)


def tiny_job(**overrides) -> JobSpec:
    defaults = dict(
        scheme="NO",
        plr=0.3,
        channel_seed=1,
        sequence="tiny",
        synthetic=TINY_CLIP,
        config=SimulationConfig(codec=small_config()),
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestStableHash:
    def test_deterministic(self):
        payload = {"a": 1, "b": [1.5, "x"], "c": None}
        assert stable_hash(payload) == stable_hash(payload)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_dataclasses_tagged_by_class(self):
        # Two different config classes must never collide, even if their
        # field names/values happened to line up.
        assert stable_hash(CodecConfig()) != stable_hash(SimulationConfig())

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash({"oops": object()})


class TestJobSpec:
    def test_content_hash_stable_across_instances(self):
        assert tiny_job().content_hash() == tiny_job().content_hash()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(scheme="GOP-2"),
            dict(plr=0.31),
            dict(channel_seed=2),
            dict(granularity="packet"),
            dict(config=SimulationConfig(codec=small_config(quantizer=8))),
            dict(scheme="PBPAIR", pbpair_kwargs={"intra_th": 0.8}),
        ],
    )
    def test_any_parameter_changes_the_hash(self, overrides):
        assert tiny_job(**overrides).content_hash() != tiny_job().content_hash()

    def test_pbpair_kwargs_order_irrelevant(self):
        a = tiny_job(
            scheme="PBPAIR", pbpair_kwargs={"intra_th": 0.8, "plr": 0.2}
        )
        b = tiny_job(
            scheme="PBPAIR", pbpair_kwargs={"plr": 0.2, "intra_th": 0.8}
        )
        assert a.content_hash() == b.content_hash()

    def test_picklable(self):
        spec = tiny_job(scheme="PBPAIR", pbpair_kwargs={"intra_th": 0.9})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_job(plr=1.5)
        with pytest.raises(ValueError):
            tiny_job(synthetic=None, sequence="no-such-clip")
        with pytest.raises(ValueError):
            JobSpec(scheme="NO", sequence="foreman", n_frames=0)

    def test_build_grid_order_and_size(self):
        jobs = build_grid(
            schemes=("NO", "GOP-3"),
            plrs=(0.1, 0.2),
            channel_seeds=(1, 2, 3),
            sequences=("foreman",),
            n_frames=4,
        )
        assert len(jobs) == 2 * 2 * 3
        assert jobs[0].scheme == "NO" and jobs[0].plr == 0.1
        assert [j.channel_seed for j in jobs[:3]] == [1, 2, 3]
        assert jobs[-1].scheme == "GOP-3" and jobs[-1].plr == 0.2


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"value": 42})
        assert cache.get("k1") == {"value": 42}
        assert "k1" in cache
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("bad").write_bytes(b"not a pickle")
        assert cache.get("bad") is None
        assert not cache.path_for("bad").exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRunGrid:
    GRID = [
        tiny_job(scheme="NO"),
        tiny_job(scheme="GOP-2"),
        tiny_job(scheme="PBPAIR", pbpair_kwargs={"intra_th": 0.8}),
        tiny_job(scheme="NO", channel_seed=2),
    ]

    def test_serial_results_labelled_and_ordered(self):
        outcomes = run_grid(self.GRID, max_workers=1)
        assert all(isinstance(o, JobResult) for o in outcomes)
        assert [o.result.strategy_name for o in outcomes] == [
            "NO",
            "GOP-2",
            "PBPAIR",
            "NO",
        ]

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_grid(self.GRID, max_workers=1)
        parallel = run_grid(self.GRID, max_workers=2)
        for s, p in zip(serial, parallel):
            assert s.result.frames == p.result.frames
            assert s.result.counters == p.result.counters
            assert s.result.energy == p.result.energy
            assert s.result.size_stats == p.result.size_stats
            assert s.result.channel_log.lost_packets == (
                p.result.channel_log.lost_packets
            )

    def test_cache_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_grid(self.GRID[:2], max_workers=1, cache=cache)
        assert [o.from_cache for o in first] == [False, False]
        assert cache.misses == 2

        second = run_grid(self.GRID[:2], max_workers=1, cache=cache)
        assert [o.from_cache for o in second] == [True, True]
        assert cache.hits == 2
        for a, b in zip(first, second):
            assert a.result.frames == b.result.frames

    def test_cache_only_covers_matching_specs(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid([self.GRID[0]], max_workers=1, cache=cache)
        changed = tiny_job(scheme="NO", plr=0.31)
        outcomes = run_grid(
            [self.GRID[0], changed], max_workers=1, cache=cache
        )
        assert outcomes[0].from_cache is True
        assert outcomes[1].from_cache is False

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_failure_captured_not_raised(self, max_workers):
        # Codec dimensions mismatch the 64x48 clip: simulate raises.
        bad = tiny_job(config=SimulationConfig(codec=CodecConfig()))
        outcomes = run_grid(
            [bad, self.GRID[0]], max_workers=max_workers
        )
        failure, success = outcomes
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "ValueError"
        assert "does not match" in failure.message
        assert not failure.ok
        assert isinstance(success, JobResult) and success.ok

    def test_failures_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = tiny_job(config=SimulationConfig(codec=CodecConfig()))
        run_grid([bad], max_workers=1, cache=cache)
        assert len(cache) == 0
        again = run_grid([bad], max_workers=1, cache=cache)
        assert isinstance(again[0], JobFailure)

    def test_max_workers_validation(self):
        with pytest.raises(ValueError):
            run_grid(self.GRID[:1], max_workers=0)


def runner_plan(kind="worker_crash", times=1, seed=3, **knobs) -> FaultPlan:
    return FaultPlan(
        faults=(FaultSpec(kind=kind, times=times, **knobs),), seed=seed
    )


FAST_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.001)


class TestRetryAndQuarantine:
    JOBS = [tiny_job(), tiny_job(channel_seed=2)]

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_crash_retried_then_recovers(self, max_workers):
        outcomes = run_grid(
            self.JOBS,
            max_workers=max_workers,
            faults=runner_plan("worker_crash"),
            retry=FAST_RETRY,
        )
        for outcome in outcomes:
            assert isinstance(outcome, JobResult)
            assert outcome.attempts == 2
            assert "worker_crash@1" in outcome.injected_faults

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_poison_job_quarantined(self, max_workers):
        # times=None: the crash fires on *every* attempt, so the retry
        # budget runs out and the job must land in quarantine.
        outcomes = run_grid(
            self.JOBS,
            max_workers=max_workers,
            faults=runner_plan("worker_crash", times=None),
            retry=FAST_RETRY,
        )
        for outcome in outcomes:
            assert isinstance(outcome, JobFailure)
            assert outcome.quarantined
            assert outcome.attempts == 2
            assert outcome.error_type == "InjectedWorkerCrash"

    def test_no_retry_policy_keeps_single_attempt_semantics(self):
        outcomes = run_grid(
            self.JOBS[:1], max_workers=1, faults=runner_plan("worker_crash")
        )
        assert isinstance(outcomes[0], JobFailure)
        assert outcomes[0].attempts == 1
        assert not outcomes[0].quarantined

    def test_hard_exit_rebuilds_pool_and_recovers(self):
        # worker_exit kills the worker process outright; the parent must
        # rebuild the broken pool and still finish every cell.
        outcomes = run_grid(
            self.JOBS,
            max_workers=2,
            faults=runner_plan("worker_exit"),
            retry=FAST_RETRY,
        )
        for outcome in outcomes:
            assert isinstance(outcome, JobResult)
            assert outcome.attempts == 2
            assert "worker_exit@1" in outcome.injected_faults

    def test_hang_times_out_then_retry_recovers(self):
        # Job 0 hangs past the per-job timeout on its first attempt; the
        # retry runs on a worker freed by the clean job 1.
        hung = dataclasses.replace(
            self.JOBS[0],
            faults=runner_plan("worker_hang", hang_seconds=3.0),
        )
        outcomes = run_grid(
            [hung, self.JOBS[1]],
            max_workers=2,
            timeout=1.0,
            retry=FAST_RETRY,
        )
        assert isinstance(outcomes[0], JobResult)
        assert outcomes[0].attempts == 2
        assert "worker_hang@1" in outcomes[0].injected_faults
        assert isinstance(outcomes[1], JobResult)

    def test_retry_delays_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=3, backoff_s=0.1, backoff_factor=2.0, jitter=0.5
        )
        for attempt, base in ((1, 0.1), (2, 0.2)):
            delay = policy.delay_for(attempt, key="job")
            assert delay == policy.delay_for(attempt, key="job")
            assert base <= delay <= base * 1.5
        assert policy.delay_for(1, key="a") != policy.delay_for(1, key="b")

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestFaultedCaching:
    def test_failures_never_cached_under_fault_plans(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid(
            [tiny_job()],
            max_workers=1,
            cache=cache,
            faults=runner_plan("worker_crash", times=None),
            retry=FAST_RETRY,
        )
        assert len(cache) == 0

    def test_poison_cache_recomputes_and_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = runner_plan("poison_cache")
        first = run_grid(
            [tiny_job()], max_workers=1, cache=cache, faults=plan
        )
        assert not first[0].from_cache
        assert len(cache) == 1
        # Second run: the plan rots the entry on disk before the cache
        # scan; the corrupt entry must read as a miss and recompute.
        second = run_grid(
            [tiny_job()], max_workers=1, cache=cache, faults=plan
        )
        assert isinstance(second[0], JobResult)
        assert not second[0].from_cache
        assert "poison_cache" in second[0].injected_faults
        assert second[0].result.frames == first[0].result.frames
        assert len(cache) == 1  # the recomputed result was re-stored

    def test_spec_level_plan_wins_over_run_level(self):
        spec = dataclasses.replace(tiny_job(), faults=FaultPlan())
        outcomes = run_grid(
            [spec],
            max_workers=1,
            faults=runner_plan("worker_crash", times=None),
        )
        # The spec's own (empty) plan shields it from the run-level one.
        assert isinstance(outcomes[0], JobResult)


class TestGridManifest:
    def test_manifest_covers_every_job(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good = tiny_job()
        bad = tiny_job(config=SimulationConfig(codec=CodecConfig()))
        run_grid([good], max_workers=1, cache=cache)  # warm one entry
        manifest_file = tmp_path / "manifest.json"
        outcomes = run_grid(
            [good, bad],
            max_workers=1,
            cache=cache,
            manifest_path=manifest_file,
        )
        manifest = load_manifest(manifest_file)
        assert manifest.n_jobs == 2
        assert not manifest.complete
        statuses = [entry.status for entry in manifest.entries]
        assert statuses == ["cached", "failed"]
        degraded = manifest.degraded
        assert len(degraded) == 1
        assert degraded[0].error_type == "ValueError"
        assert degraded[0].content_hash == bad.content_hash()
        assert manifest == grid_manifest(outcomes)

    def test_manifest_quarantine_and_faults_recorded(self, tmp_path):
        manifest_file = tmp_path / "manifest.json"
        run_grid(
            [tiny_job()],
            max_workers=1,
            faults=runner_plan("worker_crash", times=None),
            retry=FAST_RETRY,
            manifest_path=manifest_file,
        )
        entry = load_manifest(manifest_file).entries[0]
        assert entry.status == "failed"
        assert entry.quarantined
        assert entry.attempts == 2
        assert "worker_crash@1" in entry.injected_faults
        assert "worker_crash@2" in entry.injected_faults

    def test_complete_manifest_written_on_success(self, tmp_path):
        manifest_file = tmp_path / "manifest.json"
        run_grid([tiny_job()], max_workers=1, manifest_path=manifest_file)
        manifest = load_manifest(manifest_file)
        assert manifest.complete
        assert manifest.entries[0].status == "ok"
        assert manifest.entries[0].attempts == 1

    def test_manifest_schema_rejected_on_mismatch(self, tmp_path):
        import json

        manifest_file = tmp_path / "manifest.json"
        run_grid([tiny_job()], max_workers=1, manifest_path=manifest_file)
        record = json.loads(manifest_file.read_text())
        record["schema"] = 99
        manifest_file.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="manifest schema"):
            load_manifest(manifest_file)


class TestRunJob:
    def test_pbpair_inherits_spec_plr(self):
        spec = tiny_job(scheme="PBPAIR", pbpair_kwargs={"intra_th": 0.8})
        result = run_job(spec)
        assert result.strategy_name == "PBPAIR"

    def test_registry_sequence_by_name(self):
        spec = JobSpec(scheme="NO", sequence="akiyo", n_frames=2, plr=0.0)
        result = run_job(spec)
        assert result.sequence_name == "akiyo"
        assert result.n_frames == 2


class TestRunSimulations:
    def test_unpicklable_task_falls_back_to_serial(self):
        clip = small_sequence(n_frames=3)
        config = SimulationConfig(codec=small_config())

        class LocalLoss:
            """Defined in a function scope: pickle cannot import it."""

            def survives(self, packet):
                return True

            def reset(self):
                pass

        from repro.resilience.none import NoResilience

        with pytest.raises(Exception):
            pickle.dumps(LocalLoss())
        results = run_simulations(
            [(clip, NoResilience(), LocalLoss(), config)], max_workers=2
        )
        assert len(results) == 1 and results[0].n_frames == 3


class TestSequenceDigest:
    def test_content_sensitive(self):
        a = small_sequence(n_frames=3, seed=1)
        b = small_sequence(n_frames=3, seed=2)
        assert sequence_digest(a) != sequence_digest(b)
        assert sequence_digest(a) == sequence_digest(
            small_sequence(n_frames=3, seed=1)
        )
