"""Unit tests for operation counters, device profiles and the model."""

from __future__ import annotations

import pytest

from repro.energy.counters import OperationCounters
from repro.energy.model import EnergyModel
from repro.energy.profiles import DEVICE_PROFILES, IPAQ_H5555, ZAURUS_SL5600


class TestCounters:
    def test_starts_at_zero(self):
        counters = OperationCounters()
        assert counters.total_operations() == 0

    def test_add(self):
        a = OperationCounters(sad_blocks=5, entropy_bits=100)
        b = OperationCounters(sad_blocks=3, dct_blocks=2)
        a.add(b)
        assert a.sad_blocks == 8
        assert a.dct_blocks == 2
        assert a.entropy_bits == 100

    def test_copy_is_independent(self):
        a = OperationCounters(sad_blocks=5)
        b = a.copy()
        b.sad_blocks += 1
        assert a.sad_blocks == 5

    def test_diff(self):
        early = OperationCounters(sad_blocks=5, mc_blocks=1)
        late = OperationCounters(sad_blocks=9, mc_blocks=4)
        delta = late.diff(early)
        assert delta.sad_blocks == 4 and delta.mc_blocks == 3

    def test_as_dict_covers_all_fields(self):
        d = OperationCounters().as_dict()
        assert set(d) == {
            "sad_blocks",
            "dct_blocks",
            "idct_blocks",
            "quant_blocks",
            "dequant_blocks",
            "mc_blocks",
            "entropy_bits",
            "mode_decisions",
            "probability_updates",
        }


class TestProfiles:
    def test_every_counter_has_a_cost(self):
        for profile in DEVICE_PROFILES.values():
            for name in OperationCounters().as_dict():
                assert profile.cost_of(name) >= 0

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            IPAQ_H5555.cost_of("hallucinated_ops")

    def test_registry(self):
        assert DEVICE_PROFILES["ipaq"] is IPAQ_H5555
        assert DEVICE_PROFILES["zaurus"] is ZAURUS_SL5600

    def test_sad_dominates_per_macroblock_budget(self):
        # The paper's premise: a motion search (tens of SAD candidates)
        # outweighs the transform chain of one macroblock.
        for profile in (IPAQ_H5555, ZAURUS_SL5600):
            search_cost = 20 * profile.sad_block_uj
            transform_cost = 4 * (
                profile.dct_block_uj
                + profile.idct_block_uj
                + profile.quant_block_uj
                + profile.dequant_block_uj
            )
            assert search_cost > transform_cost


class TestModel:
    def test_zero_work_zero_energy(self):
        model = EnergyModel(IPAQ_H5555)
        assert model.joules(OperationCounters()) == 0.0

    def test_pricing(self):
        model = EnergyModel(IPAQ_H5555)
        counters = OperationCounters(sad_blocks=1000)
        expected = 1000 * IPAQ_H5555.sad_block_uj * 1e-6
        assert model.joules(counters) == pytest.approx(expected)

    def test_breakdown_sums_to_total(self):
        model = EnergyModel(IPAQ_H5555)
        counters = OperationCounters(
            sad_blocks=100, dct_blocks=50, entropy_bits=999, mc_blocks=7
        )
        breakdown = model.breakdown(counters)
        assert breakdown.total_joules == pytest.approx(
            sum(breakdown.by_class.values())
        )
        assert breakdown.device == IPAQ_H5555.name

    def test_me_fraction(self):
        model = EnergyModel(IPAQ_H5555)
        counters = OperationCounters(sad_blocks=100, dct_blocks=10)
        breakdown = model.breakdown(counters)
        assert 0 < breakdown.fraction("sad_blocks") < 1
        assert breakdown.motion_estimation_joules == pytest.approx(
            100 * IPAQ_H5555.sad_block_uj * 1e-6
        )

    def test_energy_additivity(self):
        model = EnergyModel(ZAURUS_SL5600)
        a = OperationCounters(sad_blocks=10, dct_blocks=5)
        b = OperationCounters(sad_blocks=7, entropy_bits=100)
        combined = a.copy()
        combined.add(b)
        assert model.joules(combined) == pytest.approx(
            model.joules(a) + model.joules(b)
        )
