"""Differential tests: batched block kernels vs the scalar reference.

The batched DCT/quantization/SAD kernels must be *bit-identical* to the
one-block-at-a-time formulation in :mod:`repro.codec.reference` — same
coefficients, same motion vectors, same operation counts — because the
golden bitstreams and the energy accounting both assume batching is a
pure implementation detail.  These tests drive both implementations
over random macroblock stacks and full synthetic sequences and require
exact equality everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import reference as ref
from repro.codec.dct import forward_dct_blocks, inverse_dct_blocks
from repro.codec.motion import (
    DiamondSearchMotionEstimator,
    ThreeStepMotionEstimator,
)
from repro.codec.quant import dequantize_blocks, quantize_blocks
from repro.obs import Tracer, use_tracer
from repro.video.synthetic import SEQUENCE_GENERATORS

SEQUENCES = sorted(SEQUENCE_GENERATORS)  # akiyo, foreman, garden
N_RANDOM_STACKS = 200


def _random_stack(rng: np.random.Generator) -> np.ndarray:
    """A random ``(n, 8, 8)`` stack spanning residual/coefficient ranges."""
    n = int(rng.integers(1, 7))
    kind = int(rng.integers(0, 3))
    if kind == 0:  # pixel-range blocks (intra residuals)
        return rng.integers(0, 256, size=(n, 8, 8)).astype(np.int64)
    if kind == 1:  # signed residuals
        return rng.integers(-255, 256, size=(n, 8, 8)).astype(np.int64)
    # full coefficient range, exercises the quantizer clamps
    return rng.integers(-2500, 2501, size=(n, 8, 8)).astype(np.int64)


class TestRandomStacks:
    def test_forward_dct_matches_scalar_reference(self, rng):
        for _ in range(N_RANDOM_STACKS):
            blocks = _random_stack(rng)
            batched = forward_dct_blocks(blocks)
            scalar = ref.forward_dct_scalar(blocks)
            np.testing.assert_array_equal(batched, scalar)

    def test_inverse_dct_matches_scalar_reference(self, rng):
        for _ in range(N_RANDOM_STACKS):
            coeffs = _random_stack(rng)
            batched = inverse_dct_blocks(coeffs)
            scalar = ref.inverse_dct_scalar(coeffs)
            np.testing.assert_array_equal(batched, scalar)

    def test_float_dct_matches_scalar_reference(self, rng):
        for _ in range(20):
            blocks = _random_stack(rng)
            np.testing.assert_allclose(
                forward_dct_blocks(blocks, fixed_point=False),
                ref.forward_dct_scalar(blocks, fixed_point=False),
                rtol=1e-12,
                atol=1e-9,
            )

    def test_quantize_matches_scalar_reference(self, rng):
        for _ in range(N_RANDOM_STACKS):
            coeffs = _random_stack(rng)
            qp = int(rng.integers(1, 32))
            intra = rng.random(coeffs.shape[0]) < 0.5
            batched = quantize_blocks(coeffs, intra, qp)
            scalar = ref.quantize_scalar(coeffs, intra, qp)
            np.testing.assert_array_equal(batched, scalar)

    def test_dequantize_matches_scalar_reference(self, rng):
        for _ in range(N_RANDOM_STACKS):
            coeffs = _random_stack(rng)
            qp = int(rng.integers(1, 32))
            intra = rng.random(coeffs.shape[0]) < 0.5
            levels = quantize_blocks(coeffs, intra, qp)
            batched = dequantize_blocks(levels, intra, qp)
            scalar = ref.dequantize_scalar(levels, intra, qp)
            np.testing.assert_array_equal(batched, scalar)

    def test_quant_roundtrip_uniform_mode_flags(self, rng):
        # Scalar bools (whole-stack mode) must behave like a full mask.
        for intra in (False, True):
            coeffs = _random_stack(rng)
            qp = int(rng.integers(1, 32))
            np.testing.assert_array_equal(
                quantize_blocks(coeffs, intra, qp),
                ref.quantize_scalar(coeffs, intra, qp),
            )


def _biased_cost(sad, dy, dx, row, col):
    """Deterministic, broadcast-safe stand-in for the PBPAIR ME cost."""
    return sad + 3.5 * (np.abs(dy) + np.abs(dx)) + 0.25 * ((row + col) % 5)


def _assert_fields_equal(batched, scalar):
    np.testing.assert_array_equal(batched.mvs, scalar.mvs)
    np.testing.assert_array_equal(batched.sads, scalar.sads)
    assert batched.candidates_evaluated == scalar.candidates_evaluated
    np.testing.assert_array_equal(
        batched.candidates_per_mb, scalar.candidates_per_mb
    )


class TestSequenceDifferential:
    """Batched vs scalar search over full synthetic sequences."""

    @pytest.mark.parametrize("name", SEQUENCES)
    def test_diamond_search_matches_scalar(self, name):
        frames = SEQUENCE_GENERATORS[name](6).frames
        estimator = DiamondSearchMotionEstimator(15, early_exit_sad=1600)
        for prev, cur in zip(frames, frames[1:]):
            tracer = Tracer()
            with use_tracer(tracer), tracer.span("me"):
                batched = estimator.estimate(cur.pixels, prev.pixels)
            scalar = ref.diamond_search_scalar(
                cur.pixels, prev.pixels, 15, early_exit_sad=1600
            )
            _assert_fields_equal(batched, scalar)
            (record,) = tracer.records
            assert record.counters["sad_blocks"] == scalar.candidates_evaluated

    @pytest.mark.parametrize("name", SEQUENCES)
    def test_diamond_search_matches_scalar_with_cost(self, name):
        frames = SEQUENCE_GENERATORS[name](4).frames
        estimator = DiamondSearchMotionEstimator(15, early_exit_sad=1600)
        for prev, cur in zip(frames, frames[1:]):
            batched = estimator.estimate(
                cur.pixels, prev.pixels, cost_function=_biased_cost
            )
            scalar = ref.diamond_search_scalar(
                cur.pixels,
                prev.pixels,
                15,
                early_exit_sad=1600,
                cost_function=_biased_cost,
            )
            _assert_fields_equal(batched, scalar)

    @pytest.mark.parametrize("name", SEQUENCES)
    def test_three_step_search_matches_scalar(self, name):
        frames = SEQUENCE_GENERATORS[name](4).frames
        estimator = ThreeStepMotionEstimator(7)
        for prev, cur in zip(frames, frames[1:]):
            batched = estimator.estimate(
                cur.pixels, prev.pixels, cost_function=_biased_cost
            )
            scalar = ref.three_step_search_scalar(
                cur.pixels, prev.pixels, 7, cost_function=_biased_cost
            )
            _assert_fields_equal(batched, scalar)

    def test_diamond_respects_active_mask(self, rng):
        frames = SEQUENCE_GENERATORS["foreman"](3).frames
        prev, cur = frames[1], frames[2]
        mb_rows = cur.pixels.shape[0] // 16
        mb_cols = cur.pixels.shape[1] // 16
        active = rng.random((mb_rows, mb_cols)) < 0.6
        estimator = DiamondSearchMotionEstimator(15, early_exit_sad=1600)
        batched = estimator.estimate(cur.pixels, prev.pixels, active=active)
        scalar = ref.diamond_search_scalar(
            cur.pixels, prev.pixels, 15, early_exit_sad=1600, active=active
        )
        _assert_fields_equal(batched, scalar)
        assert (batched.candidates_per_mb[~active] == 0).all()

    @pytest.mark.parametrize("name", SEQUENCES)
    def test_dct_quant_on_sequence_residuals(self, name):
        frames = SEQUENCE_GENERATORS[name](3).frames
        prev, cur = frames[0].pixels, frames[1].pixels
        residual = cur.astype(np.int64) - prev.astype(np.int64)
        h, w = residual.shape
        blocks = (
            residual.reshape(h // 8, 8, w // 8, 8)
            .transpose(0, 2, 1, 3)
            .reshape(-1, 8, 8)
        )
        coeffs = forward_dct_blocks(blocks)
        np.testing.assert_array_equal(coeffs, ref.forward_dct_scalar(blocks))
        for qp in (1, 8, 31):
            intra = np.arange(blocks.shape[0]) % 3 == 0
            levels = quantize_blocks(coeffs, intra, qp)
            np.testing.assert_array_equal(
                levels, ref.quantize_scalar(coeffs, intra, qp)
            )
            recon = dequantize_blocks(levels, intra, qp)
            np.testing.assert_array_equal(
                recon, ref.dequantize_scalar(levels, intra, qp)
            )
            np.testing.assert_array_equal(
                inverse_dct_blocks(recon), ref.inverse_dct_scalar(recon)
            )
