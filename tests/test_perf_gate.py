"""Unit tests for the CI perf-regression gate (benchmarks/perf_gate.py)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

GATE = Path(__file__).resolve().parents[1] / "benchmarks" / "perf_gate.py"


def run_gate(tmp_path, baseline, measured, field, extra=()):
    base_path = tmp_path / "baseline.json"
    meas_path = tmp_path / "measured.json"
    base_path.write_text(json.dumps(baseline), encoding="utf-8")
    meas_path.write_text(json.dumps(measured), encoding="utf-8")
    proc = subprocess.run(
        [
            sys.executable,
            str(GATE),
            "--baseline",
            str(base_path),
            "--measured",
            str(meas_path),
            "--field",
            field,
            *extra,
        ],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout


class TestPerfGate:
    def test_within_tolerance_passes(self, tmp_path):
        code, out = run_gate(
            tmp_path, {"speedup": 4.0}, {"speedup": 3.2}, "speedup"
        )
        assert code == 0
        assert "OK" in out

    def test_improvement_passes(self, tmp_path):
        code, _ = run_gate(
            tmp_path, {"speedup": 4.0}, {"speedup": 9.0}, "speedup"
        )
        assert code == 0

    def test_regression_fails(self, tmp_path):
        code, out = run_gate(
            tmp_path, {"speedup": 4.0}, {"speedup": 2.9}, "speedup"
        )
        assert code == 1
        assert "REGRESSION" in out

    def test_tolerance_is_configurable(self, tmp_path):
        code, _ = run_gate(
            tmp_path,
            {"speedup": 4.0},
            {"speedup": 2.9},
            "speedup",
            extra=("--tolerance", "0.5"),
        )
        assert code == 0

    def test_dotted_field_path(self, tmp_path):
        code, _ = run_gate(
            tmp_path,
            {"after": {"encode_fps": 100.0}},
            {"after": {"encode_fps": 95.0}},
            "after.encode_fps",
        )
        assert code == 0

    def test_missing_field_is_a_config_error(self, tmp_path):
        code, out = run_gate(tmp_path, {"speedup": 4.0}, {}, "speedup")
        assert code == 2
        assert "could not compare" in out

    def test_ceiling_skip_when_baseline_unreachable(self, tmp_path):
        """A 4x baseline cannot regress on a 1-core host: skip, not fail."""
        code, out = run_gate(
            tmp_path,
            {"speedup_vs_serial": {"4": 3.8}},
            {"speedup_vs_serial": {"4": 1.0}, "parallel_ceiling": {"4": 1}},
            "speedup_vs_serial.4",
            extra=("--ceiling-field", "parallel_ceiling.4"),
        )
        assert code == 0
        assert "SKIP" in out

    def test_ceiling_within_reach_still_gates(self, tmp_path):
        code, out = run_gate(
            tmp_path,
            {"speedup_vs_serial": {"4": 3.8}},
            {"speedup_vs_serial": {"4": 1.1}, "parallel_ceiling": {"4": 4}},
            "speedup_vs_serial.4",
            extra=("--ceiling-field", "parallel_ceiling.4"),
        )
        assert code == 1
        assert "REGRESSION" in out

    def test_missing_ceiling_field_is_a_config_error(self, tmp_path):
        code, out = run_gate(
            tmp_path,
            {"speedup": 4.0},
            {"speedup": 4.0},
            "speedup",
            extra=("--ceiling-field", "parallel_ceiling.4"),
        )
        assert code == 2
        assert "could not compare" in out

    def test_committed_baselines_carry_the_gated_fields(self):
        repo = GATE.parents[1]
        entropy = json.loads(
            (repo / "BENCH_entropy.json").read_text(encoding="utf-8")
        )
        blocks = json.loads(
            (repo / "BENCH_blocks.json").read_text(encoding="utf-8")
        )
        assert entropy["combined_encode_decode_speedup"] > 0
        assert blocks["combined_block_speedup"] > 0
        grid = json.loads(
            (repo / "BENCH_grid.json").read_text(encoding="utf-8")
        )
        assert grid["cells_per_unique_encode"] >= 4.0
        assert grid["results_identical"] is True
        runner = json.loads(
            (repo / "BENCH_runner.json").read_text(encoding="utf-8")
        )
        for workers, speedup in runner["speedup_vs_serial"].items():
            # committed ratios honor the clamp: no speedup above the
            # host's physical parallelism ceiling
            assert speedup <= runner["parallel_ceiling"][workers]
