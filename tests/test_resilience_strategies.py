"""Unit tests for the baseline resilience strategies and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.codec.types import FrameType, MacroblockMode
from repro.resilience import (
    AIRStrategy,
    GOPStrategy,
    NoResilience,
    PBPAIRStrategy,
    PGOPStrategy,
    build_strategy,
)

from tests.conftest import small_config, small_sequence


class TestNoResilience:
    def test_only_first_frame_intra(self):
        strategy = NoResilience()
        assert strategy.begin_frame(0) is FrameType.I
        for k in range(1, 10):
            assert strategy.begin_frame(k) is FrameType.P

    def test_no_forced_macroblocks(self):
        config = small_config()
        encoder = Encoder(config, NoResilience())
        encoded = encoder.encode_sequence(small_sequence(n_frames=5))
        for ef in encoded[1:]:
            assert all(
                d.forced_by in (None, "sad-test") for d in ef.decisions
            )


class TestGOP:
    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_cadence(self, n):
        strategy = GOPStrategy(n)
        types = [strategy.begin_frame(k) for k in range(3 * (n + 1))]
        for k, t in enumerate(types):
            assert t is (FrameType.I if k % (n + 1) == 0 else FrameType.P)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            GOPStrategy(0)

    def test_name(self):
        assert GOPStrategy(3).name == "GOP-3"


class TestAIR:
    def test_forces_exactly_n_macroblocks(self):
        config = small_config()
        strategy = AIRStrategy(refresh_mbs=3)
        encoder = Encoder(config, strategy)
        encoded = encoder.encode_sequence(small_sequence(n_frames=6))
        for ef in encoded[1:]:
            air_forced = sum(1 for d in ef.decisions if d.forced_by == "air")
            sad_forced = sum(1 for d in ef.decisions if d.forced_by == "sad-test")
            assert air_forced == min(3, config.mb_count - sad_forced)

    def test_never_skips_me(self):
        # AIR decides after ME: every macroblock pays the search.
        config = small_config()
        strategy = AIRStrategy(refresh_mbs=4)
        encoder = Encoder(config, strategy)
        encoded = encoder.encode_sequence(small_sequence(n_frames=6))
        for ef in encoded[1:]:
            assert ef.stats.me_skipped_mbs == 0

    def test_targets_highest_sad(self):
        config = small_config()
        strategy = AIRStrategy(refresh_mbs=2)
        encoder = Encoder(config, strategy)
        encoded = encoder.encode_sequence(small_sequence(n_frames=6))
        for ef in encoded[1:]:
            forced_sads = [d.sad_mv for d in ef.decisions if d.forced_by == "air"]
            natural_inter = [
                d.sad_mv
                for d in ef.decisions
                if d.mode is MacroblockMode.INTER
            ]
            if forced_sads and natural_inter:
                assert min(forced_sads) >= max(natural_inter) - 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            AIRStrategy(0)


class TestPGOP:
    def test_sweeps_left_to_right(self):
        config = small_config()  # 4 MB columns
        strategy = PGOPStrategy(columns_per_frame=1)
        encoder = Encoder(config, strategy)
        sequence = small_sequence(n_frames=9)
        refreshed_columns = []
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            if ef.frame_type is FrameType.P:
                cols = {
                    i % config.mb_cols
                    for i, d in enumerate(ef.decisions)
                    if d.forced_by == "pre-me"
                }
                refreshed_columns.append(sorted(cols))
        # Columns 0..3 in order, then the sweep restarts.
        assert refreshed_columns[:4] == [[0], [1], [2], [3]]
        assert refreshed_columns[4] == [0]

    def test_multi_column_refresh(self):
        config = small_config()
        strategy = PGOPStrategy(columns_per_frame=3)
        encoder = Encoder(config, strategy)
        sequence = small_sequence(n_frames=4)
        encoder.encode_frame(sequence[0])
        ef = encoder.encode_frame(sequence[1])
        cols = {
            i % config.mb_cols
            for i, d in enumerate(ef.decisions)
            if d.forced_by == "pre-me"
        }
        assert cols == {0, 1, 2}

    def test_refresh_columns_skip_me(self):
        config = small_config()
        strategy = PGOPStrategy(columns_per_frame=2)
        encoder = Encoder(config, strategy)
        for frame in small_sequence(n_frames=5):
            ef = encoder.encode_frame(frame)
            if ef.frame_type is FrameType.P:
                assert ef.stats.me_skipped_mbs >= 2 * config.mb_rows

    def test_stride_back_fires_on_rightward_reference(self):
        # Content that shifts left each frame makes clean-column
        # macroblocks reference rightward (dx > 0), i.e. into columns
        # the sweep has not refreshed yet -- exactly the propagation
        # stride-back exists to trap.
        from repro.video.frame import Frame, VideoSequence

        # Smooth texture so the diamond search can actually track the
        # shift (white noise has a flat SAD surface away from the true
        # match and every macroblock would fall to the SAD test).
        rng = np.random.default_rng(21)
        field = rng.standard_normal((48, 64))
        kernel = np.ones(9) / 9.0
        field = np.apply_along_axis(
            lambda r: np.convolve(r, kernel, "same"), 0, field
        )
        field = np.apply_along_axis(
            lambda r: np.convolve(r, kernel, "same"), 1, field
        )
        field = (field - field.min()) / (field.max() - field.min() + 1e-9)
        base = (field * 255).astype(np.uint8)
        frames = tuple(
            Frame(np.roll(base, -6 * k, axis=1), k) for k in range(4)
        )
        sequence = VideoSequence(frames, name="roller")
        config = small_config()
        strategy = PGOPStrategy(columns_per_frame=1)
        encoder = Encoder(config, strategy)
        stride_backs = 0
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            stride_backs += sum(
                1 for d in ef.decisions if d.forced_by == "stride-back"
            )
        assert stride_backs > 0

    def test_reset(self):
        strategy = PGOPStrategy(columns_per_frame=2)
        config = small_config()
        encoder = Encoder(config, strategy)
        sequence = small_sequence(n_frames=3)
        first = [
            ef.stats.me_skipped_mbs for ef in encoder.encode_sequence(sequence)
        ]
        encoder.reset()
        second = [
            ef.stats.me_skipped_mbs for ef in encoder.encode_sequence(sequence)
        ]
        assert first == second

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            PGOPStrategy(0)


class TestRegistry:
    @pytest.mark.parametrize(
        "spec,expected_type,attr",
        [
            ("NO", NoResilience, None),
            ("GOP-3", GOPStrategy, ("p_frames", 3)),
            ("AIR-24", AIRStrategy, ("refresh_mbs", 24)),
            ("PGOP-1", PGOPStrategy, ("columns_per_frame", 1)),
            ("PBPAIR", PBPAIRStrategy, None),
        ],
    )
    def test_builds_paper_specs(self, spec, expected_type, attr):
        strategy = build_strategy(spec)
        assert isinstance(strategy, expected_type)
        if attr:
            name, value = attr
            assert getattr(strategy, name) == value

    def test_case_insensitive(self):
        assert isinstance(build_strategy("gop-2"), GOPStrategy)

    def test_pbpair_kwargs(self):
        strategy = build_strategy("PBPAIR", intra_th=0.7, plr=0.25)
        assert strategy.config.intra_th == 0.7
        assert strategy.config.plr == 0.25

    @pytest.mark.parametrize(
        "spec", ["GOP", "AIR", "PGOP", "NO-3", "PBPAIR-5", "GOP-0", "GOP-x", "WAT"]
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            build_strategy(spec)

    def test_strategy_names_match_specs(self):
        for spec in ("NO", "GOP-3", "AIR-24", "PGOP-1", "PBPAIR"):
            assert build_strategy(spec).name == spec


class TestAIRCyclic:
    def test_sweeps_all_macroblocks(self):
        config = small_config()  # 12 macroblocks
        strategy = AIRStrategy(refresh_mbs=4, selection="cyclic")
        encoder = Encoder(config, strategy)
        sequence = small_sequence(n_frames=5)
        refreshed = set()
        for frame in sequence:
            ef = encoder.encode_frame(frame)
            if ef.frame_type is FrameType.P:
                refreshed.update(
                    i
                    for i, d in enumerate(ef.decisions)
                    if d.forced_by == "air"
                )
        # 4 per frame x 3+ P-frames covers all 12 macroblock positions
        # (minus any that happened to be intra already).
        assert len(refreshed) >= 10

    def test_pointer_wraps(self):
        config = small_config()
        strategy = AIRStrategy(refresh_mbs=5, selection="cyclic")
        encoder = Encoder(config, strategy)
        for frame in small_sequence(n_frames=6):
            encoder.encode_frame(frame)
        assert 0 <= strategy._next_mb < config.mb_count

    def test_name_and_validation(self):
        assert AIRStrategy(7, selection="cyclic").name == "AIR-7-cyclic"
        with pytest.raises(ValueError):
            AIRStrategy(3, selection="psychic")

    def test_guarantees_refresh_of_quiet_macroblocks(self):
        # A frozen scene: SAD-based AIR keeps picking the same noisy
        # macroblocks; cyclic AIR refreshes every macroblock within one
        # sweep, so under a mid-clip loss its damage clears while the
        # SAD variant's may persist.
        from repro.network.loss import ScriptedLoss
        from repro.sim.pipeline import SimulationConfig, simulate

        clip = small_sequence(n_frames=12, object_motion_amplitude=0.0,
                              texture_drift=0.0, sensor_noise=0.3)
        config = SimulationConfig(codec=small_config())
        cyclic = simulate(
            clip,
            AIRStrategy(4, selection="cyclic"),
            ScriptedLoss([4]),
            config,
        )
        tail = cyclic.frames[-1]
        assert tail.psnr_decoder >= tail.psnr_encoder - 2.0


class TestRegistryAIRVariants:
    def test_cyclic_spec(self):
        strategy = build_strategy("AIR-10-cyclic")
        assert isinstance(strategy, AIRStrategy)
        assert strategy.selection == "cyclic"
        assert strategy.refresh_mbs == 10
        assert strategy.name == "AIR-10-cyclic"

    def test_plain_air_still_sad(self):
        assert build_strategy("AIR-24").selection == "sad"

    def test_variant_on_other_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_strategy("GOP-3-cyclic")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_strategy("AIR-10-psychic")


class TestSpecRoundTrip:
    """strategy_to_spec: the declarative form the parallel runner pickles."""

    @pytest.mark.parametrize(
        "spec", ["NO", "GOP-3", "AIR-24", "AIR-10-cyclic", "PGOP-2"]
    )
    def test_baselines_round_trip_through_their_name(self, spec):
        from repro.resilience.registry import strategy_to_spec

        name, kwargs = strategy_to_spec(build_strategy(spec))
        assert name == spec
        assert kwargs == {}
        rebuilt = build_strategy(name, **kwargs)
        assert rebuilt.name == spec
        assert type(rebuilt) is type(build_strategy(spec))

    def test_pbpair_round_trips_with_kwargs(self):
        from repro.resilience.registry import strategy_to_spec

        original = build_strategy("PBPAIR", intra_th=0.77, plr=0.25)
        name, kwargs = strategy_to_spec(original)
        assert name == "PBPAIR"
        assert kwargs == {"intra_th": 0.77, "plr": 0.25}
        rebuilt = build_strategy(name, **kwargs)
        assert rebuilt.config == original.config

    def test_pbpair_defaults_omitted(self):
        from repro.resilience.registry import strategy_to_spec

        _, kwargs = strategy_to_spec(build_strategy("PBPAIR"))
        assert kwargs == {}

    def test_foreign_strategy_rejected(self):
        from repro.resilience.base import ResilienceStrategy
        from repro.resilience.registry import strategy_to_spec

        class Custom(ResilienceStrategy):
            name = "CUSTOM-1"

        with pytest.raises(ValueError):
            strategy_to_spec(Custom())
