"""Import hygiene: scripts outside ``src/repro`` use the facade only.

``repro.api`` is the package's stability boundary; everything else may
be refactored freely between releases.  The examples and benchmarks are
the in-repo consumers that demonstrate the supported import surface, so
they must not reach into ``repro.codec``/``repro.sim`` (or any other
internal module) directly — a deep import that creeps in here is
exactly the kind that later breaks downstream users.

The check parses every script with :mod:`ast` (catching imports nested
inside functions too, which grep-style lint misses) and fails with a
file:line listing of the offenders.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Directories that must import only through the facade.
FACADE_ONLY_DIRS = ("examples", "benchmarks")

#: The only allowed module from the ``repro`` namespace.
ALLOWED = {"repro.api"}


def _facade_only_files() -> list[Path]:
    files = []
    for dirname in FACADE_ONLY_DIRS:
        files.extend(sorted((REPO_ROOT / dirname).glob("*.py")))
    assert files, "expected example/benchmark scripts to exist"
    return files


def _repro_imports(path: Path) -> list[tuple[int, str]]:
    """All ``repro``-namespace modules imported by ``path``, with lines."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:  # relative import; not the repro namespace
                continue
            if module == "repro" or module.startswith("repro."):
                found.append((node.lineno, module))
    return found


@pytest.mark.parametrize(
    "path", _facade_only_files(), ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_scripts_import_only_the_facade(path: Path):
    offenders = [
        f"{path.relative_to(REPO_ROOT)}:{line}: {module}"
        for line, module in _repro_imports(path)
        if module not in ALLOWED
    ]
    assert not offenders, (
        "deep repro imports outside the facade (use repro.api instead):\n"
        + "\n".join(offenders)
    )


def test_the_checker_sees_nested_imports(tmp_path):
    """Guard the guard: function-local deep imports must be caught."""
    script = tmp_path / "sneaky.py"
    script.write_text(
        "def f():\n"
        "    from repro.codec.encoder import Encoder\n"
        "    import repro.sim.pipeline\n"
        "    return Encoder\n"
    )
    modules = {module for _, module in _repro_imports(script)}
    assert modules == {"repro.codec.encoder", "repro.sim.pipeline"}
