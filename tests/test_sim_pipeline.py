"""Integration tests for the end-to-end simulation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.concealment.spatial import SpatialConcealment
from repro.network.loss import NoLoss, ScriptedLoss, UniformLoss
from repro.resilience.gop import GOPStrategy
from repro.resilience.none import NoResilience
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.core.pbpair import PBPAIRConfig
from repro.sim.pipeline import SimulationConfig, encode_only, simulate

from tests.conftest import small_config, small_sequence


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(codec=small_config())


@pytest.fixture(scope="module")
def clip():
    return small_sequence(n_frames=10)


class TestLosslessRun:
    def test_decoder_tracks_encoder_without_loss(self, clip, sim_config):
        result = simulate(clip, NoResilience(), NoLoss(), sim_config)
        for record in result.frames:
            assert record.packets_lost == 0
            assert record.psnr_decoder == pytest.approx(
                record.psnr_encoder, abs=1e-9
            )

    def test_aggregates_consistent(self, clip, sim_config):
        result = simulate(clip, NoResilience(), NoLoss(), sim_config)
        assert result.n_frames == len(clip)
        assert result.total_bytes == sum(r.size_bytes for r in result.frames)
        assert result.energy_joules > 0
        assert result.channel_log.sent >= result.n_frames
        assert result.sequence_name == clip.name
        assert result.strategy_name == "NO"

    def test_encode_only_matches_simulate_sizes(self, clip, sim_config):
        encoded, counters = encode_only(clip, NoResilience(), sim_config)
        result = simulate(clip, NoResilience(), NoLoss(), sim_config)
        assert [ef.size_bytes for ef in encoded] == [
            r.size_bytes for r in result.frames
        ]
        assert counters.as_dict() == result.counters.as_dict()


class TestLossyRun:
    def test_loss_degrades_quality(self, clip, sim_config):
        clean = simulate(clip, NoResilience(), NoLoss(), sim_config)
        lossy = simulate(
            clip, NoResilience(), UniformLoss(plr=0.3, seed=1), sim_config
        )
        assert lossy.average_psnr_decoder < clean.average_psnr_decoder
        assert lossy.total_bad_pixels > clean.total_bad_pixels

    def test_scripted_loss_hits_exact_frames(self, clip, sim_config):
        result = simulate(clip, NoResilience(), ScriptedLoss([4]), sim_config)
        lost = [r.frame_index for r in result.frames if r.packets_lost > 0]
        assert lost == [4]
        # Damage starts exactly at the lost frame.
        assert result.frames[3].psnr_decoder == pytest.approx(
            result.frames[3].psnr_encoder, abs=1e-9
        )
        assert (
            result.frames[4].psnr_decoder < result.frames[4].psnr_encoder
        )

    def test_error_propagates_until_refresh(self, clip, sim_config):
        # With NO resilience, damage from frame 2 persists in later
        # frames (error propagation, the paper's Section 1 motivation).
        result = simulate(clip, NoResilience(), ScriptedLoss([2]), sim_config)
        later = result.frames[5]
        assert later.psnr_decoder < later.psnr_encoder - 0.5

    def test_gop_refresh_stops_propagation(self, clip, sim_config):
        result = simulate(
            clip, GOPStrategy(p_frames=2), ScriptedLoss([2]), sim_config
        )
        # Frames 3.. include an I-frame at 3: recovery by frame 3.
        recovered = result.frames[3]
        assert recovered.psnr_decoder == pytest.approx(
            recovered.psnr_encoder, abs=1e-9
        )

    def test_channel_log_counts(self, clip, sim_config):
        result = simulate(
            clip, NoResilience(), UniformLoss(plr=0.5, seed=3), sim_config
        )
        assert result.channel_log.sent == sum(
            r.packets_sent for r in result.frames
        )
        assert result.channel_log.delivered == result.channel_log.sent - sum(
            r.packets_lost for r in result.frames
        )

    def test_spatial_concealment_pluggable(self, clip, sim_config):
        result = simulate(
            clip,
            NoResilience(),
            ScriptedLoss([3]),
            sim_config,
            concealment=SpatialConcealment(),
        )
        assert result.n_frames == len(clip)


class TestRecoveryMetric:
    def test_no_losses_no_recovery_events(self, clip, sim_config):
        result = simulate(clip, NoResilience(), NoLoss(), sim_config)
        assert result.recovery_times() == []

    def test_gop_recovers_faster_than_no(self, sim_config):
        clip = small_sequence(n_frames=14)
        no = simulate(clip, NoResilience(), ScriptedLoss([3]), sim_config)
        gop = simulate(clip, GOPStrategy(p_frames=2), ScriptedLoss([3]), sim_config)
        assert max(gop.recovery_times()) <= max(no.recovery_times())

    def test_series_lengths(self, clip, sim_config):
        result = simulate(clip, NoResilience(), NoLoss(), sim_config)
        assert len(result.psnr_series()) == len(clip)
        assert len(result.size_series()) == len(clip)


class TestPBPAIREndToEnd:
    def test_pbpair_beats_no_under_loss(self, sim_config):
        clip = small_sequence(n_frames=16)
        loss_seed = 5
        no = simulate(
            clip, NoResilience(), UniformLoss(0.2, seed=loss_seed), sim_config
        )
        pbpair = simulate(
            clip,
            PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2)),
            UniformLoss(0.2, seed=loss_seed),
            sim_config,
        )
        assert pbpair.total_bad_pixels < no.total_bad_pixels

    def test_intra_fraction_increases_with_threshold(self, sim_config):
        clip = small_sequence(n_frames=12)
        fractions = []
        for th in (0.3, 0.7, 0.95):
            result = simulate(
                clip,
                PBPAIRStrategy(PBPAIRConfig(intra_th=th, plr=0.2)),
                NoLoss(),
                sim_config,
            )
            fractions.append(result.intra_fraction)
        assert fractions == sorted(fractions)

    def test_energy_decreases_with_intra_fraction(self, sim_config):
        clip = small_sequence(n_frames=12)
        low = simulate(
            clip,
            PBPAIRStrategy(PBPAIRConfig(intra_th=0.1, plr=0.2)),
            NoLoss(),
            sim_config,
        )
        high = simulate(
            clip,
            PBPAIRStrategy(PBPAIRConfig(intra_th=0.98, plr=0.2)),
            NoLoss(),
            sim_config,
        )
        assert high.energy_joules < low.energy_joules
        assert high.total_bytes > low.total_bytes

    def test_sequence_size_mismatch_rejected(self, sim_config):
        wrong = small_sequence(n_frames=2, width=96, height=64)
        with pytest.raises(ValueError):
            simulate(wrong, NoResilience(), NoLoss(), sim_config)
