"""End-to-end tests of the encode daemon and its HTTP+JSONL API."""

from __future__ import annotations

import json
import time

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.service import (
    JobSubmit,
    ServiceBusy,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    load_service_manifest,
    session_result_digest,
    start_daemon,
)
from repro.sim.pipeline import SimulationConfig
from repro.sim.runner import JobSpec, RunnerOptions, run_grid
from repro.video.synthetic import SyntheticConfig

from tests.conftest import SMALL_H, SMALL_W, small_config

TINY_CLIP = SyntheticConfig(
    width=SMALL_W, height=SMALL_H, n_frames=4, seed=11
)

#: Plenty for tiny 4-frame sessions, short enough to keep failures fast.
WAIT_S = 120.0


def tiny_spec(seed: int = 1, **overrides) -> JobSpec:
    defaults = dict(
        scheme="NO",
        plr=0.2,
        channel_seed=seed,
        sequence="tiny",
        synthetic=TINY_CLIP,
        config=SimulationConfig(codec=small_config()),
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


def daemon_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        queue_dir=tmp_path / "queue",
        port=0,  # ephemeral: tests never fight over a port
        runner=RunnerOptions(jobs=1, cache_dir=tmp_path / "cache"),
        service_workers=2,
        batch_size=4,
        lease_s=5.0,
        poll_s=0.02,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def wait_until(predicate, timeout: float = 30.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestEndToEnd:
    def test_submit_execute_results_summary_manifest(self, tmp_path):
        config = daemon_config(tmp_path)
        with start_daemon(config) as handle:
            client = ServiceClient(handle.url)
            health = client.health()
            assert health["ok"] and not health["draining"]

            submits = [
                JobSubmit(
                    spec=tiny_spec(seed=i),
                    priority=i % 2,
                    session_class="interactive" if i % 2 else "bulk",
                )
                for i in range(5)
            ]
            job_ids = client.submit(submits)
            assert len(job_ids) == len(set(job_ids)) == 5

            done = client.wait(job_ids, timeout=WAIT_S)
            assert sorted(s.state for s in done.values()) == ["ok"] * 5

            # Every completed session has a full SessionResult.
            for job_id in job_ids:
                result = client.result(job_id)
                assert result.job_id == job_id
                assert result.scheme == "NO"
                assert result.n_frames == TINY_CLIP.n_frames
                assert len(result.result_digest) == 64
                assert result.latency_s > 0

            summary = client.summary()
            assert summary.sessions == 5
            assert summary.counts == {"ok": 5}
            assert [c.session_class for c in summary.classes] == [
                "bulk",
                "interactive",
            ]
            for cls in summary.classes:
                assert cls.latency_s["p50"] > 0
                assert cls.psnr_db["p99"] >= cls.psnr_db["p50"] > 0

            live_manifest = client.manifest()
            assert live_manifest.counts == {"ok": 5}

            metrics = client.metrics()
            assert metrics["counters"]["service.completed"] == 5
            assert metrics["counters"]["service.submitted"] == 5

            client.drain()
        # The daemon wrote its durable manifest on the way out.
        final = handle.manifest
        assert final is not None and final.complete
        on_disk = load_service_manifest(config.resolved_manifest_path)
        assert on_disk.counts == {"ok": 5}
        assert {j.job_id for j in on_disk.jobs} == set(job_ids)

    def test_repeat_submission_served_from_cache(self, tmp_path):
        with start_daemon(daemon_config(tmp_path)) as handle:
            client = ServiceClient(handle.url)
            first = client.submit(JobSubmit(spec=tiny_spec(seed=7)))
            client.wait(first, timeout=WAIT_S)
            assert client.status(first[0]).state == "ok"

            second = client.submit(JobSubmit(spec=tiny_spec(seed=7)))
            done = client.wait(second, timeout=WAIT_S)
            assert done[second[0]].state == "cached"
            assert (
                client.result(second[0]).result_digest
                == client.result(first[0]).result_digest
            )
            client.shutdown()

    def test_results_bit_identical_to_batch_run_grid(self, tmp_path):
        """The service redesign changes scheduling, never values."""
        specs = [tiny_spec(seed=i, plr=0.3) for i in range(3)]
        with start_daemon(daemon_config(tmp_path)) as handle:
            client = ServiceClient(handle.url)
            job_ids = client.submit([JobSubmit(spec=s) for s in specs])
            client.wait(job_ids, timeout=WAIT_S)
            daemon_digests = [
                client.result(job_id).result_digest for job_id in job_ids
            ]
            client.shutdown()
        batch = run_grid(specs)  # no cache: a fully independent run
        batch_digests = [session_result_digest(o.result) for o in batch]
        assert daemon_digests == batch_digests

    def test_unknown_job_is_404(self, tmp_path):
        with start_daemon(daemon_config(tmp_path)) as handle:
            client = ServiceClient(handle.url)
            with pytest.raises(ServiceClientError) as excinfo:
                client.status("nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceClientError) as excinfo:
                client.result("nope")
            assert excinfo.value.status == 404
            client.shutdown()

    def test_malformed_submit_is_400(self, tmp_path):
        with start_daemon(daemon_config(tmp_path)) as handle:
            client = ServiceClient(handle.url)
            status, _headers, _body = client._request(
                "POST", "/v1/jobs", {"jobs": [{"not": "a submit"}]}
            )
            assert status == 400
            client.shutdown()


class TestBackpressureAndDraining:
    def hang_submit(self, seconds: float) -> JobSubmit:
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="worker_hang", hang_seconds=seconds, times=1
                ),
            ),
            seed=5,
        )
        return JobSubmit(spec=tiny_spec(seed=99, faults=plan))

    def test_bounded_queue_answers_429_with_retry_after(self, tmp_path):
        config = daemon_config(
            tmp_path, service_workers=1, batch_size=1, max_pending=1
        )
        with start_daemon(config) as handle:
            client = ServiceClient(handle.url)
            # Occupy the only dispatcher for a few seconds...
            hung = client.submit(self.hang_submit(3.0))
            wait_until(
                lambda: client.health()["running"] >= 1,
                message="hang job claimed",
            )
            # ...then fill the one pending slot and overflow it.
            filler = client.submit(JobSubmit(spec=tiny_spec(seed=1)))
            status, headers, body = client._request(
                "POST",
                "/v1/jobs",
                {"jobs": [JobSubmit(spec=tiny_spec(seed=2)).to_json()]},
            )
            assert status == 429
            assert float(headers["retry-after"]) > 0
            record = json.loads(body)
            assert record["job_ids"] == []  # nothing silently accepted

            # A pending-but-unclaimed job has no result yet: 409.
            with pytest.raises(ServiceClientError) as excinfo:
                client.result(filler[0])
            assert excinfo.value.status == 409

            # The client-side retry loop gives up cleanly when the
            # queue stays full past its deadline.
            with pytest.raises(ServiceBusy):
                client.submit(
                    JobSubmit(spec=tiny_spec(seed=3)), max_wait_s=0.0
                )

            done = client.wait(hung + filler, timeout=WAIT_S)
            assert all(s.ok for s in done.values())
            client.shutdown()

    def test_draining_daemon_refuses_submissions(self, tmp_path):
        config = daemon_config(tmp_path, service_workers=1, batch_size=1)
        with start_daemon(config) as handle:
            client = ServiceClient(handle.url)
            client.submit(self.hang_submit(3.0))
            health = client.drain()
            assert health["draining"]
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(JobSubmit(spec=tiny_spec(seed=1)))
            assert excinfo.value.status == 503
            # A drained daemon finishes its backlog and exits on its
            # own, publishing the final manifest.
            wait_until(
                lambda: handle.manifest is not None,
                timeout=WAIT_S,
                message="drain to finish the backlog",
            )
        assert handle.manifest.counts == {"ok": 1}


class TestFaultsAgainstClaims:
    def test_crashing_job_quarantined_others_unharmed(self, tmp_path):
        """A poison session burns its fail budget and is quarantined;
        the rest of the batch is unaffected — nothing lost, nothing
        double-counted."""
        poison_plan = FaultPlan(
            faults=(FaultSpec(kind="worker_crash", times=None),), seed=3
        )
        config = daemon_config(tmp_path, max_fails=2)
        with start_daemon(config) as handle:
            client = ServiceClient(handle.url)
            good = client.submit(
                [JobSubmit(spec=tiny_spec(seed=i)) for i in range(2)]
            )
            bad = client.submit(
                JobSubmit(spec=tiny_spec(seed=50, faults=poison_plan))
            )
            done = client.wait(good + bad, timeout=WAIT_S)
            assert [done[j].state for j in good] == ["ok", "ok"]
            assert done[bad[0]].state == "quarantined"
            assert done[bad[0]].fail_count == 2
            assert "InjectedWorkerCrash" in done[bad[0]].error

            metrics = client.metrics()
            assert metrics["counters"]["service.quarantined"] == 1
            client.shutdown()
        manifest = handle.manifest
        assert manifest.counts == {"ok": 2, "quarantined": 1}
        assert not manifest.complete
        assert manifest.n_jobs == 3


class TestConfigValidation:
    def test_rejects_bad_worker_counts(self, tmp_path):
        with pytest.raises(ValueError):
            ServiceConfig(queue_dir=tmp_path, service_workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_dir=tmp_path, batch_size=0)

    def test_manifest_path_defaults_into_queue_dir(self, tmp_path):
        config = ServiceConfig(queue_dir=tmp_path / "q")
        assert config.resolved_manifest_path.parent == tmp_path / "q"

    def test_client_rejects_non_http_url(self):
        with pytest.raises(ValueError):
            ServiceClient("ftp://localhost:1")
