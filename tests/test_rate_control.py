"""Unit and integration tests for frame-level rate control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.codec.rate import (
    ClosedLoopRateController,
    QPBitsModel,
    RateControlConfig,
    RateController,
    build_rate_controller,
)
from repro.network.loss import NoLoss
from repro.network.packet import Packetizer
from repro.codec.decoder import Decoder
from repro.resilience.none import NoResilience
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.core.pbpair import PBPAIRConfig
from repro.sim.pipeline import SimulationConfig, simulate

from tests.conftest import small_config, small_sequence


class TestRateControllerUnit:
    def test_starts_at_base_qp(self):
        controller = RateController(10000, base_qp=8)
        assert controller.quantizer == 8
        assert controller.buffer_bits == 0.0

    def test_overshoot_coarsens_qp(self):
        controller = RateController(10000, base_qp=8, sensitivity=2.0)
        controller.observe(30000)  # 2 target-frames of overshoot
        assert controller.quantizer == 12

    def test_on_target_is_stationary(self):
        controller = RateController(10000, base_qp=8)
        for _ in range(10):
            controller.observe(10000)
        assert controller.quantizer == 8

    def test_undershoot_refines_qp(self):
        controller = RateController(10000, base_qp=8, sensitivity=2.0)
        controller.observe(0)  # one banked target frame
        assert controller.quantizer == 6

    def test_banked_savings_bounded(self):
        controller = RateController(10000, base_qp=8)
        for _ in range(20):
            controller.observe(0)
        assert controller.buffer_bits == pytest.approx(
            -RateController.MAX_BANKED_FRAMES * 10000
        )
        assert controller.quantizer >= controller.min_qp

    def test_qp_clamped(self):
        controller = RateController(100, base_qp=8, max_qp=12)
        controller.observe(100000)
        assert controller.quantizer == 12

    def test_reset(self):
        controller = RateController(10000, base_qp=8)
        controller.observe(50000)
        controller.reset()
        assert controller.quantizer == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            RateController(0)
        with pytest.raises(ValueError):
            RateController(1000, base_qp=0)
        with pytest.raises(ValueError):
            RateController(1000, sensitivity=0)
        controller = RateController(1000)
        with pytest.raises(ValueError):
            controller.observe(-1)


class TestEncoderQPPlumbing:
    def test_per_frame_qp_recorded(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.quantizer = 4
        first = encoder.encode_frame(sequence[0])
        encoder.quantizer = 12
        second = encoder.encode_frame(sequence[1])
        assert first.qp == 4 and second.qp == 12

    def test_invalid_qp_rejected(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.quantizer = 0
        with pytest.raises(ValueError):
            encoder.encode_frame(sequence[0])

    def test_reset_restores_config_qp(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.quantizer = 20
        encoder.reset()
        assert encoder.quantizer == codec_config.quantizer

    def test_coarser_qp_means_fewer_bits(self, sequence, codec_config):
        fine = Encoder(codec_config, NoResilience())
        fine.quantizer = 3
        coarse = Encoder(codec_config, NoResilience())
        coarse.quantizer = 20
        assert (
            coarse.encode_frame(sequence[0]).size_bytes
            < fine.encode_frame(sequence[0]).size_bytes
        )

    def test_decoder_follows_varying_qp(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        packetizer = Packetizer(codec_config)
        decoder = Decoder(codec_config)
        reference = None
        for qp, frame in zip((4, 14, 7, 22), sequence):
            encoder.quantizer = qp
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            assert result.received.all()
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            reference = result.frame


class TestRateControlledSimulation:
    def test_tracks_target_rate(self, codec_config):
        clip = small_sequence(n_frames=16)
        target_bits = 4000
        controller = RateController(target_bits, base_qp=6)
        result = simulate(
            clip,
            NoResilience(),
            NoLoss(),
            SimulationConfig(codec=codec_config),
            rate_controller=controller,
        )
        steady = [r.size_bytes * 8 for r in result.frames[4:]]
        assert abs(np.mean(steady) - target_bits) / target_bits < 0.5

    def test_compatible_with_pbpair(self, codec_config):
        clip = small_sequence(n_frames=12)
        controller = RateController(10000, base_qp=6)
        result = simulate(
            clip,
            PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2)),
            NoLoss(),
            SimulationConfig(codec=codec_config),
            rate_controller=controller,
        )
        assert result.n_frames == len(clip)
        assert result.intra_fraction > 0.05  # PBPAIR still refreshing


class TestRateControlConfig:
    def test_defaults_and_budget(self):
        config = RateControlConfig(target_kbps=300.0)
        assert config.target_bits_per_frame == pytest.approx(10000.0)
        assert config.base_qp == 6 and config.steer_intra

    @pytest.mark.parametrize(
        "overrides",
        [
            {"target_kbps": 0.0},
            {"target_kbps": -10.0},
            {"fps": 0.0},
            {"min_qp": 0},
            {"base_qp": 0},
            {"max_qp": 32},
            {"base_qp": 5, "min_qp": 6},  # min above base
            {"base_qp": 30, "max_qp": 20},  # base above max
            {"sensitivity": 0.0},
            {"recovery_frames": 0},
            {"max_qp_step": 0},
            {"model_smoothing": 0.0},
            {"model_smoothing": 1.5},
            {"intra_gain": -0.1},
            {"intra_gain": 1.1},
        ],
    )
    def test_validation(self, overrides):
        kwargs = dict(target_kbps=300.0)
        kwargs.update(overrides)
        with pytest.raises(ValueError):
            RateControlConfig(**kwargs)

    def test_hashable_and_frozen(self):
        config = RateControlConfig(target_kbps=200.0)
        assert hash(config) == hash(RateControlConfig(target_kbps=200.0))
        with pytest.raises(AttributeError):
            config.target_kbps = 100.0


class TestQPBitsModel:
    def test_empty_model_declines_to_predict(self):
        model = QPBitsModel()
        assert model.predict(6) is None
        assert model.select_qp(10000) is None

    def test_prediction_monotone_in_qp(self):
        model = QPBitsModel()
        model.update(6, 12000)
        predictions = [model.predict(qp) for qp in range(1, 32)]
        assert predictions == sorted(predictions, reverse=True)

    def test_select_qp_smallest_that_fits(self):
        model = QPBitsModel()
        model.update(10, 1000)  # complexity = 10000 -> predict(qp)=10000/qp
        assert model.select_qp(2000) == 5
        assert model.select_qp(10000) == 1

    def test_select_qp_falls_back_to_max(self):
        model = QPBitsModel()
        model.update(1, 100000)
        assert model.select_qp(1, max_qp=31) == 31

    def test_complexity_tracks_recent_content(self):
        model = QPBitsModel(smoothing=1.0)  # trust only the last frame
        model.update(6, 60000)
        model.update(6, 600)
        assert model.predict(6) == pytest.approx(600.0)

    def test_observation_table_kept_for_introspection(self):
        model = QPBitsModel()
        model.update(6, 1200)
        model.update(8, 900)
        assert model.observed_qps == (6, 8)
        assert model.observed_bits_at(6) == pytest.approx(1200.0)
        assert model.observed_bits_at(12) is None

    def test_validation(self):
        model = QPBitsModel()
        with pytest.raises(ValueError):
            QPBitsModel(smoothing=0.0)
        with pytest.raises(ValueError):
            model.update(0, 100)
        with pytest.raises(ValueError):
            model.update(6, -1)
        model.update(6, 100)
        with pytest.raises(ValueError):
            model.predict(32)


class _FakePBPAIRController:
    def __init__(self, intra_th=0.9):
        self.intra_th = intra_th


class _FakePBPAIRStrategy:
    def __init__(self, intra_th=0.9):
        self.controller = _FakePBPAIRController(intra_th)


class TestClosedLoopRateControllerUnit:
    def make(self, **overrides):
        kwargs = dict(target_kbps=300.0, fps=30.0)  # 10000 bits/frame
        kwargs.update(overrides)
        return ClosedLoopRateController(RateControlConfig(**kwargs))

    def test_starts_at_base_qp(self):
        controller = self.make(base_qp=8)
        assert controller.quantizer == 8
        assert controller.frames_observed == 0
        assert controller.delivered_kbps == 0.0

    def test_overshoot_shrinks_budget(self):
        controller = self.make()
        controller.observe(30000)
        assert controller.debt_bits == pytest.approx(20000.0)
        assert controller.frame_budget < controller.target_bits_per_frame

    def test_undershoot_grows_budget(self):
        controller = self.make()
        controller.observe(0)
        assert controller.frame_budget > controller.target_bits_per_frame

    def test_budget_clamped_to_sane_band(self):
        controller = self.make()
        for _ in range(50):
            controller.observe(400000)
        target = controller.target_bits_per_frame
        assert controller.frame_budget >= 0.125 * target
        controller.reset()
        for _ in range(50):
            controller.observe(0)
        assert controller.frame_budget <= 4.0 * target

    def test_qp_moves_toward_fitting_budget(self):
        controller = self.make(base_qp=6)
        controller.observe(40000)  # 4x over at qp 6 -> must coarsen
        assert controller.quantizer > 6

    def test_qp_step_bounded(self):
        controller = self.make(base_qp=6, max_qp_step=2)
        controller.observe(10_000_000)  # grotesque overshoot
        assert controller.quantizer == 8  # 6 + max_qp_step, not 31

    def test_observe_returns_next_qp(self):
        controller = self.make()
        assert controller.observe(10000) == controller.quantizer

    def test_observe_rejects_negative(self):
        with pytest.raises(ValueError):
            self.make().observe(-1)

    def test_delivered_bitrate_accounting(self):
        controller = self.make()
        for _ in range(10):
            controller.observe(10000)
        assert controller.delivered_bits == 100000
        assert controller.delivered_kbps == pytest.approx(300.0)

    def test_steering_lowers_threshold_when_over_budget(self):
        controller = self.make()
        strategy = _FakePBPAIRStrategy(intra_th=0.8)
        for _ in range(10):
            controller.observe(40000)
        controller.steer_strategy(strategy)
        assert strategy.controller.intra_th < 0.8

    def test_steering_raises_threshold_when_under_budget(self):
        controller = self.make()
        strategy = _FakePBPAIRStrategy(intra_th=0.8)
        for _ in range(10):
            controller.observe(0)
        controller.steer_strategy(strategy)
        assert strategy.controller.intra_th > 0.8

    def test_steering_relative_to_first_seen_threshold(self):
        controller = self.make()
        strategy = _FakePBPAIRStrategy(intra_th=0.8)
        for _ in range(30):
            controller.observe(40000)
            controller.steer_strategy(strategy)
        # swing bounded by intra_gain around the latched base threshold
        floor = 0.8 * (1.0 - controller.config.intra_gain)
        assert strategy.controller.intra_th >= floor - 1e-9

    def test_steering_ignores_plain_strategies(self):
        controller = self.make()
        controller.steer_strategy(NoResilience())  # must not raise

    def test_steering_disabled_by_config(self):
        controller = self.make(steer_intra=False)
        strategy = _FakePBPAIRStrategy(intra_th=0.8)
        controller.observe(40000)
        controller.steer_strategy(strategy)
        assert strategy.controller.intra_th == 0.8

    def test_reset_restores_initial_state(self):
        controller = self.make()
        controller.observe(40000)
        controller.steer_strategy(_FakePBPAIRStrategy())
        controller.reset()
        assert controller.debt_bits == 0.0
        assert controller.frames_observed == 0
        assert controller.quantizer == controller.config.base_qp
        assert controller.last_row_bits == ()

    def test_separate_intra_inter_models(self, sequence, codec_config):
        controller = self.make()
        encoder = Encoder(codec_config, NoResilience())
        controller.observe_frame(encoder.encode_frame(sequence[0]))  # I
        controller.observe_frame(encoder.encode_frame(sequence[1]))  # P
        assert controller.intra_model.complexity is not None
        assert controller.inter_model.complexity is not None
        # The I frame must not poison the P-frame cost estimate.
        assert (
            controller.inter_model.complexity
            < controller.intra_model.complexity
        )


class TestPerRowAccounting:
    def test_row_bits_partition_the_frame(self, sequence, codec_config):
        controller = ClosedLoopRateController(
            RateControlConfig(target_kbps=300.0)
        )
        encoder = Encoder(codec_config, NoResilience())
        encoded = encoder.encode_frame(sequence[0])
        controller.observe_frame(encoded)
        rows = encoded.reconstruction.shape[0] // 16
        assert len(controller.last_row_bits) == rows
        assert sum(controller.last_row_bits) == (
            encoded.mb_bit_offsets[-1] - encoded.mb_bit_offsets[0]
        )

    def test_rows_over_budget_counts_hot_rows(self, sequence, codec_config):
        # A tiny budget: every row must run over its share.
        controller = ClosedLoopRateController(
            RateControlConfig(target_kbps=0.001)
        )
        encoder = Encoder(codec_config, NoResilience())
        encoded = encoder.encode_frame(sequence[0])
        controller.observe_frame(encoded)
        rows = encoded.reconstruction.shape[0] // 16
        assert controller.rows_over_budget == rows


class TestClosedLoopConvergence:
    def _delivered_kbps(self, result, fps=30.0):
        return result.total_bytes * 8 / result.n_frames * fps / 1000.0

    def _feasible_target_kbps(self, clip, codec_config, qp=10):
        """A bitrate inside the clip's feasible band: its size at ``qp``."""
        encoder = Encoder(codec_config, NoResilience())
        bits = [encoder.encode_frame(f).stats.bits for f in clip]
        return np.mean(bits) * 30.0 / 1000.0

    def test_converges_on_synthetic_sequence(self, codec_config):
        clip = small_sequence(n_frames=48)
        target = self._feasible_target_kbps(clip, codec_config)
        rate = RateControlConfig(target_kbps=target)
        result = simulate(
            clip,
            NoResilience(),
            NoLoss(),
            SimulationConfig(codec=codec_config),
            rate_controller=build_rate_controller(rate),
        )
        delivered = self._delivered_kbps(result)
        assert abs(delivered - target) / target < 0.10

    def test_converges_with_pbpair(self, codec_config):
        clip = small_sequence(n_frames=48)
        target = self._feasible_target_kbps(clip, codec_config)
        result = simulate(
            clip,
            PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.1)),
            NoLoss(),
            SimulationConfig(codec=codec_config),
            rate_controller=build_rate_controller(
                RateControlConfig(target_kbps=target)
            ),
        )
        delivered = self._delivered_kbps(result)
        assert abs(delivered - target) / target < 0.15

    def test_rate_control_changes_the_stream(self, codec_config):
        clip = small_sequence(n_frames=12)
        config = SimulationConfig(codec=codec_config)
        free = simulate(clip, NoResilience(), NoLoss(), config)
        target = 0.25 * self._delivered_kbps(free)
        squeezed = simulate(
            clip,
            NoResilience(),
            NoLoss(),
            config,
            rate_controller=build_rate_controller(
                RateControlConfig(target_kbps=target)
            ),
        )
        assert squeezed.total_bytes < free.total_bytes


class TestBuildRateController:
    def test_none_means_off(self):
        assert build_rate_controller(None) is None

    def test_builds_fresh_controller(self):
        config = RateControlConfig(target_kbps=200.0)
        first = build_rate_controller(config)
        second = build_rate_controller(config)
        assert isinstance(first, ClosedLoopRateController)
        assert first is not second and first.config == config
