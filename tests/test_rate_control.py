"""Unit and integration tests for frame-level rate control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.codec.rate import RateController
from repro.network.loss import NoLoss
from repro.network.packet import Packetizer
from repro.codec.decoder import Decoder
from repro.resilience.none import NoResilience
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.core.pbpair import PBPAIRConfig
from repro.sim.pipeline import SimulationConfig, simulate

from tests.conftest import small_config, small_sequence


class TestRateControllerUnit:
    def test_starts_at_base_qp(self):
        controller = RateController(10000, base_qp=8)
        assert controller.quantizer == 8
        assert controller.buffer_bits == 0.0

    def test_overshoot_coarsens_qp(self):
        controller = RateController(10000, base_qp=8, sensitivity=2.0)
        controller.observe(30000)  # 2 target-frames of overshoot
        assert controller.quantizer == 12

    def test_on_target_is_stationary(self):
        controller = RateController(10000, base_qp=8)
        for _ in range(10):
            controller.observe(10000)
        assert controller.quantizer == 8

    def test_undershoot_refines_qp(self):
        controller = RateController(10000, base_qp=8, sensitivity=2.0)
        controller.observe(0)  # one banked target frame
        assert controller.quantizer == 6

    def test_banked_savings_bounded(self):
        controller = RateController(10000, base_qp=8)
        for _ in range(20):
            controller.observe(0)
        assert controller.buffer_bits == pytest.approx(
            -RateController.MAX_BANKED_FRAMES * 10000
        )
        assert controller.quantizer >= controller.min_qp

    def test_qp_clamped(self):
        controller = RateController(100, base_qp=8, max_qp=12)
        controller.observe(100000)
        assert controller.quantizer == 12

    def test_reset(self):
        controller = RateController(10000, base_qp=8)
        controller.observe(50000)
        controller.reset()
        assert controller.quantizer == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            RateController(0)
        with pytest.raises(ValueError):
            RateController(1000, base_qp=0)
        with pytest.raises(ValueError):
            RateController(1000, sensitivity=0)
        controller = RateController(1000)
        with pytest.raises(ValueError):
            controller.observe(-1)


class TestEncoderQPPlumbing:
    def test_per_frame_qp_recorded(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.quantizer = 4
        first = encoder.encode_frame(sequence[0])
        encoder.quantizer = 12
        second = encoder.encode_frame(sequence[1])
        assert first.qp == 4 and second.qp == 12

    def test_invalid_qp_rejected(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.quantizer = 0
        with pytest.raises(ValueError):
            encoder.encode_frame(sequence[0])

    def test_reset_restores_config_qp(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        encoder.quantizer = 20
        encoder.reset()
        assert encoder.quantizer == codec_config.quantizer

    def test_coarser_qp_means_fewer_bits(self, sequence, codec_config):
        fine = Encoder(codec_config, NoResilience())
        fine.quantizer = 3
        coarse = Encoder(codec_config, NoResilience())
        coarse.quantizer = 20
        assert (
            coarse.encode_frame(sequence[0]).size_bytes
            < fine.encode_frame(sequence[0]).size_bytes
        )

    def test_decoder_follows_varying_qp(self, sequence, codec_config):
        encoder = Encoder(codec_config, NoResilience())
        packetizer = Packetizer(codec_config)
        decoder = Decoder(codec_config)
        reference = None
        for qp, frame in zip((4, 14, 7, 22), sequence):
            encoder.quantizer = qp
            ef = encoder.encode_frame(frame)
            payloads = [p.payload for p in packetizer.packetize(ef)]
            result = decoder.decode_frame(payloads, reference, frame.index)
            assert result.received.all()
            np.testing.assert_array_equal(result.frame, ef.reconstruction)
            reference = result.frame


class TestRateControlledSimulation:
    def test_tracks_target_rate(self, codec_config):
        clip = small_sequence(n_frames=16)
        target_bits = 4000
        controller = RateController(target_bits, base_qp=6)
        result = simulate(
            clip,
            NoResilience(),
            NoLoss(),
            SimulationConfig(codec=codec_config),
            rate_controller=controller,
        )
        steady = [r.size_bytes * 8 for r in result.frames[4:]]
        assert abs(np.mean(steady) - target_bits) / target_bits < 0.5

    def test_compatible_with_pbpair(self, codec_config):
        clip = small_sequence(n_frames=12)
        controller = RateController(10000, base_qp=6)
        result = simulate(
            clip,
            PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2)),
            NoLoss(),
            SimulationConfig(codec=codec_config),
            rate_controller=controller,
        )
        assert result.n_frames == len(clip)
        assert result.intra_fraction > 0.05  # PBPAIR still refreshing
