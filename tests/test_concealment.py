"""Unit tests for error concealment strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.concealment.copy import CopyConcealment
from repro.concealment.spatial import SpatialConcealment

ROWS, COLS = 3, 4
H, W = ROWS * 16, COLS * 16


def _frame(value=0):
    return np.full((H, W), value, dtype=np.uint8)


def _received(*lost):
    mask = np.ones((ROWS, COLS), dtype=bool)
    for r, c in lost:
        mask[r, c] = False
    return mask


class TestCopyConcealment:
    def test_no_losses_is_identity(self, rng):
        frame = rng.integers(0, 256, (H, W)).astype(np.uint8)
        out = CopyConcealment().conceal(frame, _received(), _frame(9))
        np.testing.assert_array_equal(out, frame)

    def test_lost_block_copied_from_reference(self):
        frame = _frame(10)
        reference = _frame(200)
        out = CopyConcealment().conceal(frame, _received((1, 2)), reference)
        assert (out[16:32, 32:48] == 200).all()
        assert (out[0:16, 0:16] == 10).all()

    def test_no_reference_fills_grey(self):
        out = CopyConcealment().conceal(_frame(10), _received((0, 0)), None)
        assert (out[:16, :16] == 128).all()

    def test_input_not_mutated(self):
        frame = _frame(10)
        CopyConcealment().conceal(frame, _received((0, 0)), _frame(99))
        assert (frame == 10).all()


class TestSpatialConcealment:
    def test_no_losses_is_identity(self, rng):
        frame = rng.integers(0, 256, (H, W)).astype(np.uint8)
        out = SpatialConcealment().conceal(frame, _received(), None)
        np.testing.assert_array_equal(out, frame)

    def test_interpolates_from_neighbours(self):
        frame = _frame(0)
        frame[:, :] = 0
        frame[0:16, 16:32] = 100  # above
        frame[32:48, 16:32] = 200  # below
        received = _received((1, 1))
        # Make left/right neighbours lost too so only above/below count.
        received[1, 0] = False
        received[1, 2] = False
        out = SpatialConcealment().conceal(frame, received, None)
        assert abs(int(out[20, 20]) - 150) <= 1

    def test_fully_surrounded_falls_back_to_copy(self):
        frame = _frame(10)
        reference = _frame(222)
        received = np.zeros((ROWS, COLS), dtype=bool)  # everything lost
        out = SpatialConcealment().conceal(frame, received, reference)
        np.testing.assert_array_equal(out, reference)

    def test_corner_block_uses_available_neighbours(self):
        frame = _frame(0)
        frame[0:16, 16:32] = 80  # right neighbour of (0,0)
        frame[16:32, 0:16] = 80  # below neighbour of (0,0)
        out = SpatialConcealment().conceal(frame, _received((0, 0)), None)
        assert (out[:16, :16] == 80).all()

    def test_names(self):
        assert CopyConcealment().name == "copy"
        assert SpatialConcealment().name == "spatial"


class TestMotionRecoveryConcealment:
    def _panned_pair(self, rng, shift=4):
        # Reference, and a current frame equal to the reference panned
        # left by `shift` pixels (global motion).
        reference = rng.integers(0, 256, (H, W + 16)).astype(np.uint8)
        previous = reference[:, :W].copy()
        current = reference[:, shift : W + shift].copy()
        return previous, current

    def test_global_pan_recovered_better_than_copy(self, rng):
        from repro.concealment.motion import MotionRecoveryConcealment

        shift = 4
        previous, current = self._panned_pair(rng, shift)
        received = _received((1, 1))
        decoded = current.copy()
        decoded[16:32, 16:32] = previous[16:32, 16:32]  # copy-seeded loss
        # Every received neighbour decoded the true global motion.
        mvs = np.zeros((ROWS, COLS, 2), dtype=np.int64)
        mvs[:, :, 1] = shift
        out = MotionRecoveryConcealment().conceal(
            decoded, received, previous, mvs_pixels=mvs
        )
        truth = current[16:32, 16:32].astype(np.int64)
        recovered = out[16:32, 16:32].astype(np.int64)
        copied = previous[16:32, 16:32].astype(np.int64)
        assert np.abs(recovered - truth).sum() < np.abs(copied - truth).sum()
        np.testing.assert_array_equal(recovered, truth)

    def test_without_motion_field_falls_back_to_copy(self):
        from repro.concealment.motion import MotionRecoveryConcealment
        from repro.concealment.copy import CopyConcealment

        frame = _frame(10)
        reference = _frame(200)
        received = _received((0, 2))
        motion_out = MotionRecoveryConcealment().conceal(
            frame, received, reference, mvs_pixels=None
        )
        copy_out = CopyConcealment().conceal(frame, received, reference)
        np.testing.assert_array_equal(motion_out, copy_out)

    def test_intra_neighbours_excluded(self, rng):
        from repro.codec.types import MacroblockMode
        from repro.concealment.motion import MotionRecoveryConcealment

        previous, current = self._panned_pair(rng, 4)
        received = _received((1, 1))
        decoded = current.copy()
        # All neighbours are intra (mv zero is meaningless): strategy
        # must keep the copy fallback rather than trust zero motion.
        mvs = np.zeros((ROWS, COLS, 2), dtype=np.int64)
        modes = np.full((ROWS, COLS), MacroblockMode.INTRA, dtype=object)
        out = MotionRecoveryConcealment().conceal(
            decoded, received, previous, mvs_pixels=mvs, modes=modes
        )
        np.testing.assert_array_equal(
            out[16:32, 16:32], previous[16:32, 16:32]
        )

    def test_median_rejects_outlier(self, rng):
        from repro.concealment.motion import MotionRecoveryConcealment

        shift = 4
        previous, current = self._panned_pair(rng, shift)
        received = _received((1, 1))
        decoded = current.copy()
        mvs = np.zeros((ROWS, COLS, 2), dtype=np.int64)
        mvs[:, :, 1] = shift
        mvs[0, 1, 1] = -7  # one disagreeing neighbour
        out = MotionRecoveryConcealment().conceal(
            decoded, received, previous, mvs_pixels=mvs
        )
        np.testing.assert_array_equal(
            out[16:32, 16:32], current[16:32, 16:32]
        )

    def test_end_to_end_on_panning_clip(self):
        from repro.concealment.copy import CopyConcealment
        from repro.concealment.motion import MotionRecoveryConcealment
        from repro.network.loss import ScriptedLoss
        from repro.resilience.none import NoResilience
        from repro.sim.pipeline import SimulationConfig, simulate
        from tests.conftest import small_config, small_sequence

        # Strong smooth pan so neighbours' motion is informative.
        clip = small_sequence(
            n_frames=10,
            texture_smoothness=4,
            pan_speed=3.0,
            object_radius=0,
            sensor_noise=0.4,
            texture_drift=0.0,
        )
        config = SimulationConfig(codec=small_config())
        copy_run = simulate(
            clip,
            NoResilience(),
            ScriptedLoss([4]),
            config,
            concealment=CopyConcealment(),
        )
        motion_run = simulate(
            clip,
            NoResilience(),
            ScriptedLoss([4]),
            config,
            concealment=MotionRecoveryConcealment(),
        )
        assert (
            motion_run.frames[4].psnr_decoder
            >= copy_run.frames[4].psnr_decoder
        )
