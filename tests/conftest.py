"""Shared fixtures: small, fast sequences and codec configs.

Most tests run on a 64x48 (4x3 macroblock) synthetic clip — big enough
to exercise every code path (multiple MB rows/columns, motion, refresh
sweeps) and small enough to keep the suite fast.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.codec.types import CodecConfig
from repro.video.frame import Frame, VideoSequence
from repro.video.synthetic import SyntheticConfig, generate_sequence

# Hypothesis profiles: "dev" (default) explores with fresh entropy each
# run; "ci" derandomizes so a pipeline failure reproduces exactly from
# the log.  Select with HYPOTHESIS_PROFILE=ci.
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.register_profile(
    "ci", derandomize=True, deadline=None, print_blob=True
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

SMALL_W, SMALL_H = 64, 48


def small_config(**overrides) -> CodecConfig:
    defaults = dict(width=SMALL_W, height=SMALL_H, quantizer=6)
    defaults.update(overrides)
    return CodecConfig(**defaults)


def small_sequence(n_frames: int = 8, seed: int = 11, **overrides) -> VideoSequence:
    defaults = dict(
        width=SMALL_W,
        height=SMALL_H,
        n_frames=n_frames,
        texture_scale=30.0,
        texture_smoothness=2,
        object_radius=10,
        object_motion_amplitude=10.0,
        object_motion_period=8,
        sensor_noise=0.8,
        texture_drift=3.0,
        texture_drift_period=10,
        seed=seed,
    )
    defaults.update(overrides)
    return generate_sequence(SyntheticConfig(**defaults), name="small")


@pytest.fixture(scope="session")
def codec_config() -> CodecConfig:
    return small_config()


@pytest.fixture(scope="session")
def sequence() -> VideoSequence:
    return small_sequence()


@pytest.fixture(scope="session")
def still_sequence() -> VideoSequence:
    """A sequence with no motion at all (pure noise-free repetition)."""
    rng = np.random.default_rng(5)
    base = rng.integers(0, 256, size=(SMALL_H, SMALL_W)).astype(np.uint8)
    frames = [Frame(base.copy(), i) for i in range(5)]
    return VideoSequence(tuple(frames), name="still")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
