"""Unit tests for the zigzag scan."""

from __future__ import annotations

import numpy as np

from repro.codec.zigzag import inverse_zigzag_order, zigzag_order


class TestZigzagOrder:
    def test_is_a_permutation(self):
        order = zigzag_order()
        assert sorted(order.tolist()) == list(range(64))

    def test_starts_with_standard_prefix(self):
        # The canonical JPEG/H.263 scan begins DC, right, down-left, ...
        expected_prefix = [0, 1, 8, 16, 9, 2, 3, 10, 17, 24]
        assert zigzag_order()[:10].tolist() == expected_prefix

    def test_ends_at_highest_frequency(self):
        assert zigzag_order()[-1] == 63

    def test_inverse_inverts(self):
        flat = np.arange(64)
        scanned = flat[zigzag_order()]
        restored = scanned[inverse_zigzag_order()]
        np.testing.assert_array_equal(restored, flat)

    def test_neighbouring_entries_are_adjacent_cells(self):
        # Each step in the scan moves to a touching cell (8-neighbourhood).
        order = zigzag_order()
        rows, cols = order // 8, order % 8
        dr = np.abs(np.diff(rows))
        dc = np.abs(np.diff(cols))
        assert (np.maximum(dr, dc) <= 2).all()

    def test_orders_by_diagonal(self):
        # Zigzag visits anti-diagonals in nondecreasing order.
        order = zigzag_order()
        diagonals = order // 8 + order % 8
        assert (np.diff(diagonals) >= 0).sum() >= 49  # monotone per diagonal

    def test_arrays_are_readonly(self):
        import pytest

        with pytest.raises(ValueError):
            zigzag_order()[0] = 5
        with pytest.raises(ValueError):
            inverse_zigzag_order()[0] = 5
