"""Tests for the stable public facade (:mod:`repro.api`) and re-exports."""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import api

from tests.conftest import small_config, small_sequence


class TestFacadeSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), f"api.__all__ lists missing {name!r}"

    def test_all_is_complete(self):
        # Every public callable *defined* in the facade must be declared
        # stable; anything else public there is an accidental leak.
        defined = {
            name
            for name, value in vars(api).items()
            if not name.startswith("_")
            and getattr(value, "__module__", None) == "repro.api"
        }
        assert defined <= set(api.__all__)

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)
        exported = {name for name in namespace if not name.startswith("_")}
        assert exported == set(api.__all__)

    @pytest.mark.parametrize(
        "name",
        [
            "simulate",
            "run_experiment",
            "sweep",
            "replicate",
            "comparison_specs",
            "encode_sequence",
            "decode_stream",
        ],
    )
    def test_harness_options_are_keyword_only(self, name):
        signature = inspect.signature(getattr(api, name))
        positional = [
            p
            for p in signature.parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        # At most the leading subject argument may be positional.
        assert len(positional) <= 1

    def test_simulate_rejects_positional_strategy(self):
        video = small_sequence(n_frames=2)
        strategy = api.make_strategy("NO")
        with pytest.raises(TypeError):
            api.simulate(video, strategy)  # strategy must be keyword-only

    def test_simulate_rejects_loss_model_and_plr(self):
        video = small_sequence(n_frames=2)
        with pytest.raises(ValueError):
            api.simulate(
                video,
                strategy=api.make_strategy("NO"),
                loss_model=repro.UniformLoss(plr=0.1),
                plr=0.1,
            )


class TestFacadeBehaviour:
    def test_simulate_matches_internal_pipeline(self):
        from repro.network.loss import UniformLoss
        from repro.sim.pipeline import SimulationConfig
        from repro.sim.pipeline import simulate as internal_simulate

        video = small_sequence(n_frames=3)
        config = SimulationConfig(codec=small_config())
        via_api = api.simulate(
            video,
            strategy=api.make_strategy("GOP-2"),
            plr=0.2,
            seed=7,
            config=config,
        )
        direct = internal_simulate(
            video,
            api.make_strategy("GOP-2"),
            loss_model=UniformLoss(plr=0.2, seed=7),
            config=config,
        )
        assert via_api.frames == direct.frames

    def test_make_strategy_builds_paper_schemes(self):
        from repro.resilience.base import ResilienceStrategy

        for spec in ("NO", "GOP-3", "AIR-24", "PGOP-3"):
            assert isinstance(api.make_strategy(spec), ResilienceStrategy)
        pbpair = api.make_strategy("PBPAIR", intra_th=0.8, plr=0.1)
        assert pbpair.name.startswith("PBPAIR")

    def test_make_sequence(self):
        video = api.make_sequence("akiyo", n_frames=3)
        assert len(video) == 3
        with pytest.raises(ValueError):
            api.make_sequence("not-a-clip")

    def test_encode_sequence_rejects_positional_strategy(self):
        video = small_sequence(n_frames=2)
        with pytest.raises(TypeError):
            api.encode_sequence(video, "NO")  # strategy must be keyword-only

    def test_codec_round_trip_through_facade(self):
        import numpy as np

        video = small_sequence(n_frames=3)
        config = small_config()
        encoded = api.encode_sequence(video, strategy="GOP-2", config=config)
        assert len(encoded) == 3
        assert all(isinstance(ef, api.EncodedFrame) for ef in encoded)

        decoded = api.decode_stream(encoded, config=config)
        assert len(decoded) == 3
        assert all(isinstance(d, api.DecodeResult) for d in decoded)
        # Lossless delivery: the decoder must land exactly on the
        # encoder's reconstruction, frame for frame.
        for ef, d in zip(encoded, decoded):
            assert d.frame_index == ef.frame_index
            assert np.array_equal(d.frame, ef.reconstruction)

    def test_decode_stream_accepts_fragment_lists(self):
        import numpy as np

        video = small_sequence(n_frames=2)
        config = small_config()
        encoded = api.encode_sequence(video, strategy="NO", config=config)
        packetizer = api.Packetizer(config)
        fragments = [
            [p.payload for p in packetizer.packetize(ef)] for ef in encoded
        ]
        via_fragments = api.decode_stream(fragments, config=config)
        via_frames = api.decode_stream(encoded, config=config)
        for a, b in zip(via_fragments, via_frames):
            assert np.array_equal(a.frame, b.frame)

    def test_encode_sequence_accepts_strategy_instance(self):
        video = small_sequence(n_frames=2)
        config = small_config()
        by_spec = api.encode_sequence(video, strategy="NO", config=config)
        by_instance = api.encode_sequence(
            video, strategy=api.make_strategy("NO"), config=config
        )
        assert [ef.payload for ef in by_spec] == [
            ef.payload for ef in by_instance
        ]

    def test_experiment_helpers_round_trip(self):
        video = small_sequence(n_frames=3)
        from repro.sim.pipeline import SimulationConfig

        config = SimulationConfig(codec=small_config())
        specs = api.comparison_specs(["NO", "GOP-2"])
        results = api.sweep(video, specs=specs, config=config)
        assert [r.label for r in results] == ["NO", "GOP-2"]
        single = api.run_experiment(video, spec=specs[0], config=config)
        assert single.result.frames == results[0].result.frames


class TestPackageReExports:
    def test_resilience_package_re_exports(self):
        from repro.resilience import (
            AIRStrategy,
            GOPStrategy,
            NoResilience,
            PBPAIRStrategy,
            PGOPStrategy,
            build_strategy,
        )

        assert callable(build_strategy)
        assert all(
            inspect.isclass(cls)
            for cls in (
                AIRStrategy,
                GOPStrategy,
                NoResilience,
                PBPAIRStrategy,
                PGOPStrategy,
            )
        )

    def test_sim_package_re_exports(self):
        from repro.sim import (
            FrameRecord,
            SimulationConfig,
            SimulationResult,
            simulate,
        )

        assert callable(simulate)
        assert all(
            inspect.isclass(cls)
            for cls in (FrameRecord, SimulationConfig, SimulationResult)
        )

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestVersion:
    def test_version_is_single_sourced_from_pyproject(self):
        import pathlib

        pyproject = (
            pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        )
        text = pyproject.read_text()
        assert f'version = "{repro.__version__}"' in text

    def test_version_looks_like_a_version(self):
        major = repro.__version__.split(".")[0]
        assert major.isdigit()
