"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_sequence(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--sequence", "matrix"])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.sequence == "foreman"
        assert args.plr == 0.1
        assert args.scheme == "PBPAIR"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for token in ("PBPAIR", "foreman", "akiyo", "garden", "ipaq", "zaurus"):
            assert token in out

    def test_simulate_pbpair(self, capsys):
        code = main(
            [
                "simulate",
                "--frames",
                "8",
                "--scheme",
                "PBPAIR",
                "--intra-th",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered PSNR" in out
        assert "encoding energy" in out

    def test_simulate_baseline(self, capsys):
        assert main(["simulate", "--frames", "6", "--scheme", "GOP-2"]) == 0
        assert "GOP-2" in capsys.readouterr().out

    def test_simulate_zaurus_device(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--frames",
                    "6",
                    "--scheme",
                    "NO",
                    "--device",
                    "zaurus",
                ]
            )
            == 0
        )
        assert "Zaurus" in capsys.readouterr().out

    def test_simulate_bad_scheme_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--frames", "4", "--scheme", "MAGIC-9"])

    def test_bad_frames_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--frames", "0"])

    def test_sweep(self, capsys):
        assert (
            main(["sweep", "--frames", "8", "--sequence", "akiyo", "--no-cache"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Intra_Th" in out
        assert "operating points" in out

    def test_sweep_parallel_with_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--frames",
            "4",
            "--sequence",
            "akiyo",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0  # second run: all cells from the cache
        warm = capsys.readouterr().out
        assert warm == cold
        assert len(list(tmp_path.glob("*.pkl"))) >= 6

    def test_sweep_rejects_negative_jobs(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep",
                    "--frames",
                    "4",
                    "--jobs",
                    "-1",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )

    @pytest.mark.slow
    def test_compare(self, capsys, tmp_path):
        assert (
            main(["compare", "--frames", "12", "--cache-dir", str(tmp_path)])
            == 0
        )
        out = capsys.readouterr().out
        for scheme in ("NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24"):
            assert scheme in out

    def test_compare_parallel_matches_serial(self, capsys, tmp_path):
        base = ["compare", "--frames", "4", "--sequence", "akiyo"]
        assert main(base + ["--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(base + ["--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
        )
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestRateControlFlags:
    def test_simulate_reports_delivered_bitrate(self, capsys):
        code = main(
            ["simulate", "--frames", "8", "--scheme", "NO",
             "--target-kbps", "400"]
        )
        assert code == 0
        assert "delivered bitrate" in capsys.readouterr().out

    def test_compare_matched_bitrate_skips_calibration(self, capsys):
        code = main(
            ["compare", "--frames", "8", "--sequence", "akiyo",
             "--target-kbps", "400", "--no-cache"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Calibrating" not in captured.err  # zero bisection probes
        assert "matched bitrate 400 kbps" in captured.out
        for column in ("kbps", "err %"):
            assert column in captured.out
        for scheme in ("NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24"):
            assert scheme in captured.out

    def test_sweep_accepts_target_kbps(self, capsys):
        code = main(
            ["sweep", "--frames", "6", "--sequence", "akiyo",
             "--target-kbps", "400", "--no-cache"]
        )
        assert code == 0
        assert "PBPAIR operating points" in capsys.readouterr().out

    def test_nonpositive_target_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--frames", "4", "--target-kbps", "0"])
        with pytest.raises(SystemExit):
            main(["compare", "--frames", "4", "--target-kbps", "-100"])

    def test_sensitivity_without_target_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--frames", "4", "--rate-sensitivity", "2.0"])

    def test_bad_sensitivity_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "--frames", "4", "--target-kbps", "400",
                 "--rate-sensitivity", "0"]
            )


class TestSigmaCommand:
    def test_sigma_prints_heatmaps(self, capsys):
        assert main(["sigma", "--frames", "8", "--sequence", "akiyo"]) == 0
        out = capsys.readouterr().out
        assert "sigma heatmaps" in out
        assert "frame" in out
        # 9 rows of 11 glyphs for QCIF.
        lines = [l for l in out.splitlines() if len(l) == 11]
        assert len(lines) >= 9


class TestTraceCommandErrors:
    """`repro trace` exits with a message, never a traceback."""

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "no/such/trace.jsonl"])
        assert "no such trace file" in str(excinfo.value.code)

    def test_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "trace.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", str(empty)])
        assert "empty" in str(excinfo.value.code)

    def test_truncated_jsonl(self, tmp_path, capsys):
        torn = tmp_path / "trace.jsonl"
        torn.write_text('{"schema": 2, "trace_id": "t"}\n{"span": {"na')
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", str(torn)])
        assert "not a trace file" in str(excinfo.value.code)

    def test_directory_instead_of_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", str(tmp_path)])
        assert "directory" in str(excinfo.value.code)


class TestStatusCommandErrors:
    """`repro status --journal` mirrors the trace command's robustness."""

    def test_missing_journal(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["status", "--journal", "no/such/journal.jsonl"])
        assert "no such journal file" in str(excinfo.value.code)

    def test_empty_journal(self, tmp_path, capsys):
        empty = tmp_path / "journal.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["status", "--journal", str(empty)])
        assert "empty" in str(excinfo.value.code)

    def test_header_only_journal(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            '{"type":"header","schema_version":1,'
            '"format":"repro-service-journal"}\n'
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["status", "--journal", str(path)])
        assert "no job events" in str(excinfo.value.code)

    def test_non_journal_jsonl(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(SystemExit) as excinfo:
            main(["status", "--journal", str(path)])
        assert "not a journal file" in str(excinfo.value.code)

    def test_truncated_final_line_tolerated(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            '{"type":"header","schema_version":1}\n'
            '{"type":"event","event":"submitted","job_id":"a1",'
            '"state":"pending","session_class":"standard","priority":0,'
            '"attempts":0,"fail_count":0,"ts":1.0}\n'
            '{"type":"event","event":"comp'  # daemon died mid-append
        )
        assert main(["status", "--journal", str(path)]) == 0
        captured = capsys.readouterr()
        assert "a1" in captured.out
        assert "truncated final journal line" in captured.err

    def test_truncated_middle_line_rejected(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            '{"type":"header","schema_version":1}\n'
            '{"type":"event","event":"subm\n'
            '{"type":"event","event":"submitted","job_id":"a1",'
            '"state":"pending","ts":1.0}\n'
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["status", "--journal", str(path)])
        assert "bad JSON" in str(excinfo.value.code)

    def test_unknown_job_id_in_journal(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            '{"type":"header","schema_version":1}\n'
            '{"type":"event","event":"submitted","job_id":"a1",'
            '"state":"pending","ts":1.0}\n'
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["status", "--journal", str(path), "zzz"])
        assert "no such job in journal" in str(excinfo.value.code)
