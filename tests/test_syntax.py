"""Unit tests for fragment headers and macroblock syntax."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter, BitstreamError
from repro.codec.syntax import (
    FragmentHeader,
    decode_macroblock,
    encode_macroblock,
    read_fragment_header,
    write_fragment_header,
)
from repro.codec.types import FrameType, MacroblockMode


def _roundtrip_header(header: FragmentHeader) -> FragmentHeader:
    writer = BitWriter()
    write_fragment_header(writer, header)
    return read_fragment_header(BitReader(writer.getvalue()))


class TestFragmentHeader:
    def test_roundtrip(self):
        header = FragmentHeader(
            frame_index=123, frame_type=FrameType.P, qp=9, first_mb=17, mb_count=5
        )
        assert _roundtrip_header(header) == header

    def test_roundtrip_i_frame(self):
        header = FragmentHeader(
            frame_index=0, frame_type=FrameType.I, qp=31, first_mb=0, mb_count=99
        )
        assert _roundtrip_header(header) == header

    def test_bad_magic_rejected(self):
        writer = BitWriter()
        write_fragment_header(
            writer,
            FragmentHeader(1, FrameType.P, 5, 0, 1),
        )
        data = bytearray(writer.getvalue())
        data[0] ^= 0xFF
        with pytest.raises(BitstreamError):
            read_fragment_header(BitReader(bytes(data)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(frame_index=-1, frame_type=FrameType.P, qp=5, first_mb=0, mb_count=1),
            dict(frame_index=1 << 16, frame_type=FrameType.P, qp=5, first_mb=0, mb_count=1),
            dict(frame_index=0, frame_type=FrameType.P, qp=0, first_mb=0, mb_count=1),
            dict(frame_index=0, frame_type=FrameType.P, qp=5, first_mb=0, mb_count=0),
            dict(frame_index=0, frame_type=FrameType.P, qp=5, first_mb=-1, mb_count=1),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FragmentHeader(**kwargs)


class TestMacroblockSyntax:
    def _levels(self, rng):
        return rng.integers(-20, 20, size=(4, 8, 8)).astype(np.int32)

    def test_inter_roundtrip(self, rng):
        levels = self._levels(rng)
        writer = BitWriter()
        encode_macroblock(writer, FrameType.P, MacroblockMode.INTER, (-3, 7), levels)
        decoded = decode_macroblock(BitReader(writer.getvalue()), FrameType.P)
        assert decoded.mode is MacroblockMode.INTER
        assert decoded.mv == (-3, 7)
        np.testing.assert_array_equal(decoded.coefficients, levels)

    def test_intra_in_p_frame_roundtrip(self, rng):
        levels = self._levels(rng)
        writer = BitWriter()
        encode_macroblock(writer, FrameType.P, MacroblockMode.INTRA, (0, 0), levels)
        decoded = decode_macroblock(BitReader(writer.getvalue()), FrameType.P)
        assert decoded.mode is MacroblockMode.INTRA
        assert decoded.mv == (0, 0)

    def test_i_frame_has_no_mode_bit(self, rng):
        levels = np.zeros((4, 8, 8), dtype=np.int32)
        writer_i = BitWriter()
        encode_macroblock(writer_i, FrameType.I, MacroblockMode.INTRA, (0, 0), levels)
        writer_p = BitWriter()
        encode_macroblock(writer_p, FrameType.P, MacroblockMode.INTRA, (0, 0), levels)
        assert writer_i.bit_length == writer_p.bit_length - 1

    def test_inter_in_i_frame_rejected(self, rng):
        with pytest.raises(ValueError):
            encode_macroblock(
                BitWriter(),
                FrameType.I,
                MacroblockMode.INTER,
                (0, 0),
                self._levels(rng),
            )

    def test_truncated_macroblock_raises(self, rng):
        writer = BitWriter()
        encode_macroblock(
            writer, FrameType.P, MacroblockMode.INTER, (1, 1), self._levels(rng)
        )
        data = writer.getvalue()
        with pytest.raises(BitstreamError):
            decode_macroblock(BitReader(data[: len(data) // 3]), FrameType.P)
