"""Round-trip and versioning tests for the service wire format."""

from __future__ import annotations

import json
import math

import pytest

from repro.codec.rate import RateControlConfig
from repro.faults import FaultPlan, FaultSpec
from repro.service.wire import (
    SUPPORTED_WIRE_SCHEMAS,
    WIRE_SCHEMA_VERSION,
    ClassSummary,
    FleetSummary,
    JobStatus,
    JobSubmit,
    ServiceManifest,
    SessionResult,
    WireFormatError,
    check_schema,
    job_spec_from_json,
    job_spec_to_json,
    load_service_manifest,
    percentile,
    session_result_digest,
)
from repro.resilience.registry import build_strategy
from repro.scenarios import load_pack
from repro.sim.pipeline import SimulationConfig, simulate
from repro.sim.runner import (
    SUPPORTED_MANIFEST_SCHEMAS,
    GridManifest,
    JobSpec,
    load_manifest,
    run_grid,
)
from repro.video.synthetic import SyntheticConfig, generate_sequence

from tests.conftest import SMALL_H, SMALL_W, small_config

TINY_CLIP = SyntheticConfig(
    width=SMALL_W, height=SMALL_H, n_frames=4, seed=11
)


def tiny_spec(**overrides) -> JobSpec:
    defaults = dict(
        scheme="NO",
        plr=0.2,
        channel_seed=3,
        sequence="tiny",
        synthetic=TINY_CLIP,
        config=SimulationConfig(codec=small_config()),
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestSchemaContract:
    def test_current_version_supported(self):
        assert WIRE_SCHEMA_VERSION in SUPPORTED_WIRE_SCHEMAS

    def test_supported_set_is_current_and_previous(self):
        expected = {
            v
            for v in (WIRE_SCHEMA_VERSION - 1, WIRE_SCHEMA_VERSION)
            if v >= 1
        }
        assert SUPPORTED_WIRE_SCHEMAS == frozenset(expected)

    def test_unknown_version_rejected_with_supported_set(self):
        with pytest.raises(WireFormatError) as excinfo:
            check_schema(
                {"schema_version": WIRE_SCHEMA_VERSION + 1}, "JobStatus"
            )
        message = str(excinfo.value)
        assert "JobStatus" in message
        assert str(WIRE_SCHEMA_VERSION) in message

    def test_missing_version_rejected(self):
        with pytest.raises(WireFormatError):
            check_schema({}, "JobSubmit")

    @pytest.mark.parametrize(
        "cls",
        [JobSubmit, JobStatus, SessionResult, FleetSummary, ServiceManifest],
    )
    def test_every_wire_type_stamps_and_checks_versions(self, cls):
        record = _example(cls).to_json()
        assert record["schema_version"] == WIRE_SCHEMA_VERSION
        record["schema_version"] = 99
        with pytest.raises(WireFormatError):
            cls.from_json(record)


def _example(cls):
    if cls is JobSubmit:
        return JobSubmit(spec=tiny_spec(), priority=2, session_class="bulk")
    if cls is JobStatus:
        return JobStatus(job_id="j1", state="ok", finished_at=2.0)
    if cls is SessionResult:
        return SessionResult(
            job_id="j1",
            session_class="bulk",
            scheme="NO",
            sequence="tiny",
            n_frames=4,
            psnr_db=30.0,
            bad_pixels=0,
            encoded_bytes=100,
            energy_joules=0.5,
            intra_fraction=1.0,
            packets_lost=0,
            packets_sent=8,
            result_digest="d" * 64,
        )
    if cls is FleetSummary:
        return FleetSummary(counts={"ok": 1})
    if cls is ServiceManifest:
        return ServiceManifest(
            jobs=(JobStatus(job_id="j1", state="ok", finished_at=2.0),),
            summary=FleetSummary(counts={"ok": 1}),
        )
    raise AssertionError(cls)


class TestJobSpecRoundTrip:
    def test_plain_spec(self):
        spec = tiny_spec()
        rebuilt = job_spec_from_json(job_spec_to_json(spec))
        assert rebuilt == spec
        assert rebuilt.content_hash() == spec.content_hash()

    def test_spec_with_faults_and_pbpair_kwargs(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="truncate", probability=0.3),), seed=7
        )
        spec = tiny_spec(
            scheme="PBPAIR", pbpair_kwargs={"intra_th": 0.8}, faults=plan
        )
        rebuilt = job_spec_from_json(job_spec_to_json(spec))
        assert rebuilt == spec
        assert rebuilt.content_hash() == spec.content_hash()

    def test_registry_sequence_without_synthetic(self):
        spec = JobSpec(scheme="NO", sequence="akiyo", n_frames=3, plr=0.0)
        rebuilt = job_spec_from_json(job_spec_to_json(spec))
        assert rebuilt == spec

    def test_wire_rendering_is_json_serializable(self):
        text = json.dumps(job_spec_to_json(tiny_spec()))
        assert job_spec_from_json(json.loads(text)) == tiny_spec()

    def test_spec_with_rate_config(self):
        spec = tiny_spec(
            rate=RateControlConfig(target_kbps=200.0, sensitivity=0.5)
        )
        record = job_spec_to_json(spec)
        assert record["rate"]["target_kbps"] == 200.0
        rebuilt = job_spec_from_json(record)
        assert rebuilt == spec
        assert rebuilt.rate == spec.rate
        assert rebuilt.content_hash() == spec.content_hash()

    def test_v1_record_without_rate_still_parses(self):
        record = job_spec_to_json(tiny_spec())
        del record["rate"]  # a schema-1 sender never wrote the key
        record["schema"] = 1
        rebuilt = job_spec_from_json(record)
        assert rebuilt.rate is None
        assert rebuilt == tiny_spec()

    def test_spec_with_scenario(self):
        pack = load_pack("bursty-wifi")
        spec = tiny_spec(scenario=pack, plr=round(pack.nominal_loss_rate(), 4))
        record = job_spec_to_json(spec)
        assert record["scenario"]["name"] == "bursty-wifi"
        text = json.dumps(record)  # the pack nests plain JSON
        rebuilt = job_spec_from_json(json.loads(text))
        assert rebuilt == spec
        assert rebuilt.scenario == pack
        assert rebuilt.content_hash() == spec.content_hash()

    def test_scenario_changes_content_hash(self):
        spec = tiny_spec()
        with_pack = tiny_spec(scenario=load_pack("steady-uniform"))
        assert spec.content_hash() != with_pack.content_hash()

    def test_v2_record_without_scenario_still_parses(self):
        record = job_spec_to_json(tiny_spec())
        del record["scenario"]  # a schema-2 sender never wrote the key
        record["schema"] = 2
        rebuilt = job_spec_from_json(record)
        assert rebuilt.scenario is None
        assert rebuilt == tiny_spec()


class TestJobSubmitAndStatus:
    def test_submit_round_trip(self):
        submit = JobSubmit(
            spec=tiny_spec(), priority=-1, session_class="interactive"
        )
        assert JobSubmit.from_json(submit.to_json()) == submit

    def test_status_round_trip_with_error(self):
        status = JobStatus(
            job_id="deadbeef",
            state="quarantined",
            priority=3,
            session_class="bulk",
            attempts=4,
            fail_count=3,
            submitted_at=10.0,
            started_at=11.0,
            finished_at=12.5,
            error="ValueError: boom",
        )
        rebuilt = JobStatus.from_json(status.to_json())
        assert rebuilt == status
        assert rebuilt.latency_s == pytest.approx(2.5)
        assert rebuilt.terminal and not rebuilt.ok

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            JobStatus(job_id="x", state="exploded")


class TestSessionResult:
    def test_from_simulation_round_trips(self):
        result = simulate(
            generate_sequence(TINY_CLIP, name="tiny"),
            build_strategy("NO"),
            loss_model=None,
            config=SimulationConfig(codec=small_config()),
        )
        session = SessionResult.from_simulation(
            "job1", "standard", result, wall_time_s=0.1, latency_s=0.2
        )
        rebuilt = SessionResult.from_json(session.to_json())
        assert rebuilt == session
        assert rebuilt.result_digest == session_result_digest(result)

    def test_digest_matches_batch_run_grid(self):
        # The bit-identity contract: the digest of a simulation only
        # depends on the delivered values, so however a spec executes
        # (serial, pooled, behind the daemon) the digest is the same.
        spec = tiny_spec()
        first, second = run_grid([spec]), run_grid([spec, tiny_spec()])
        assert (
            session_result_digest(first[0].result)
            == session_result_digest(second[0].result)
        )

    def test_digest_sensitive_to_channel(self):
        out = run_grid([tiny_spec(channel_seed=1), tiny_spec(channel_seed=2)])
        assert (
            session_result_digest(out[0].result)
            != session_result_digest(out[1].result)
        )


class TestPercentiles:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_singleton(self):
        assert percentile([7.0], 99) == 7.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestFleetSummary:
    def test_build_groups_by_class(self):
        statuses = [
            JobStatus(
                job_id=f"j{i}",
                state="ok",
                session_class="interactive" if i % 2 else "bulk",
                submitted_at=0.0,
                finished_at=float(i + 1),
            )
            for i in range(4)
        ]
        results = {
            s.job_id: _example(SessionResult) for s in statuses
        }
        summary = FleetSummary.build(statuses, results, queue_depth=2)
        assert summary.sessions == 4
        assert summary.counts == {"ok": 4}
        assert [c.session_class for c in summary.classes] == [
            "bulk",
            "interactive",
        ]
        for cls in summary.classes:
            assert cls.ok == 2
            assert set(cls.latency_s) == {"p50", "p95", "p99"}
            assert cls.psnr_db["p50"] == pytest.approx(30.0)

    def test_round_trip(self):
        summary = FleetSummary.build(
            [JobStatus(job_id="a", state="failed", error="x")], {}
        )
        rebuilt = FleetSummary.from_json(
            json.loads(json.dumps(summary.to_json()))
        )
        assert rebuilt.counts == {"failed": 1}
        assert rebuilt.classes[0].failed == 1
        # NaN percentiles survive as NaN, not as a fabricated number.
        assert math.isnan(rebuilt.classes[0].psnr_db["p50"])


class TestServiceManifest:
    def _manifest(self) -> ServiceManifest:
        jobs = (
            JobStatus(job_id="a", state="ok", finished_at=1.0),
            JobStatus(job_id="b", state="cached", finished_at=1.0),
            JobStatus(job_id="c", state="quarantined", error="x"),
        )
        return ServiceManifest(
            jobs=jobs, summary=FleetSummary.build(list(jobs), {})
        )

    def test_counts_account_for_every_job(self):
        manifest = self._manifest()
        assert manifest.counts == {"ok": 1, "cached": 1, "quarantined": 1}
        assert not manifest.complete  # a quarantined job is not success

    def test_complete_only_when_everything_delivered(self):
        manifest = ServiceManifest(
            jobs=(
                JobStatus(job_id="a", state="ok", finished_at=1.0),
                JobStatus(job_id="b", state="cached", finished_at=1.0),
            ),
            summary=FleetSummary(),
        )
        assert manifest.complete

    def test_write_and_load(self, tmp_path):
        path = tmp_path / "sub" / "service_manifest.json"
        manifest = self._manifest()
        manifest.write(path)
        loaded = load_service_manifest(path)
        assert loaded.counts == manifest.counts
        assert [j.job_id for j in loaded.jobs] == ["a", "b", "c"]

    def test_load_rejects_future_schema(self, tmp_path):
        path = tmp_path / "m.json"
        record = self._manifest().to_json()
        record["schema_version"] = WIRE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        with pytest.raises(WireFormatError):
            load_service_manifest(path)


class TestGridManifestVersioning:
    """The runner manifest mirrors the v1/v2 trace-schema precedent."""

    def test_v2_writes_both_version_keys(self, tmp_path):
        path = tmp_path / "m.json"
        run_grid([tiny_spec()], manifest_path=path)
        record = json.loads(path.read_text())
        assert record["schema"] == 2
        assert record["schema_version"] == 2
        assert SUPPORTED_MANIFEST_SCHEMAS == frozenset({1, 2})

    def test_loader_accepts_previous_version(self, tmp_path):
        path = tmp_path / "m.json"
        run_grid([tiny_spec()], manifest_path=path)
        record = json.loads(path.read_text())
        # Rewrite as a v1 file: only the old "schema" key, no
        # "schema_version", no v2-only counters.
        record["schema"] = 1
        del record["schema_version"]
        record.get("counts", {}).pop("quarantined", None)
        path.write_text(json.dumps(record))
        manifest = load_manifest(path)
        assert isinstance(manifest, GridManifest)
        assert manifest.n_jobs == 1
        assert manifest.complete
