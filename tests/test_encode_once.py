"""Encode-once grids: phase split, stream sharing, and its cache keys.

The contract under test: splitting :func:`simulate` into
``encode_phase`` + ``transmit_phase`` and sharing encoded streams
across grid cells is *observation-equivalent* — byte-identical
bitstreams, value-identical metrics, in any process — and cells whose
fault plans touch the encode stage correctly opt out of sharing.
"""

from __future__ import annotations

import concurrent.futures

import pytest

from repro.codec.encoder import Encoder
from repro.faults import FaultPlan, FaultSpec, encode_subplan
from repro.network.loss import UniformLoss
from repro.network.packet import Packetizer
from repro.obs import Tracer, use_tracer
from repro.resilience.registry import build_strategy
from repro.sim.experiment import replicate
from repro.sim.pipeline import (
    SimulationConfig,
    encode_phase,
    simulate,
    transmit_phase,
)
from repro.sim.runner import (
    EncodedStreamCache,
    JobSpec,
    encode_content_hash,
    run_grid,
    run_job,
    run_simulations,
)
from repro.video.synthetic import SyntheticConfig

from tests.conftest import SMALL_H, SMALL_W, small_config, small_sequence

N_FRAMES = 6

SMALL_SYNTHETIC = SyntheticConfig(
    width=SMALL_W, height=SMALL_H, n_frames=N_FRAMES, seed=11
)


def _sim_config() -> SimulationConfig:
    return SimulationConfig(codec=small_config())


def _spec(scheme: str = "GOP-2", seed: int = 0, **overrides) -> JobSpec:
    defaults = dict(
        scheme=scheme,
        plr=0.2,
        channel_seed=seed,
        sequence="tiny",
        n_frames=N_FRAMES,
        synthetic=SMALL_SYNTHETIC,
        config=_sim_config(),
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


def _grid() -> list[JobSpec]:
    return [
        _spec(scheme, seed)
        for scheme in ("NO", "GOP-2", "PBPAIR")
        for seed in (0, 1)
    ]


def assert_results_equal(a, b) -> None:
    assert a.frames == b.frames
    assert a.counters == b.counters
    assert a.energy == b.energy
    assert a.decoder_counters == b.decoder_counters
    assert a.decoder_energy == b.decoder_energy
    assert a.size_stats == b.size_stats
    assert a.fault_events == b.fault_events


class TestPhaseSplit:
    def test_phases_compose_to_simulate(self):
        video = small_sequence(N_FRAMES)
        config = _sim_config()
        whole = simulate(
            video,
            build_strategy("PBPAIR", intra_th=0.9, plr=0.2),
            loss_model=UniformLoss(plr=0.2, seed=3),
            config=config,
        )
        stream = encode_phase(
            video, build_strategy("PBPAIR", intra_th=0.9, plr=0.2), config
        )
        split = transmit_phase(
            stream, video, loss_model=UniformLoss(plr=0.2, seed=3),
            config=config,
        )
        assert_results_equal(whole, split)

    def test_encode_phase_bitstream_matches_encoder(self):
        """The stream's packets are the golden-suite encoder's, byte for byte."""
        video = small_sequence(N_FRAMES)
        config = _sim_config()
        stream = encode_phase(video, build_strategy("GOP-2"), config)

        encoder = Encoder(config.codec, build_strategy("GOP-2"))
        packetizer = Packetizer(config.codec, mtu=config.mtu)
        for frame, sent in zip(video, stream.frames):
            encoded = encoder.encode_frame(frame)
            packets = packetizer.packetize(encoded)
            assert sent.size_bytes == encoded.size_bytes
            assert [p.payload for p in sent.packets] == [
                p.payload for p in packets
            ]
            assert [p.sequence_number for p in sent.packets] == [
                p.sequence_number for p in packets
            ]

    def test_one_stream_many_channels(self):
        """One encode replayed over N seeds equals N full pipelines."""
        video = small_sequence(N_FRAMES)
        config = _sim_config()
        stream = encode_phase(video, build_strategy("GOP-2"), config)
        for seed in (0, 1, 2):
            shared = transmit_phase(
                stream, video, loss_model=UniformLoss(plr=0.3, seed=seed),
                config=config,
            )
            full = simulate(
                video, build_strategy("GOP-2"),
                loss_model=UniformLoss(plr=0.3, seed=seed), config=config,
            )
            assert_results_equal(full, shared)

    def test_transmit_rejects_mismatched_sequence(self):
        video = small_sequence(N_FRAMES)
        config = _sim_config()
        stream = encode_phase(video, build_strategy("NO"), config)
        with pytest.raises(ValueError, match="frames"):
            transmit_phase(stream, small_sequence(N_FRAMES + 1), config=config)


class TestEncodeKeys:
    def test_key_ignores_channel_parameters(self):
        base = _spec("GOP-2", seed=0)
        assert encode_content_hash(base) == encode_content_hash(
            _spec("GOP-2", seed=7)
        )
        assert encode_content_hash(base) == encode_content_hash(
            _spec("GOP-2", seed=0, plr=0.4)
        )
        assert encode_content_hash(base) == encode_content_hash(
            _spec("GOP-2", seed=0, granularity="packet")
        )

    def test_key_sees_encoder_parameters(self):
        base = _spec("GOP-2")
        assert encode_content_hash(base) != encode_content_hash(_spec("NO"))
        assert encode_content_hash(base) != encode_content_hash(
            _spec("GOP-2", config=SimulationConfig(codec=small_config(), mtu=128))
        )

    def test_pbpair_key_depends_on_plr(self):
        """PBPAIR's refresh probability is a function of the assumed PLR."""
        assert encode_content_hash(
            _spec("PBPAIR", plr=0.1)
        ) != encode_content_hash(_spec("PBPAIR", plr=0.3))

    def test_channel_faults_share_encode_faults_do_not(self):
        channel_plan = FaultPlan(
            faults=(FaultSpec(kind="drop", probability=0.5),), seed=3
        )
        encode_plan = FaultPlan(
            faults=(FaultSpec(kind="encode_byteflip", probability=1.0),),
            seed=3,
        )
        base = _spec("GOP-2")
        assert encode_subplan(channel_plan) is None
        assert encode_subplan(encode_plan) is not None
        assert encode_content_hash(base) == encode_content_hash(
            _spec("GOP-2", faults=channel_plan)
        )
        assert encode_content_hash(base) != encode_content_hash(
            _spec("GOP-2", faults=encode_plan)
        )


class TestGridSharing:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_share_on_off_identical(self, workers, tmp_path):
        shared = run_grid(
            _grid(), max_workers=workers,
            stream_cache=EncodedStreamCache(tmp_path / "streams"),
        )
        unshared = run_grid(
            _grid(), max_workers=workers, share_streams=False
        )
        assert len(shared) == len(unshared)
        for a, b in zip(shared, unshared):
            assert a.ok and b.ok
            assert_results_equal(a.result, b.result)

    def test_run_job_reuses_and_traces_reuse(self):
        cache = EncodedStreamCache()
        tracer = Tracer(trace_id="reuse")
        with use_tracer(tracer):
            first = run_job(_spec("GOP-2", seed=0), cache)
            second = run_job(_spec("GOP-2", seed=1), cache)
        assert cache.encodes == 1
        assert cache.hits == 1
        reuse_events = [e for e in tracer.events if e.name == "encode_reused"]
        assert len(reuse_events) == 1
        assert first.frames != second.frames  # different channels, same stream
        assert [f.size_bytes for f in first.frames] == [
            f.size_bytes for f in second.frames
        ]

    def test_encode_fault_plans_opt_out(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="encode_byteflip", probability=1.0,
                              amount=4),),
            seed=9,
        )
        spec = _spec("GOP-2", faults=plan)
        cache = EncodedStreamCache()
        with_cache = run_job(spec, cache)
        assert cache.encodes == 0  # full pipeline, no stream shared
        plain = run_job(spec)
        assert_results_equal(plain, with_cache)
        assert any(e.stage == "encode" for e in with_cache.fault_events)
        clean = run_job(_spec("GOP-2"))
        assert clean.frames != with_cache.frames

    def test_channel_fault_plans_share(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="drop", probability=0.5),), seed=4
        )
        spec = _spec("GOP-2", faults=plan)
        cache = EncodedStreamCache()
        shared = run_job(spec, cache)
        assert cache.encodes == 1
        assert_results_equal(run_job(spec), shared)
        assert all(e.stage != "encode" for e in shared.fault_events)


class TestRunSimulationsSharing:
    def _tasks(self, seeds=(0, 1, 2)):
        video = small_sequence(N_FRAMES)
        config = _sim_config()
        return [
            (
                video,
                build_strategy("GOP-2"),
                UniformLoss(plr=0.3, seed=seed),
                config,
            )
            for seed in seeds
        ]

    def test_share_on_off_identical(self):
        shared = run_simulations(self._tasks(), max_workers=1)
        unshared = run_simulations(
            self._tasks(), max_workers=1, share_streams=False
        )
        for a, b in zip(shared, unshared):
            assert_results_equal(a, b)

    def test_replicate_unchanged_by_sharing(self):
        video = small_sequence(N_FRAMES)
        summary = replicate(
            video,
            strategy_factory=lambda: build_strategy("GOP-2"),
            loss_factory=lambda seed: UniformLoss(plr=0.3, seed=seed),
            metric=lambda r: r.average_psnr_decoder,
            seeds=(0, 1, 2),
            config=_sim_config(),
        )
        expected = [
            simulate(
                video, build_strategy("GOP-2"),
                loss_model=UniformLoss(plr=0.3, seed=seed),
                config=_sim_config(),
            ).average_psnr_decoder
            for seed in (0, 1, 2)
        ]
        assert list(summary.values) == pytest.approx(expected)


# -- cross-process determinism (the cache-key contract) ----------------------


def _encode_fingerprint(spec: JobSpec) -> tuple:
    """(encode key, per-frame packet payloads) — computed anywhere."""
    from repro.sim.runner import _sequence_for

    sequence = _sequence_for(spec.sequence, spec.n_frames, spec.synthetic)
    if spec.is_pbpair:
        strategy = build_strategy(
            "PBPAIR", plr=spec.plr, **spec.pbpair_kwargs
        )
    else:
        strategy = build_strategy(spec.scheme)
    stream = encode_phase(sequence, strategy, config=spec.config)
    payloads = tuple(
        tuple(p.payload for p in frame.packets) for frame in stream.frames
    )
    return encode_content_hash(spec), payloads


class TestCrossProcessDeterminism:
    def test_hash_and_bytes_identical_in_pool_worker(self):
        spec = _spec("PBPAIR", pbpair_kwargs={"intra_th": 0.9})
        parent = _encode_fingerprint(spec)
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
                child = pool.submit(_encode_fingerprint, spec).result(
                    timeout=120
                )
        except (NotImplementedError, OSError, PermissionError):
            pytest.skip("no usable process pool on this platform")
        assert parent[0] == child[0]
        assert parent[1] == child[1]
