"""Tests for the PBPAIR instrumentation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.codec.types import FrameType
from repro.core.instrumentation import (
    InstrumentedPBPAIRStrategy,
    SigmaTrace,
    SigmaSnapshot,
    sigma_heatmap,
)
from repro.core.pbpair import PBPAIRConfig
from repro.resilience.pbpair_strategy import PBPAIRStrategy

from tests.conftest import small_config, small_sequence


@pytest.fixture(scope="module")
def instrumented_run():
    config = small_config()
    sequence = small_sequence(n_frames=10)
    strategy = InstrumentedPBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2))
    encoder = Encoder(config, strategy)
    encoded = encoder.encode_sequence(sequence)
    return config, sequence, strategy, encoded


class TestInstrumentedStrategy:
    def test_records_one_snapshot_per_frame(self, instrumented_run):
        _, sequence, strategy, _ = instrumented_run
        assert len(strategy.trace) == len(sequence)
        indices = [s.frame_index for s in strategy.trace.snapshots]
        assert indices == list(range(len(sequence)))

    def test_behaviour_identical_to_plain_pbpair(self):
        config = small_config()
        sequence = small_sequence(n_frames=8)
        plain = Encoder(
            config, PBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2))
        )
        instrumented = Encoder(
            config,
            InstrumentedPBPAIRStrategy(PBPAIRConfig(intra_th=0.9, plr=0.2)),
        )
        plain_out = plain.encode_sequence(sequence)
        instr_out = instrumented.encode_sequence(sequence)
        assert [e.payload for e in plain_out] == [e.payload for e in instr_out]
        assert plain.counters.as_dict() == instrumented.counters.as_dict()

    def test_sigma_values_in_unit_interval(self, instrumented_run):
        _, _, strategy, _ = instrumented_run
        for snapshot in strategy.trace.snapshots:
            for sigma in (snapshot.sigma_before, snapshot.sigma_after):
                assert (sigma >= 0).all() and (sigma <= 1).all()

    def test_intra_mask_matches_encoder_stats(self, instrumented_run):
        _, _, strategy, encoded = instrumented_run
        for snapshot, ef in zip(strategy.trace.snapshots, encoded):
            assert int(snapshot.intra_mask.sum()) == ef.stats.intra_mbs

    def test_reference_sigma_only_on_p_frames(self, instrumented_run):
        _, _, strategy, _ = instrumented_run
        first = strategy.trace.snapshots[0]
        assert first.frame_type is FrameType.I
        assert first.reference_sigma_mean is None
        p_frames = [
            s
            for s in strategy.trace.snapshots
            if s.frame_type is FrameType.P and not s.intra_mask.all()
        ]
        assert all(s.reference_sigma_mean is not None for s in p_frames)

    def test_reset_clears_trace(self, instrumented_run):
        config = small_config()
        strategy = InstrumentedPBPAIRStrategy(PBPAIRConfig())
        encoder = Encoder(config, strategy)
        encoder.encode_sequence(small_sequence(n_frames=3))
        encoder.reset()
        assert len(strategy.trace) == 0


class TestSigmaTrace:
    def test_series_lengths(self, instrumented_run):
        _, sequence, strategy, _ = instrumented_run
        trace = strategy.trace
        assert len(trace.mean_sigma_series()) == len(sequence)
        assert len(trace.min_sigma_series()) == len(sequence)
        assert len(trace.refresh_counts()) == len(sequence)

    def test_min_never_exceeds_mean(self, instrumented_run):
        _, _, strategy, _ = instrumented_run
        for low, mean in zip(
            strategy.trace.min_sigma_series(),
            strategy.trace.mean_sigma_series(),
        ):
            assert low <= mean + 1e-12

    def test_refresh_intervals_shape_and_bounds(self, instrumented_run):
        config, sequence, strategy, _ = instrumented_run
        intervals = strategy.trace.refresh_intervals()
        assert intervals.shape == (config.mb_rows, config.mb_cols)
        finite = intervals[np.isfinite(intervals)]
        if finite.size:
            assert (finite >= 1).all()
            assert (finite <= len(sequence)).all()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            SigmaTrace().refresh_intervals()


class TestHeatmap:
    def test_extremes(self):
        art = sigma_heatmap(np.array([[0.0, 1.0]]))
        assert art == " @"

    def test_mark_overrides_shade(self):
        art = sigma_heatmap(
            np.array([[1.0, 1.0]]), mark=np.array([[True, False]])
        )
        assert art == "R@"

    def test_multirow_layout(self):
        art = sigma_heatmap(np.full((3, 5), 0.5))
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 5 for line in lines)

    def test_validation(self):
        with pytest.raises(ValueError):
            sigma_heatmap(np.zeros(4))
        with pytest.raises(ValueError):
            sigma_heatmap(np.zeros((2, 2)), mark=np.zeros((3, 3), dtype=bool))
