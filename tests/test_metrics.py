"""Unit tests for PSNR, bad pixels and bitrate statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.bad_pixels import (
    bad_pixel_count,
    bad_pixel_map,
    sequence_bad_pixels,
)
from repro.metrics.bitrate import FrameSizeStats, bitrate_kbps, frame_size_stats
from repro.metrics.psnr import average_psnr, mse, psnr, sequence_psnr


class TestPSNR:
    def test_identical_frames_infinite(self):
        frame = np.full((16, 16), 100, dtype=np.uint8)
        assert psnr(frame, frame) == float("inf")

    def test_known_value(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 255.0)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_mse(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 2.0)
        assert mse(a, b) == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((4, 8)))

    def test_monotone_in_error(self, rng):
        original = rng.integers(0, 256, (16, 16)).astype(np.int64)
        small = np.clip(original + 2, 0, 255)
        large = np.clip(original + 20, 0, 255)
        assert psnr(original, small) > psnr(original, large)

    def test_sequence_psnr(self, rng):
        frames = [rng.integers(0, 256, (16, 16)) for _ in range(3)]
        out = sequence_psnr(frames, frames)
        assert out == [float("inf")] * 3
        with pytest.raises(ValueError):
            sequence_psnr(frames, frames[:2])

    def test_average_psnr_caps_infinities(self):
        assert average_psnr([float("inf"), 40.0], cap=60.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            average_psnr([])


class TestBadPixels:
    def test_no_difference_no_bad_pixels(self):
        frame = np.full((16, 16), 50, dtype=np.uint8)
        assert bad_pixel_count(frame, frame) == 0

    def test_threshold_boundary(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 25, dtype=np.uint8)
        assert bad_pixel_count(a, b, threshold=25) == 0
        b = np.full((4, 4), 26, dtype=np.uint8)
        assert bad_pixel_count(a, b, threshold=25) == 16

    def test_map_matches_count(self, rng):
        a = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        b = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        assert bad_pixel_map(a, b).sum() == bad_pixel_count(a, b)

    def test_sequence_accumulates(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 200, dtype=np.uint8)
        assert sequence_bad_pixels([a, a], [b, b]) == 32

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            bad_pixel_count(np.zeros((4, 4)), np.zeros((4, 4)), threshold=-1)

    @given(st.integers(0, 254))
    def test_count_monotone_in_threshold(self, threshold):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        b = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        assert bad_pixel_count(a, b, threshold) >= bad_pixel_count(
            a, b, threshold + 1
        )


class TestBitrate:
    def test_stats(self):
        stats = frame_size_stats([100, 200, 300])
        assert stats.total_bytes == 600
        assert stats.mean_bytes == pytest.approx(200)
        assert stats.max_bytes == 300 and stats.min_bytes == 100

    def test_smooth_stream_zero_cv(self):
        stats = frame_size_stats([500] * 10)
        assert stats.coefficient_of_variation == 0.0
        assert stats.peak_to_mean == pytest.approx(1.0)

    def test_spiky_stream_high_peak_to_mean(self):
        smooth = frame_size_stats([500] * 9 + [500])
        spiky = frame_size_stats([100] * 9 + [4100])
        assert spiky.peak_to_mean > smooth.peak_to_mean

    def test_bitrate_kbps(self):
        # 30 frames of 1000 bytes at 30 fps = 8000 bits in 1 s = 240 kbps.
        assert bitrate_kbps([1000] * 30, fps=30) == pytest.approx(240.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_size_stats([])
        with pytest.raises(ValueError):
            frame_size_stats([-1])
        with pytest.raises(ValueError):
            bitrate_kbps([100], fps=0)
        with pytest.raises(ValueError):
            bitrate_kbps([], fps=30)
