"""Fuzz tests: the decoder must never crash, whatever arrives.

The error model of this whole line of work is that transmission hands
the decoder arbitrary garbage: truncated fragments, flipped bits,
duplicated or reordered packets.  A production decoder's contract is to
salvage what it can and conceal the rest — never to throw, hang, or
read out of bounds.  These tests drive that contract with hypothesis.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.network.packet import Depacketizer, Packetizer
from repro.resilience.none import NoResilience

from tests.conftest import small_config, small_sequence

CONFIG = small_config()


@pytest.fixture(scope="module")
def real_payloads():
    encoder = Encoder(CONFIG, NoResilience())
    packetizer = Packetizer(CONFIG, mtu=256)
    payloads = []
    for frame in small_sequence(n_frames=4):
        ef = encoder.encode_frame(frame)
        payloads.extend(p.payload for p in packetizer.packetize(ef))
    return payloads


def _decode(fragments, reference=None):
    decoder = Decoder(CONFIG)
    return decoder.decode_frame(fragments, reference, expected_index=0)


def _valid_result(result):
    assert result.frame.dtype == np.uint8
    assert result.frame.shape == (CONFIG.height, CONFIG.width)
    assert result.received.shape == (CONFIG.mb_rows, CONFIG.mb_cols)


class TestRandomGarbage:
    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_never_crash(self, payload):
        result = _decode([payload])
        _valid_result(result)

    @given(st.lists(st.binary(min_size=0, max_size=120), max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_random_fragment_lists_never_crash(self, payloads):
        result = _decode(payloads)
        _valid_result(result)


class TestCorruptedRealStreams:
    @given(data=st.data())
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_bit_flips_never_crash(self, real_payloads, data):
        payload = bytearray(
            real_payloads[data.draw(st.integers(0, len(real_payloads) - 1))]
        )
        n_flips = data.draw(st.integers(1, 16))
        for _ in range(n_flips):
            position = data.draw(st.integers(0, len(payload) * 8 - 1))
            payload[position // 8] ^= 1 << (position % 8)
        reference = np.full((CONFIG.height, CONFIG.width), 100, dtype=np.uint8)
        result = _decode([bytes(payload)], reference)
        _valid_result(result)

    @given(data=st.data())
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_truncations_never_crash(self, real_payloads, data):
        payload = real_payloads[
            data.draw(st.integers(0, len(real_payloads) - 1))
        ]
        cut = data.draw(st.integers(0, len(payload)))
        result = _decode([payload[:cut]])
        _valid_result(result)

    def test_duplicated_fragments_are_idempotent(self, real_payloads):
        reference = np.full((CONFIG.height, CONFIG.width), 90, dtype=np.uint8)
        once = _decode([real_payloads[0]], reference)
        twice = _decode([real_payloads[0], real_payloads[0]], reference)
        np.testing.assert_array_equal(once.frame, twice.frame)
        np.testing.assert_array_equal(once.received, twice.received)

    def test_reordered_fragments_equivalent(self, real_payloads):
        # Fragments of one frame may arrive in any order.
        encoder = Encoder(CONFIG, NoResilience())
        packetizer = Packetizer(CONFIG, mtu=160)
        ef = encoder.encode_frame(small_sequence(n_frames=1)[0])
        payloads = [p.payload for p in packetizer.packetize(ef)]
        assert len(payloads) >= 2
        forward = _decode(payloads)
        backward = _decode(list(reversed(payloads)))
        np.testing.assert_array_equal(forward.frame, backward.frame)

    def test_cross_frame_fragments_coexist(self, real_payloads):
        # Misrouted fragments from another frame must not corrupt the
        # result structure (last decoded header wins the metadata).
        result = _decode([real_payloads[0], real_payloads[-1]])
        _valid_result(result)


@lru_cache(maxsize=1)
def _pristine_packets():
    """One encoded frame's packets, shared by every stateful example."""
    encoder = Encoder(CONFIG, NoResilience())
    packetizer = Packetizer(CONFIG, mtu=160)
    ef = encoder.encode_frame(small_sequence(n_frames=1)[0])
    return tuple(packetizer.packetize(ef))


class FaultedTransportMachine(RuleBasedStateMachine):
    """Arbitrary fault interleavings must never break the receive path.

    The machine holds one frame's real packet stream and, step by step,
    mauls it through single-fault :class:`FaultPlan` injectors —
    truncation, byte flips, duplication, reordering, drops — in any
    order hypothesis cares to interleave.  After every step the whole
    receive path (depacketizer grouping, fragment-level faults, the
    decoder) must still produce a structurally valid frame: the decode
    rule is also the invariant.
    """

    MAX_PACKETS = 48

    def __init__(self):
        super().__init__()
        self.packets = list(_pristine_packets())
        self.reference = np.full(
            (CONFIG.height, CONFIG.width), 120, dtype=np.uint8
        )

    def _apply(self, kind, seed, **knobs):
        plan = FaultPlan(faults=(FaultSpec(kind=kind, **knobs),), seed=seed)
        injector = FaultInjector(plan)
        self.packets = injector.apply_to_packets(self.packets, 0)
        # Duplication compounds across steps; keep the pool bounded so
        # runaway growth cannot dominate the step budget.
        del self.packets[self.MAX_PACKETS:]

    @rule(seed=st.integers(0, 999))
    def truncate_packets(self, seed):
        self._apply("truncate", seed, probability=0.5)

    @rule(seed=st.integers(0, 999), amount=st.integers(1, 8))
    def flip_bytes(self, seed, amount):
        self._apply("byteflip", seed, probability=0.5, amount=amount)

    @rule(seed=st.integers(0, 999), amount=st.integers(1, 2))
    def duplicate_packets(self, seed, amount):
        self._apply("duplicate", seed, probability=0.4, amount=amount)

    @rule(seed=st.integers(0, 999))
    def reorder_packets(self, seed):
        self._apply("reorder", seed)

    @rule(seed=st.integers(0, 999))
    def drop_packets(self, seed):
        self._apply("drop", seed, probability=0.3)

    @rule(seed=st.integers(0, 999), kind=st.sampled_from(
        ["corrupt_fragment", "truncate_fragment"]
    ))
    def decode_with_fragment_faults(self, seed, kind):
        plan = FaultPlan(
            faults=(FaultSpec(kind=kind, probability=0.5),), seed=seed
        )
        self._decode(FaultInjector(plan))

    @rule()
    def decode(self):
        self._decode(None)

    def _decode(self, injector):
        fragments = Depacketizer().group_by_frame(self.packets, 1)[0]
        if injector is not None:
            fragments = injector.apply_to_fragments(fragments, 0)
        result = Decoder(CONFIG).decode_frame(
            fragments, self.reference, expected_index=0
        )
        _valid_result(result)
        assert 0 <= result.damaged_fragments <= len(fragments)


TestFaultedTransport = FaultedTransportMachine.TestCase
TestFaultedTransport.settings = settings(
    max_examples=25, stateful_step_count=10, deadline=None
)
