"""Scenario packs: schema, shipped data files, channel, fleet sweep.

Covers the declarative layer (:mod:`repro.scenarios.pack` round-trips
and validation, explicit and property-based), the interpretation layer
(:class:`ScenarioChannel` segment routing, seeding, reset), the full
pack × scheme matrix on smoke clips, and the fleet report's
determinism pin (serial == pooled digests) and recovery metrics.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.network.channel import Channel
from repro.network.loss import ScriptedLoss
from repro.network.packet import Packet
from repro.scenarios import (
    FLEET_SCHEMES,
    LossSpec,
    ResilienceSpec,
    ScenarioChannel,
    ScenarioFormatError,
    ScenarioPack,
    ScenarioSegment,
    available_packs,
    fleet_jobs,
    load_pack,
    parse_scenario,
    recovery_summary,
    run_fleet,
    segment_seed,
    write_pack,
)
from repro.scenarios.pack import SCENARIO_SCHEMA_VERSION
from repro.sim.pipeline import SimulationConfig, simulate
from repro.sim.runner import JobSpec, RunnerOptions, run_grid, run_job
from repro.resilience.registry import build_strategy
from repro.video.synthetic import SyntheticConfig, foreman_like

from tests.conftest import SMALL_H, SMALL_W, small_config, small_sequence

#: Shared tiny clip: every scenario job in this file runs 64x48 frames.
TINY_CLIP = SyntheticConfig(
    width=SMALL_W,
    height=SMALL_H,
    n_frames=6,
    texture_scale=30.0,
    object_radius=10,
    object_motion_amplitude=10.0,
    object_motion_period=8,
    seed=11,
)


def tiny_job(scheme: str, pack: ScenarioPack, seed: int = 3) -> JobSpec:
    return JobSpec(
        scheme=scheme,
        plr=round(pack.nominal_loss_rate(), 4),
        channel_seed=seed,
        sequence="tiny",
        synthetic=TINY_CLIP,
        config=SimulationConfig(codec=small_config()),
        scenario=pack,
    )


def make_packet(frame_index: int, seq: int = 0, size: int = 40) -> Packet:
    return Packet(
        sequence_number=seq,
        frame_index=frame_index,
        fragment_index=0,
        fragments_in_frame=1,
        payload=bytes(size),
    )


# ---------------------------------------------------------------------------
# Pack schema: explicit round-trips and validation
# ---------------------------------------------------------------------------


class TestPackSchema:
    def test_round_trip_multi_segment(self):
        pack = ScenarioPack(
            name="rt",
            description="round trip",
            segments=(
                ScenarioSegment(
                    frames=10,
                    loss=LossSpec(kind="uniform", plr=0.2),
                    bandwidth_kbps=200.0,
                    label="a",
                ),
                ScenarioSegment(
                    frames=0,
                    loss=LossSpec(
                        kind="markov_burst",
                        p_enter=0.1,
                        escape=(0.5, 0.25),
                    ),
                    resilience=ResilienceSpec(fec_window=4, retx_limit=1),
                ),
            ),
        )
        record = pack.to_json()
        assert record["schema_version"] == SCENARIO_SCHEMA_VERSION
        assert ScenarioPack.from_json(record) == pack
        # JSON-serializable end to end (what write_pack persists).
        assert ScenarioPack.from_json(json.loads(json.dumps(record))) == pack

    def test_to_json_skips_defaults(self):
        record = ScenarioPack(
            name="d", segments=(ScenarioSegment(),)
        ).to_json()
        segment = record["segments"][0]
        assert set(segment) == {"frames", "loss"}
        assert segment["loss"] == {"kind": "uniform"}

    def test_rejects_unknown_schema_version(self):
        record = ScenarioPack(
            name="v", segments=(ScenarioSegment(),)
        ).to_json()
        record["schema_version"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ScenarioFormatError, match="schema"):
            ScenarioPack.from_json(record)

    def test_rejects_unknown_fields_at_every_level(self):
        base = ScenarioPack(
            name="u", segments=(ScenarioSegment(),)
        ).to_json()
        for mutate in (
            lambda r: r.update(surprise=1),
            lambda r: r["segments"][0].update(surprise=1),
            lambda r: r["segments"][0]["loss"].update(surprise=1),
        ):
            record = json.loads(json.dumps(base))
            mutate(record)
            with pytest.raises(ScenarioFormatError, match="unknown"):
                ScenarioPack.from_json(record)

    def test_open_ended_segment_only_final(self):
        with pytest.raises(ScenarioFormatError, match="final segment"):
            ScenarioPack(
                name="bad",
                segments=(
                    ScenarioSegment(frames=0),
                    ScenarioSegment(frames=5),
                ),
            )

    def test_needs_at_least_one_segment(self):
        with pytest.raises(ScenarioFormatError, match="at least one"):
            ScenarioPack(name="empty", segments=())

    def test_loss_spec_validation(self):
        with pytest.raises(ScenarioFormatError, match="unknown loss kind"):
            LossSpec(kind="rayleigh")
        with pytest.raises(ScenarioFormatError, match="plr"):
            LossSpec(plr=1.5)
        with pytest.raises(ScenarioFormatError, match="escape"):
            LossSpec(kind="markov_burst", escape=(0.0,))
        with pytest.raises(ScenarioFormatError, match="pattern"):
            LossSpec(kind="trace", pattern="..o")
        with pytest.raises(ScenarioFormatError, match="plr_series"):
            LossSpec(kind="plr_series", plr_series=())

    def test_resilience_spec_validation(self):
        with pytest.raises(ScenarioFormatError, match="fec_window"):
            ResilienceSpec(fec_window=1)
        with pytest.raises(ScenarioFormatError, match="omit the spec"):
            ResilienceSpec()
        assert ResilienceSpec(retx_limit=2).to_json() == {"retx_limit": 2}

    def test_parse_scenario_three_forms(self, tmp_path):
        by_name = parse_scenario("steady-uniform")
        assert by_name.name == "steady-uniform"
        path = write_pack(by_name, tmp_path / "copy.json")
        assert parse_scenario(str(path)) == by_name
        inline = json.dumps(by_name.to_json())
        assert parse_scenario(inline) == by_name
        with pytest.raises(ScenarioFormatError, match="no scenario pack"):
            parse_scenario("not-a-pack")
        with pytest.raises(ScenarioFormatError, match="not valid JSON"):
            parse_scenario("{broken")

    def test_nominal_loss_rate_closed_forms(self):
        assert LossSpec(kind="none").nominal_loss_rate() == 0.0
        assert LossSpec(kind="uniform", plr=0.25).nominal_loss_rate() == 0.25
        trace = LossSpec(kind="trace", pattern=".x.x")
        assert trace.nominal_loss_rate() == 0.5
        series = LossSpec(kind="plr_series", plr_series=(0.0, 0.5, 1.0))
        assert series.nominal_loss_rate() == 0.5
        ge = LossSpec(
            kind="gilbert_elliott", p_good_to_bad=0.1, p_bad_to_good=0.4
        )
        assert ge.nominal_loss_rate() == pytest.approx(0.2)

    def test_pack_nominal_rate_is_frame_weighted(self):
        pack = ScenarioPack(
            name="w",
            segments=(
                ScenarioSegment(
                    frames=30, loss=LossSpec(kind="uniform", plr=0.0)
                ),
                # Open-ended tail is weighted as one second (fps frames).
                ScenarioSegment(
                    frames=0, loss=LossSpec(kind="uniform", plr=0.3)
                ),
            ),
        )
        assert pack.nominal_loss_rate() == pytest.approx(0.15)


# ---------------------------------------------------------------------------
# Property-based round-trips
# ---------------------------------------------------------------------------

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
escape_probs = st.floats(
    min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False
)

loss_specs = st.one_of(
    st.builds(LossSpec, kind=st.just("none")),
    st.builds(
        LossSpec,
        kind=st.just("uniform"),
        plr=probabilities,
        granularity=st.sampled_from(["frame", "packet"]),
    ),
    st.builds(
        LossSpec,
        kind=st.just("gilbert_elliott"),
        p_good_to_bad=probabilities,
        p_bad_to_good=probabilities,
        good_loss=probabilities,
        bad_loss=probabilities,
    ),
    st.builds(
        LossSpec,
        kind=st.just("markov_burst"),
        p_enter=probabilities,
        escape=st.lists(escape_probs, min_size=1, max_size=4).map(tuple),
    ),
    st.builds(
        LossSpec,
        kind=st.just("trace"),
        pattern=st.text(alphabet=".x", min_size=1, max_size=40),
    ),
    st.builds(
        LossSpec,
        kind=st.just("plr_series"),
        plr_series=st.lists(
            probabilities, min_size=1, max_size=20
        ).map(tuple),
    ),
)

resilience_specs = st.one_of(
    st.none(),
    # Filter the raw knobs before constructing: ResilienceSpec rejects
    # the all-off combination in __post_init__.
    st.tuples(
        st.sampled_from([0, 2, 3, 4, 8]),
        st.integers(min_value=0, max_value=3),
    )
    .filter(lambda knobs: knobs[0] or knobs[1])
    .map(
        lambda knobs: ResilienceSpec(
            fec_window=knobs[0], retx_limit=knobs[1]
        )
    ),
)

closed_segments = st.builds(
    ScenarioSegment,
    frames=st.integers(min_value=1, max_value=300),
    loss=loss_specs,
    bandwidth_kbps=st.floats(
        min_value=0.0, max_value=5000.0, allow_nan=False
    ),
    playout_delay_s=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    resilience=resilience_specs,
    label=st.text(max_size=12),
)
open_segments = st.builds(
    ScenarioSegment, frames=st.just(0), loss=loss_specs
)

scenario_packs = st.builds(
    lambda name, body, tail, fps, description: ScenarioPack(
        name=name,
        segments=tuple(body) + ((tail,) if tail is not None else ()),
        fps=fps,
        description=description,
    ),
    name=st.text(min_size=1, max_size=20),
    body=st.lists(closed_segments, max_size=3),
    tail=st.one_of(open_segments, closed_segments),
    fps=st.sampled_from([15.0, 24.0, 30.0]),
    description=st.text(max_size=30),
)


class TestPackProperties:
    @given(pack=scenario_packs)
    def test_json_round_trip_identity(self, pack):
        rendered = json.dumps(pack.to_json())
        assert ScenarioPack.from_json(json.loads(rendered)) == pack

    @given(pack=scenario_packs)
    def test_nominal_rate_in_unit_interval(self, pack):
        assert 0.0 <= pack.nominal_loss_rate() <= 1.0

    @given(pack=scenario_packs, frame=st.integers(0, 2000))
    def test_timeline_routing_total_and_monotone(self, pack, frame):
        index = pack.segment_index_for_frame(frame)
        assert 0 <= index < len(pack.segments)
        # Routing matches a straightforward prefix-sum scan.
        start = 0
        expected = len(pack.segments) - 1
        for position, segment in enumerate(pack.segments):
            if segment.frames == 0 or frame < start + segment.frames:
                expected = position
                break
            start += segment.frames
        assert index == expected
        if frame >= pack.timeline_frames:
            assert index == len(pack.segments) - 1

    @given(pack=scenario_packs, seed=st.integers(0, 2**16))
    def test_every_spec_builds_a_model(self, pack, seed):
        for segment in pack.segments:
            model = segment.loss.build(seed)
            fate = model.survives(make_packet(1, seq=1))
            assert isinstance(fate, bool)


# ---------------------------------------------------------------------------
# Shipped packs
# ---------------------------------------------------------------------------


class TestShippedPacks:
    def test_at_least_six_packs_ship(self):
        assert len(available_packs()) >= 6

    @pytest.mark.parametrize("name", available_packs())
    def test_pack_loads_and_round_trips(self, name, tmp_path):
        pack = load_pack(name)
        assert pack.name == name
        assert 0.0 <= pack.nominal_loss_rate() <= 1.0
        rewritten = write_pack(pack, tmp_path / f"{name}.json")
        assert load_pack(rewritten) == pack

    def test_matrix_covers_every_loss_kind(self):
        kinds = {
            segment.loss.kind
            for name in available_packs()
            for segment in load_pack(name).segments
        }
        assert {
            "uniform",
            "gilbert_elliott",
            "markov_burst",
            "trace",
            "plr_series",
        } <= kinds

    def test_some_pack_exercises_each_protection(self):
        fec = retx = bandwidth = multi = False
        for name in available_packs():
            pack = load_pack(name)
            multi = multi or len(pack.segments) > 1
            for segment in pack.segments:
                bandwidth = bandwidth or segment.bandwidth_kbps > 0
                if segment.resilience is not None:
                    fec = fec or segment.resilience.fec_window >= 2
                    retx = retx or segment.resilience.retx_limit >= 1
        assert fec and retx and bandwidth and multi


# ---------------------------------------------------------------------------
# ScenarioChannel semantics
# ---------------------------------------------------------------------------


def handoff_pack() -> ScenarioPack:
    return ScenarioPack(
        name="h",
        segments=(
            ScenarioSegment(frames=4, loss=LossSpec(kind="none")),
            ScenarioSegment(
                frames=0,
                loss=LossSpec(kind="trace", pattern="xxxxxxxxxx"),
            ),
        ),
    )


class TestScenarioChannel:
    def test_segment_boundary_switches_model(self):
        channel = ScenarioChannel(handoff_pack(), seed=1)
        packets = [make_packet(i, seq=i) for i in range(8)]
        delivered = channel.transmit(packets)
        # Frames 0-3 ride the lossless segment; 4-7 hit the all-loss
        # trace (whose pattern is indexed by absolute frame index).
        assert [p.frame_index for p in delivered] == [0, 1, 2, 3]
        assert channel.log.sent == 8
        assert channel.log.delivered == 4
        assert sorted(channel.log.lost_frames) == [4, 5, 6, 7]

    def test_last_segment_persists_past_timeline(self):
        pack = handoff_pack()
        assert pack.segment_index_for_frame(10_000) == 1

    def test_reset_replays_identical_fates(self):
        pack = load_pack("deep-fade")
        channel = ScenarioChannel(pack, seed=9)
        packets = [make_packet(i, seq=i) for i in range(40)]
        first = [p.sequence_number for p in channel.transmit(packets)]
        channel.reset()
        assert channel.log.sent == 0  # the log restarted too
        second = [p.sequence_number for p in channel.transmit(packets)]
        assert first == second

    def test_seed_changes_realization(self):
        pack = load_pack("bursty-wifi")
        packets = [make_packet(i, seq=i) for i in range(200)]
        fates = {
            seed: tuple(
                p.sequence_number
                for p in ScenarioChannel(pack, seed=seed).transmit(packets)
            )
            for seed in (0, 1, 2, 3)
        }
        assert len(set(fates.values())) > 1

    def test_segment_seeds_are_independent(self):
        seeds = {segment_seed(7, index) for index in range(50)}
        assert len(seeds) == 50
        assert segment_seed(7, 3) == segment_seed(7, 3)

    def test_scenario_and_loss_model_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            simulate(
                small_sequence(n_frames=2),
                build_strategy("NO"),
                loss_model=ScriptedLoss([1]),
                config=SimulationConfig(codec=small_config()),
                scenario=handoff_pack(),
            )

    def test_no_scenario_matches_plain_channel(self):
        """scenario=None stays bit-identical to the classic pipeline."""
        sequence = small_sequence(n_frames=4)
        config = SimulationConfig(codec=small_config())
        with_default = simulate(
            sequence, build_strategy("GOP-2"), config=config
        )
        explicit = simulate(
            sequence,
            build_strategy("GOP-2"),
            config=config,
            scenario=None,
        )
        assert with_default.psnr_series() == explicit.psnr_series()
        assert isinstance(with_default.channel_log, type(Channel(None).log))


# ---------------------------------------------------------------------------
# The pack × scheme matrix
# ---------------------------------------------------------------------------


class TestScenarioMatrix:
    @pytest.mark.parametrize("name", available_packs())
    @pytest.mark.parametrize("scheme", FLEET_SCHEMES)
    def test_pack_times_scheme_smoke(self, scheme, name):
        result = run_job(tiny_job(scheme, load_pack(name)))
        assert result.n_frames == TINY_CLIP.n_frames
        assert result.average_psnr_decoder > 10.0
        assert result.channel_log.sent >= TINY_CLIP.n_frames

    def test_job_digest_stable_across_processes(self):
        pack = load_pack("handoff")
        jobs = [tiny_job(scheme, pack) for scheme in ("NO", "GOP-3")]
        serial = run_grid(jobs, options=RunnerOptions(jobs=1, use_cache=False))
        pooled = run_grid(jobs, options=RunnerOptions(jobs=2, use_cache=False))
        from repro.service.wire import session_result_digest

        assert [session_result_digest(o.result) for o in serial] == [
            session_result_digest(o.result) for o in pooled
        ]

    def test_scenario_joins_cache_key(self):
        pack_a = load_pack("steady-uniform")
        pack_b = load_pack("bursty-wifi")
        base = tiny_job("GOP-3", pack_a)
        assert base.content_hash() != tiny_job("GOP-3", pack_b).content_hash()
        assert base.content_hash() == tiny_job("GOP-3", pack_a).content_hash()


# ---------------------------------------------------------------------------
# Fleet report
# ---------------------------------------------------------------------------


class TestFleet:
    def test_fleet_jobs_shape_and_assumed_plr(self):
        packs = ("steady-uniform", "bursty-wifi")
        jobs = fleet_jobs(
            ("NO", "PBPAIR"), packs, replicas=2, synthetic=TINY_CLIP
        )
        assert len(jobs) == 8  # 2 packs x 2 schemes x 2 replicas
        by_pack = {job.scenario.name for job in jobs}
        assert by_pack == set(packs)
        for job in jobs:
            assert job.plr == round(job.scenario.nominal_loss_rate(), 4)

    def test_serial_equals_pooled_digest(self):
        kwargs = dict(
            schemes=("GOP-3", "PBPAIR"),
            packs=("handoff", "retx-lossy"),
            sequence="tiny",
            n_frames=TINY_CLIP.n_frames,
            replicas=1,
            config=SimulationConfig(codec=small_config()),
            synthetic=TINY_CLIP,
        )
        serial = run_fleet(
            **kwargs, options=RunnerOptions(jobs=1, use_cache=False)
        )
        pooled = run_fleet(
            **kwargs, options=RunnerOptions(jobs=2, use_cache=False)
        )
        replay = run_fleet(
            **kwargs, options=RunnerOptions(jobs=1, use_cache=False)
        )
        assert serial.digest == pooled.digest == replay.digest
        assert len(serial.cells) == 4
        for cell in serial.cells:
            assert cell.psnr_db["p50"] is None or cell.psnr_db["p50"] > 0
            assert 0.0 <= cell.loss_rate <= 1.0
        # The report renders one table row per cell.
        assert len(serial.rows()) == 4
        report = serial.to_json()
        assert report["digest"] == serial.digest
        assert json.loads(json.dumps(report)) == report

    def test_cell_lookup(self):
        report = run_fleet(
            schemes=("NO",),
            packs=("steady-uniform",),
            sequence="tiny",
            n_frames=TINY_CLIP.n_frames,
            replicas=1,
            config=SimulationConfig(codec=small_config()),
            synthetic=TINY_CLIP,
            options=RunnerOptions(jobs=1, use_cache=False),
        )
        assert report.cell("NO", "steady-uniform").scheme == "NO"
        with pytest.raises(KeyError):
            report.cell("NO", "nope")


# ---------------------------------------------------------------------------
# Error-propagation metrics (satellite: recovery length per loss event)
# ---------------------------------------------------------------------------


class TestRecoveryMetrics:
    @pytest.fixture(scope="class")
    def scripted_run(self):
        return simulate(
            foreman_like(24),
            build_strategy("GOP-3"),
            loss_model=ScriptedLoss([8]),
        )

    def test_single_event_recovery_pinned(self, scripted_run):
        times = scripted_run.recovery_times(2.0)
        assert len(times) == 1
        summary = recovery_summary([scripted_run])
        assert summary["events"] == 1
        assert summary["mean_frames"] == pytest.approx(times[0])
        assert summary["max_frames"] == times[0]
        # Pinned: GOP-3 on FOREMAN recovers this scripted event in
        # exactly 4 frames (deterministic clip, channel and codec).
        assert times == [4]

    def test_no_events_reports_none(self):
        clean = simulate(
            small_sequence(n_frames=3),
            build_strategy("NO"),
            config=SimulationConfig(codec=small_config()),
        )
        summary = recovery_summary([clean])
        assert summary == {
            "events": 0,
            "mean_frames": None,
            "p95_frames": None,
            "max_frames": None,
        }
