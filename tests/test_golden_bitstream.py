"""Golden-bitstream regression tests: the coded output is frozen.

The VLC substrate may be reimplemented for speed (and has been: the
word-level kernels of ``repro.codec.bitstream``), but the bits on the
wire are part of the reproduction's contract — the paper's resilience
analysis depends on the exact (LAST, RUN, LEVEL) event structure, and
any drift would silently change every loss experiment.  These hashes
were computed with the original bit-serial reference implementation and
must never change without a deliberate, documented syntax break.

Each hash covers, for a fixed seed and sequence, every encoded frame's
payload bytes, its macroblock bit offsets, and every packetized
fragment payload — so the encoder, the offset bookkeeping, and the
packetizer's bit-slicing are all locked at once.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.codec.encoder import Encoder
from repro.codec.types import CodecConfig
from repro.network.packet import Packetizer
from repro.resilience.registry import build_strategy
from repro.video.synthetic import SyntheticConfig, foreman_like, generate_sequence

#: SHA-256 of the coded stream per scheme, foreman-like clip, 8 QCIF
#: frames, seed 1, MTU 512 (computed with the pre-kernel-swap codec).
GOLDEN_QCIF = {
    "NO": "081d8108a20d1b6df23df0b3dffedd25bf1702f6c0e2ea10ce7e82690483e6b3",
    "GOP-3": "fdaad3f77ec75841c799855c76b84b14abc112e7f26ecae9cdfc23e4aa3a0fb1",
    "PGOP-3": "c53406ed5cf797d4dde84c30612c755ffe492cdfa5704e62e4893d60f7b881d9",
    "AIR-24": "e181ffe6bcd17206178e99118583b0eb83d792368f510c41c0a4a89410423721",
    "PBPAIR": "e284542b94f062cdcf5086343f83b4051bfd431b3e5c299e03344c4199d80d48",
}

#: The kitchen-sink configuration: 4:2:0 chroma, half-pel motion and
#: skip mode all on, exercising the COD bit and chroma block paths.
GOLDEN_FULL_FEATURES = (
    "d0630ad8841d5825f6fdc66398c26019e3b30db919cafc4d5eacc7e774dd0c12"
)

SCHEME_KWARGS = {
    "NO": {},
    "GOP-3": {},
    "PGOP-3": {},
    "AIR-24": {},
    "PBPAIR": dict(intra_th=0.92, plr=0.1),
}


def stream_digest(config: CodecConfig, strategy, sequence, mtu: int) -> str:
    """Hash every payload, offset table and fragment the codec emits."""
    encoder = Encoder(config, strategy)
    packetizer = Packetizer(config, mtu=mtu)
    digest = hashlib.sha256()
    for encoded in encoder.encode_sequence(sequence):
        digest.update(encoded.payload)
        digest.update(
            np.asarray(encoded.mb_bit_offsets, dtype=np.int64).tobytes()
        )
        for packet in packetizer.packetize(encoded):
            digest.update(packet.payload)
    return digest.hexdigest()


@pytest.fixture(scope="module")
def qcif_clip():
    return foreman_like(n_frames=8)


@pytest.mark.parametrize("scheme", sorted(GOLDEN_QCIF))
def test_golden_stream_per_scheme(qcif_clip, scheme):
    digest = stream_digest(
        CodecConfig(),
        build_strategy(scheme, **SCHEME_KWARGS[scheme]),
        qcif_clip,
        mtu=512,
    )
    assert digest == GOLDEN_QCIF[scheme], (
        f"{scheme}: encoded bitstream changed — the VLC layer is no "
        "longer bit-identical to the reference implementation"
    )


def test_golden_stream_full_features():
    sequence = generate_sequence(
        SyntheticConfig(
            width=64,
            height=48,
            n_frames=6,
            texture_scale=30.0,
            object_radius=10,
            object_motion_amplitude=10.0,
            object_motion_period=8,
            sensor_noise=0.8,
            chroma=True,
            seed=13,
        ),
        name="colour",
    )
    config = CodecConfig(
        width=64, height=48, chroma=True, half_pel=True, allow_skip=True
    )
    digest = stream_digest(config, build_strategy("GOP-3"), sequence, mtu=256)
    assert digest == GOLDEN_FULL_FEATURES
