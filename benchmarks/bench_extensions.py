"""Extension experiments beyond the paper's evaluation.

The paper's future-work section names the directions these benches
explore: a better "network packet error model" (bursty and bit-error
channels), "cooperation with ... rate control", and codec features the
2005 testbed lacked (half-pel motion).  Each bench prints its table and
asserts the qualitative outcome.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BitErrorChannel,
    CodecConfig,
    GilbertElliottLoss,
    NoLoss,
    RateController,
    SimulationConfig,
    UniformLoss,
    foreman_like,
    format_table,
    make_strategy,
    replicate,
    simulate,
)

N_FRAMES = 60
PLR = 0.10
INTRA_TH = 0.92


@pytest.fixture(scope="module")
def sequence():
    return foreman_like(n_frames=N_FRAMES)


def test_bursty_channel(benchmark, sequence):
    """Same mean loss rate, bursty vs uniform arrival."""

    def bursty(seed):
        return GilbertElliottLoss(
            p_good_to_bad=0.03, p_bad_to_good=0.27, seed=seed
        )

    def run():
        rows = []
        for channel_name, factory in (
            ("uniform", lambda seed: UniformLoss(plr=PLR, seed=seed)),
            ("bursty", bursty),
        ):
            for spec, kwargs in (
                ("PBPAIR", dict(intra_th=INTRA_TH, plr=PLR)),
                ("PGOP-3", {}),
                ("NO", {}),
            ):
                summary = replicate(
                    sequence,
                    strategy_factory=lambda s=spec, k=kwargs: make_strategy(
                        s, **k
                    ),
                    loss_factory=factory,
                    metric=lambda r: r.average_psnr_decoder,
                    seeds=(1, 2, 3),
                    label=f"{channel_name}/{spec}",
                )
                rows.append(
                    [channel_name, spec, summary.mean, summary.std]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["channel", "scheme", "PSNR dB (mean of 3 seeds)", "std"],
            rows,
            title=f"Extension: bursty wireless loss, mean rate {PLR:.0%}",
        )
    )
    by_key = {(r[0], r[1]): r[2] for r in rows}
    # Refresh schemes beat NO on both channel types.  (Whether bursty
    # or uniform loss is *harder* at equal mean rate is seed-dependent:
    # bursts concentrate damage into fewer propagation chains.)
    for channel in ("uniform", "bursty"):
        assert by_key[(channel, "PBPAIR")] > by_key[(channel, "NO")]
        assert by_key[(channel, "PGOP-3")] > by_key[(channel, "NO")]


def test_bit_error_channel(benchmark, sequence):
    """VLC desynchronization: refresh bounds how long damage *lives*.

    Two effects pull against each other under a fixed bit-error rate:
    refresh schemes clean up desynchronization damage, but their larger
    bitstreams absorb proportionally more bit flips (every extra bit is
    an extra target).  The robust claim is therefore about damage
    persistence: without refresh, corruption accumulates and the tail
    of the run is ruined; with refresh, quality at the tail is no worse
    than mid-run.
    """

    def run():
        rows = []
        for spec, kwargs in (
            ("NO", {}),
            ("PBPAIR", dict(intra_th=INTRA_TH, plr=PLR)),
            ("PGOP-3", {}),
        ):
            overall, tail = [], []
            for seed in (5, 6, 7, 8):
                result = simulate(
                    sequence,
                    strategy=make_strategy(spec, **kwargs),
                    loss_model=NoLoss(),
                    bit_errors=BitErrorChannel(ber=2e-4, seed=seed),
                )
                series = result.psnr_series()
                overall.append(float(np.mean(series)))
                tail.append(float(np.mean(series[-10:])))
            rows.append(
                [spec, float(np.mean(overall)), float(np.mean(tail))]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["scheme", "PSNR dB (overall)", "PSNR dB (last 10 frames)"],
            rows,
            title="Extension: bit-error channel (BER 2e-4, no packet loss)",
        )
    )
    by_scheme = {r[0]: (r[1], r[2]) for r in rows}
    # Without refresh the tail is much worse than the overall mean
    # (damage accumulated); refresh schemes hold their tail quality.
    assert by_scheme["NO"][1] < by_scheme["NO"][0] - 1.0
    assert by_scheme["PBPAIR"][1] > by_scheme["NO"][1] + 2.0
    assert by_scheme["PGOP-3"][1] > by_scheme["NO"][1] + 2.0


def test_half_pel_motion(benchmark, sequence):
    """Half-pel MC: better prediction on sub-pixel content.

    The synthetic foreman's pan and jitter are deliberately sub-pixel
    (bilinear resampling), the regime half-pel compensation exists for.
    """

    def run():
        out = {}
        for label, half in (("integer-pel", False), ("half-pel", True)):
            config = SimulationConfig(codec=CodecConfig(half_pel=half))
            result = simulate(
                sequence,
                strategy=make_strategy("NO"),
                loss_model=NoLoss(),
                config=config,
            )
            out[label] = result
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            label,
            r.average_psnr_encoder,
            r.total_bytes / 1024,
            r.counters.sad_blocks / r.counters.mode_decisions,
        ]
        for label, r in runs.items()
    ]
    print(
        "\n"
        + format_table(
            ["motion", "encode PSNR dB", "size KB", "SAD cands/MB"],
            rows,
            title="Extension: half-pel vs integer-pel motion (NO, lossless)",
        )
    )
    integer, half = runs["integer-pel"], runs["half-pel"]
    # Same quantizer: half-pel buys rate, not PSNR.
    assert half.total_bytes < integer.total_bytes
    # And it pays 8 extra candidates per searched macroblock.
    assert half.counters.sad_blocks > integer.counters.sad_blocks


def test_rate_control_with_pbpair(benchmark, sequence):
    """Rate control and PBPAIR compose (the paper's independence claim)."""

    target_bits = 16000

    def run():
        controller = RateController(target_bits, base_qp=6)
        return simulate(
            sequence,
            strategy=make_strategy("PBPAIR", intra_th=INTRA_TH, plr=PLR),
            loss_model=UniformLoss(plr=PLR, seed=3),
            rate_controller=controller,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    steady = [r.size_bytes * 8 for r in result.frames[10:]]
    rows = [
        [
            target_bits,
            float(np.mean(steady)),
            float(np.std(steady)),
            100 * result.intra_fraction,
            result.average_psnr_decoder,
        ]
    ]
    print(
        "\n"
        + format_table(
            ["target bits/frame", "measured mean", "std", "intra %", "PSNR dB"],
            rows,
            title="Extension: PBPAIR under frame-level rate control",
        )
    )
    assert abs(np.mean(steady) - target_bits) / target_bits < 0.35
    assert result.intra_fraction > 0.05  # PBPAIR kept refreshing


def test_link_congestion(benchmark, sequence):
    """Close the loop on Figure 6(b)'s claim end to end.

    The paper argues GOP's frame-size spikes "will cause transmission
    problems such as buffer overflow, higher delay and link congestion".
    Here the size-matched Fig. 6 configurations stream over a fixed-rate
    link with a real-time playout deadline: the loss pattern is produced
    by each scheme's *own* bitstream shape, not by a random channel.
    """
    from repro.api import (
        BandwidthDeadlineLoss,
        SyntheticConfig,
        generate_sequence,
        calibrate_intra_th,
        total_encoded_bytes,
    )

    # Stationary content (no camera pan): steady-state frame sizes are
    # flat, so any burstiness on the link is the refresh pattern's own.
    steady = generate_sequence(
        SyntheticConfig(
            n_frames=N_FRAMES,
            texture_scale=35.0,
            texture_smoothness=3,
            object_radius=30,
            object_motion_amplitude=26.0,
            object_motion_period=30,
            sensor_noise=0.6,
            texture_drift=3.0,
            texture_drift_period=45,
            camera_jitter=0.1,
            seed=1,
        ),
        name="steady",
    )

    def run():
        target = total_encoded_bytes(steady, make_strategy("PGOP-1"))
        intra_th = calibrate_intra_th(
            steady, target, plr=PLR, max_iterations=8, tolerance=0.03
        )
        mean_kbps = target * 8 / (len(steady) / 30.0) / 1000.0
        # Cap PBPAIR's refresh waves at ~2x its average refresh budget:
        # smooth bitstream, same total refresh (see PBPAIRConfig).
        cap = 16
        rows = []
        for label, spec, kwargs in (
            ("PBPAIR (uncapped)", "PBPAIR", dict(intra_th=intra_th, plr=PLR)),
            (
                "PBPAIR (cap 16/frame)",
                "PBPAIR",
                dict(intra_th=intra_th, plr=PLR, max_refresh_per_frame=cap),
            ),
            ("PGOP-1", "PGOP-1", {}),
            ("GOP-8", "GOP-8", {}),
        ):
            link = BandwidthDeadlineLoss(
                kbps=1.18 * mean_kbps, playout_delay_s=0.1, fps=30.0
            )
            result = simulate(
                steady, strategy=make_strategy(spec, **kwargs), loss_model=link
            )
            lost_frames = sum(1 for r in result.frames if r.packets_lost > 0)
            rows.append(
                [
                    label,
                    result.total_bytes / 1024,
                    lost_frames,
                    1000 * link.log.max_queueing_delay_s,
                    result.average_psnr_decoder,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["scheme", "size KB", "frames late", "max queue ms", "PSNR dB"],
            rows,
            title=(
                "Extension: fixed-rate link + playout deadline "
                "(loss caused by each stream's own burstiness)"
            ),
        )
    )
    by_scheme = {r[0]: r for r in rows}
    capped = by_scheme["PBPAIR (cap 16/frame)"]
    uncapped = by_scheme["PBPAIR (uncapped)"]
    gop = by_scheme["GOP-8"]
    # The refresh cap never makes PBPAIR's stream burstier.
    assert capped[2] <= uncapped[2]
    # GOP's periodic I-frames lose several times more frames to the
    # deadline than the refresh streams, and its quality collapses
    # (every deadline miss is an I-frame, the worst frame to lose).
    assert gop[2] >= 2 * max(capped[2], 1)
    assert gop[4] < capped[4] - 3.0


def test_decoder_energy(benchmark, sequence):
    """Receive-side energy (extension: the paper measures encode only).

    Decoding has no motion search, so it is cheap and nearly identical
    across schemes — the differences track bitstream size (entropy
    decode) and intra/inter mix (motion compensation).
    """

    def run():
        rows = []
        for spec, kwargs in (
            ("NO", {}),
            ("PBPAIR", dict(intra_th=INTRA_TH, plr=PLR)),
            ("PGOP-3", {}),
            ("GOP-3", {}),
        ):
            result = simulate(
                sequence,
                strategy=make_strategy(spec, **kwargs),
                loss_model=UniformLoss(plr=PLR, seed=3),
            )
            rows.append(
                [
                    spec,
                    result.energy_joules,
                    result.decoder_energy_joules,
                    result.decoder_energy_joules / result.energy_joules,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["scheme", "encode J", "decode J", "decode/encode"],
            rows,
            title="Extension: receive-side (decoder) energy, iPAQ model",
        )
    )
    for _, encode_j, decode_j, ratio in rows:
        assert 0 < decode_j < encode_j  # no ME on the receive side
        assert ratio < 0.8
