"""Figure 5: PBPAIR vs NO/PGOP-3/GOP-3/AIR-24 at PLR = 10%.

Regenerates all four panels — (a) average PSNR, (b) bad pixels,
(c) encoded file size, (d) encoding energy on the iPAQ — as tables with
one row per scheme and one column per sequence, matching the paper's
bar groups.  PBPAIR runs at the Intra_Th calibrated to PGOP-3's file
size, exactly as the paper configures it.

The expensive simulations live in session fixtures; each test's
``benchmark`` call times the per-figure aggregation and prints the
paper-shaped table.
"""

from __future__ import annotations

from benchmarks.conftest import FIG5_SCHEMES
from repro.api import format_table

SEQUENCES = ("foreman", "akiyo", "garden")


def _table(fig5_results, cell, title, fmt="{:.2f}"):
    rows = []
    for scheme in FIG5_SCHEMES:
        row = [scheme]
        for seq in SEQUENCES:
            row.append(fmt.format(cell(fig5_results[(seq, scheme)])))
        rows.append(row)
    return format_table(["scheme", *SEQUENCES], rows, title=title)


def test_fig5a_average_psnr(benchmark, fig5_results):
    table = benchmark(
        _table,
        fig5_results,
        lambda run: run.result.average_psnr_decoder,
        "Fig 5(a): average PSNR (dB), PLR=10%",
    )
    print("\n" + table)
    # Shape check: every resilience scheme beats NO on every sequence.
    for seq in SEQUENCES:
        no_psnr = fig5_results[(seq, "NO")].result.average_psnr_decoder
        for scheme in FIG5_SCHEMES[1:]:
            assert (
                fig5_results[(seq, scheme)].result.average_psnr_decoder
                > no_psnr
            ), f"{scheme} should beat NO on {seq}"


def test_fig5b_bad_pixels(benchmark, fig5_results):
    table = benchmark(
        _table,
        fig5_results,
        lambda run: run.result.total_bad_pixels / 1e6,
        "Fig 5(b): bad pixels (millions), PLR=10%",
        "{:.3f}",
    )
    print("\n" + table)
    for seq in SEQUENCES:
        no_bad = fig5_results[(seq, "NO")].result.total_bad_pixels
        pb_bad = fig5_results[(seq, "PBPAIR")].result.total_bad_pixels
        assert pb_bad < no_bad, f"PBPAIR should have fewer bad pixels on {seq}"


def test_fig5c_file_size(benchmark, fig5_results):
    table = benchmark(
        _table,
        fig5_results,
        lambda run: run.result.total_bytes / 1024,
        "Fig 5(c): encoded file size (KB)",
        "{:.0f}",
    )
    print("\n" + table)
    # PBPAIR was calibrated to PGOP-3's size: within 15% on each clip.
    for seq in SEQUENCES:
        pb = fig5_results[(seq, "PBPAIR")].result.total_bytes
        pgop = fig5_results[(seq, "PGOP-3")].result.total_bytes
        assert abs(pb - pgop) / pgop < 0.15, f"size mismatch on {seq}"
    # And NO is always the smallest stream.
    for seq in SEQUENCES:
        sizes = {
            scheme: fig5_results[(seq, scheme)].result.total_bytes
            for scheme in FIG5_SCHEMES
        }
        assert min(sizes, key=sizes.get) == "NO"


def test_fig5d_energy_ipaq(benchmark, fig5_results):
    table = benchmark(
        _table,
        fig5_results,
        lambda run: run.energy_ipaq_j,
        "Fig 5(d): encoding energy (J), iPAQ H5555",
    )
    print("\n" + table)
    # The paper's energy ordering: PBPAIR < {PGOP, GOP} < AIR ~ NO.
    # On near-static content (akiyo) motion estimation is almost free,
    # so there is nothing for intra refresh to save and all resilience
    # schemes converge; require only a near-tie there.
    for seq in SEQUENCES:
        e = {
            scheme: fig5_results[(seq, scheme)].energy_ipaq_j
            for scheme in FIG5_SCHEMES
        }
        if seq == "akiyo":
            assert e["PBPAIR"] <= e["PGOP-3"] * 1.06
            assert e["PBPAIR"] <= e["AIR-24"] * 1.06
            continue
        assert e["PBPAIR"] < e["PGOP-3"], f"PBPAIR !< PGOP-3 on {seq}"
        assert e["PBPAIR"] < e["GOP-3"], f"PBPAIR !< GOP-3 on {seq}"
        assert e["PBPAIR"] < e["AIR-24"], f"PBPAIR !< AIR-24 on {seq}"
        assert e["PGOP-3"] < e["AIR-24"]
        # AIR decides after ME: energy within a few percent of NO.
        assert abs(e["AIR-24"] - e["NO"]) / e["NO"] < 0.08
    total = {
        scheme: sum(
            fig5_results[(seq, scheme)].energy_ipaq_j for seq in SEQUENCES
        )
        for scheme in FIG5_SCHEMES
    }
    assert total["PBPAIR"] == min(total.values())
