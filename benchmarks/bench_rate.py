"""Closed-loop rate control: convergence and bitrate accuracy per scheme.

The matched-bitrate comparison (``RateMatchSpec`` / ``repro compare
--target-kbps``) only means something if the controller actually lands
every scheme on the shared target.  This benchmark runs the Figure-5
scheme set under one closed-loop config and records, per scheme:

* the delivered bitrate and its signed error against the target;
* the PSNR at the matched rate (the number the paper's comparison is
  actually about);
* the convergence frame — the first frame after which the cumulative
  bitrate stays inside the convergence band to the end of the clip.

The gated field is ``matched_ratio``: the fraction of schemes whose
delivered bitrate lands within ±3% of the target.  It is exact by
construction (the controller is deterministic, the clip is committed),
so CI gates it with zero tolerance — any scheme drifting off target is
a control-law regression, not host noise.

Entry points mirror the other benchmarks: run standalone with
``python benchmarks/bench_rate.py [--out BENCH_rate.json]``, or under
pytest for the structural smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.api import (
    RateMatchSpec,
    RunnerOptions,
    run_grid,
)

#: Matched-bitrate error budget: the acceptance band for a scheme to
#: count as "on target" (3%), and the wider band used to locate the
#: convergence frame (10%).
MATCH_TOLERANCE = 0.03
CONVERGENCE_BAND = 0.10

#: 200 kbps sits inside every scheme's feasible band on FOREMAN QCIF:
#: above the intra-heavy schemes' QP-31 bitrate floor (GOP-3 ~131 kbps)
#: and far below everyone's QP-1 ceiling (~3100+ kbps).
DEFAULT_TARGET_KBPS = 200.0
DEFAULT_FRAMES = 90
DEFAULT_SEQUENCE = "foreman"
DEFAULT_PLR = 0.1


def convergence_frame(frame_bits, target_bits_per_frame, band) -> int | None:
    """First frame index after which the cumulative rate stays in band.

    "Stays" means every cumulative prefix from that frame to the end of
    the clip is within ``band`` of the target — a scheme that wanders
    out again has not converged at the earlier crossing.  None when the
    clip never settles.
    """
    total = 0.0
    errors = []
    for index, bits in enumerate(frame_bits, start=1):
        total += bits
        errors.append(abs(total / index - target_bits_per_frame)
                      / target_bits_per_frame)
    settled = None
    for index in range(len(errors) - 1, -1, -1):
        if errors[index] > band:
            break
        settled = index
    return settled


def measure(
    target_kbps: float = DEFAULT_TARGET_KBPS,
    n_frames: int = DEFAULT_FRAMES,
    sequence: str = DEFAULT_SEQUENCE,
    plr: float = DEFAULT_PLR,
) -> dict:
    """Run the matched-bitrate grid and score each scheme's tracking."""
    match = RateMatchSpec(target_kbps=target_kbps)
    rate = match.rate_config()
    jobs = match.jobs(plr=plr, sequence=sequence, n_frames=n_frames)
    outcomes = run_grid(
        jobs, options=RunnerOptions(jobs=1, use_cache=False)
    )
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise RuntimeError(
            f"{len(failures)} matched-bitrate cells failed: "
            f"{failures[0].error_type}: {failures[0].message}"
        )

    schemes = []
    matched = 0
    for scheme, outcome in zip(match.schemes, outcomes):
        result = outcome.result
        delivered_kbps = (
            result.total_bytes * 8 / result.n_frames * rate.fps / 1000.0
        )
        error = (delivered_kbps - target_kbps) / target_kbps
        if abs(error) <= MATCH_TOLERANCE:
            matched += 1
        settled = convergence_frame(
            [f.size_bytes * 8 for f in result.frames],
            rate.target_bits_per_frame,
            CONVERGENCE_BAND,
        )
        schemes.append(
            {
                "scheme": scheme,
                "delivered_kbps": round(delivered_kbps, 2),
                "bitrate_error_pct": round(100.0 * error, 2),
                "psnr_db": round(result.average_psnr_decoder, 2),
                "intra_pct": round(100.0 * result.intra_fraction, 2),
                "convergence_frame": settled,
            }
        )

    return {
        "benchmark": "rate_control",
        "grid": {
            "target_kbps": target_kbps,
            "schemes": list(match.schemes),
            "plr": plr,
            "sequence": sequence,
            "n_frames": n_frames,
            "fps": rate.fps,
        },
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "schemes": schemes,
        "match_tolerance_pct": 100.0 * MATCH_TOLERANCE,
        "matched_ratio": round(matched / len(schemes), 3),
        "max_abs_error_pct": max(
            abs(s["bitrate_error_pct"]) for s in schemes
        ),
        "note": (
            "matched_ratio is the gated field: the fraction of schemes "
            "whose delivered bitrate lands within the match tolerance "
            "of the shared target.  The controller and the clip are "
            "both deterministic, so 1.0 is exact on any host and gates "
            "with zero tolerance; convergence_frame and psnr_db are "
            "informational"
        ),
    }


def test_rate_benchmark_smoke():
    """Structural check on a reduced grid (kept fast for CI's tier 1)."""
    record = measure(
        target_kbps=400.0, n_frames=24, sequence="akiyo", plr=0.1
    )
    assert record["benchmark"] == "rate_control"
    assert [s["scheme"] for s in record["schemes"]] == [
        "NO", "GOP-3", "AIR-24", "PGOP-3", "PBPAIR",
    ]
    assert 0.0 <= record["matched_ratio"] <= 1.0
    for entry in record["schemes"]:
        assert entry["delivered_kbps"] > 0
        assert entry["psnr_db"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure closed-loop rate-control convergence per scheme"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON record to this path"
    )
    parser.add_argument(
        "--target-kbps", type=float, default=DEFAULT_TARGET_KBPS,
        help=f"shared bitrate target (default: {DEFAULT_TARGET_KBPS:g})",
    )
    parser.add_argument(
        "--frames", type=int, default=DEFAULT_FRAMES,
        help=f"frames per scheme (default: {DEFAULT_FRAMES})",
    )
    parser.add_argument(
        "--sequence", default=DEFAULT_SEQUENCE,
        help=f"clip to encode (default: {DEFAULT_SEQUENCE})",
    )
    args = parser.parse_args(argv)
    record = measure(
        target_kbps=args.target_kbps,
        n_frames=args.frames,
        sequence=args.sequence,
    )
    rendered = json.dumps(record, indent=2)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
