"""Fleet benchmark: ≥1000 short sessions through the encode daemon.

The closing benchmark of the streaming session service: drives a fleet
of short encode sessions through ``repro serve``'s HTTP+JSONL API on
one box — three session classes (interactive/standard/bulk) at three
priorities across three schemes — and reports:

* p50/p95/p99 end-to-end latency and delivered PSNR per session class
  (straight from the daemon's :class:`FleetSummary`);
* throughput (sessions/s) and the structural
  ``sessions_per_unique_encode`` ratio the encode-once stream cache
  exploits;
* the two gated ratios, both exact by construction and host-portable:
  ``completion_ratio`` — every accepted session must finish ok — and
  ``digest_match_ratio`` — every session's result digest must equal a
  batch :func:`run_grid` of the same spec, proving the daemon changes
  scheduling, never values.

Entry points mirror the other benchmarks: standalone with
``python benchmarks/bench_service.py [--sessions N] [--out FILE]``
(the committed ``BENCH_service.json`` uses the ≥1000-session default),
or under pytest for a reduced-fleet smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.api import (
    JobSpec,
    JobSubmit,
    RunnerOptions,
    ServiceClient,
    ServiceConfig,
    SimulationConfig,
    SyntheticConfig,
    CodecConfig,
    encode_content_hash,
    load_service_manifest,
    run_grid,
    session_result_digest,
    start_daemon,
)

DEFAULT_SESSIONS = 1002

#: One tiny clip shared by every session: 64x48 x 8 frames keeps a
#: 1000-session fleet in CI territory while leaving seven droppable
#: frames per session (frame 0 is protected), so delivered quality
#: genuinely spreads across channel seeds.
BENCH_CLIP = SyntheticConfig(
    width=64,
    height=48,
    n_frames=8,
    texture_scale=30.0,
    object_radius=10,
    object_motion_amplitude=10.0,
    object_motion_period=8,
    seed=11,
)

#: The three session classes of the fleet.  Every class pins one scheme
#: (one encode key — the stream cache makes the fleet pay for three
#: encodes total) and a priority, so the benchmark exercises the
#: priority queue, not just throughput.
SESSION_CLASSES = (
    ("interactive", "NO", 2),
    ("standard", "PBPAIR", 1),
    ("bulk", "GOP-3", 0),
)


def fleet_submits(n_sessions: int) -> list[JobSubmit]:
    """``n_sessions`` submits round-robined over the session classes.

    Each session gets a unique channel seed, so every cell is a
    distinct simulation sharing its class's encoded stream.
    """
    # A small MTU splits each tiny frame over several packets, so the
    # per-session channel seed actually spreads the delivered quality.
    config = SimulationConfig(
        codec=CodecConfig(width=64, height=48), mtu=200
    )
    submits = []
    for i in range(n_sessions):
        session_class, scheme, priority = SESSION_CLASSES[
            i % len(SESSION_CLASSES)
        ]
        spec = JobSpec(
            scheme=scheme,
            plr=0.1,
            channel_seed=i,
            sequence="bench",
            synthetic=BENCH_CLIP,
            config=config,
            pbpair_kwargs={"intra_th": 0.9} if scheme == "PBPAIR" else {},
        )
        submits.append(
            JobSubmit(
                spec=spec, priority=priority, session_class=session_class
            )
        )
    return submits


def measure(
    n_sessions: int = DEFAULT_SESSIONS,
    service_workers: int = 1,
    batch_size: int = 64,
) -> dict:
    """Run the fleet through a daemon and verify against batch run_grid."""
    submits = fleet_submits(n_sessions)
    unique_encodes = len(
        {encode_content_hash(s.spec) for s in submits}
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        config = ServiceConfig(
            queue_dir=tmp_path / "queue",
            port=0,
            runner=RunnerOptions(jobs=0, cache_dir=tmp_path / "cache"),
            service_workers=service_workers,
            batch_size=batch_size,
            max_pending=n_sessions + 1,
            poll_s=0.02,
        )
        fleet_start = time.perf_counter()
        with start_daemon(config) as handle:
            client = ServiceClient(handle.url)
            submit_start = time.perf_counter()
            job_ids = client.submit(submits, max_wait_s=600.0)
            submit_s = time.perf_counter() - submit_start
            done = client.wait(
                job_ids, timeout=3600.0, poll_s=0.2
            )
            fleet_s = time.perf_counter() - fleet_start
            summary = client.summary()
            daemon_digests = {
                job_id: client.result(job_id).result_digest
                for job_id, status in done.items()
                if status.ok
            }
            client.drain()
        manifest = load_service_manifest(config.resolved_manifest_path)

        ok = sum(1 for s in done.values() if s.ok)
        completion_ratio = ok / n_sessions

        # The bit-identity half: the same specs through plain batch
        # run_grid (its own caches) must reproduce every digest.
        batch_start = time.perf_counter()
        outcomes = run_grid(
            [s.spec for s in submits],
            options=RunnerOptions(
                jobs=0, cache_dir=tmp_path / "batch_cache"
            ),
        )
        batch_s = time.perf_counter() - batch_start

    matches = sum(
        1
        for job_id, outcome in zip(job_ids, outcomes)
        if outcome.ok
        and daemon_digests.get(job_id) == session_result_digest(outcome.result)
    )
    digest_match_ratio = matches / n_sessions

    classes = {
        cls.session_class: {
            "sessions": cls.sessions,
            "ok": cls.ok,
            "cached": cls.cached,
            "failed": cls.failed,
            "quarantined": cls.quarantined,
            "latency_s": {k: round(v, 4) for k, v in cls.latency_s.items()},
            "psnr_db": {k: round(v, 3) for k, v in cls.psnr_db.items()},
        }
        for cls in summary.classes
    }

    return {
        "benchmark": "service_fleet",
        "fleet": {
            "sessions": n_sessions,
            "session_classes": [
                {"name": name, "scheme": scheme, "priority": priority}
                for name, scheme, priority in SESSION_CLASSES
            ],
            "clip": {
                "width": BENCH_CLIP.width,
                "height": BENCH_CLIP.height,
                "n_frames": BENCH_CLIP.n_frames,
            },
            "plr": 0.1,
            "service_workers": service_workers,
            "batch_size": batch_size,
        },
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "counts": manifest.counts,
        "classes": classes,
        "unique_encodes": unique_encodes,
        "sessions_per_unique_encode": round(
            n_sessions / unique_encodes, 3
        ),
        "wall_time_s": {
            "submit": round(submit_s, 3),
            "fleet_total": round(fleet_s, 3),
            "batch_run_grid": round(batch_s, 3),
        },
        "sessions_per_second": (
            round(n_sessions / fleet_s, 3) if fleet_s else None
        ),
        "completion_ratio": completion_ratio,
        "digest_match_ratio": digest_match_ratio,
        "note": (
            "completion_ratio and digest_match_ratio are the gated "
            "fields: both are exact by construction (every session "
            "finishes ok; every daemon result digest equals the batch "
            "run_grid digest of the same spec), so any drop is a "
            "correctness bug, not noise.  Latency percentiles and "
            "sessions/s depend on the host and do not transfer."
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="drive a fleet of short sessions through the daemon"
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=DEFAULT_SESSIONS,
        help=f"fleet size (default: {DEFAULT_SESSIONS})",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=1,
        help="daemon dispatcher tasks (default: 1)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="jobs claimed per dispatch (default: 64)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON record to this path"
    )
    args = parser.parse_args(argv)
    record = measure(
        n_sessions=args.sessions,
        service_workers=args.service_workers,
        batch_size=args.batch_size,
    )
    rendered = json.dumps(record, indent=2)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


# --- pytest entry points ---------------------------------------------------


def test_fleet_specs_structural():
    submits = fleet_submits(30)
    assert len(submits) == 30
    # Three classes, three schemes, three encode keys at any fleet size.
    assert len({s.session_class for s in submits}) == 3
    assert len({encode_content_hash(s.spec) for s in submits}) == 3
    # Every session is still a distinct simulation cell.
    assert len({s.spec.content_hash() for s in submits}) == 30


def test_measure_smoke():
    record = measure(n_sessions=9, batch_size=4)
    assert record["completion_ratio"] == 1.0
    assert record["digest_match_ratio"] == 1.0
    assert record["counts"] == {"ok": 9}
    assert record["sessions_per_unique_encode"] == 3.0
    for name, _scheme, _priority in SESSION_CLASSES:
        cls = record["classes"][name]
        assert cls["sessions"] == 3
        assert cls["latency_s"]["p99"] >= cls["latency_s"]["p50"] > 0
        assert cls["psnr_db"]["p50"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
