"""Batched vs scalar macroblock-kernel throughput (DCT / quant / SAD).

The codec's hot loops are the 8x8 transforms, the H.263 quantizer and
the diamond-search SAD evaluations.  All three run batched — whole
``(n, 8, 8)`` stacks per transform call, whole search rounds per SAD
reduction — and :mod:`repro.codec.reference` keeps the bit-identical
one-block-at-a-time formulation.  This benchmark times both on the same
real residual workload and records the ratios in ``BENCH_blocks.json``;
the CI perf gate (``benchmarks/perf_gate.py``) fails the build when the
combined speedup regresses.

Outputs are checked for exact equality before anything is timed, so a
kernel that drifts from its reference can never report a "speedup".

Two entry points:

* ``python benchmarks/bench_block_kernels.py [--frames N] [--runs R]
  [--out BENCH_blocks.json]`` measures standalone and prints the JSON.
* Under pytest the module contributes a smoke test that runs one
  reduced round and sanity-checks the record's structure.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

import numpy as np

from repro.api import (
    DiamondSearchMotionEstimator,
    dequantize_blocks,
    dequantize_scalar,
    diamond_search_scalar,
    foreman_like,
    forward_dct_blocks,
    forward_dct_scalar,
    quantize_blocks,
    quantize_scalar,
)

DEFAULT_FRAMES = 5
DEFAULT_RUNS = 3
QP = 8
SEARCH_RANGE = 15
EARLY_EXIT_SAD = 1600


def _residual_blocks(frames) -> np.ndarray:
    """All 8x8 residual blocks of every consecutive frame pair."""
    stacks = []
    for prev, cur in zip(frames, frames[1:]):
        residual = cur.pixels.astype(np.int64) - prev.pixels.astype(np.int64)
        h, w = residual.shape
        stacks.append(
            residual.reshape(h // 8, 8, w // 8, 8)
            .transpose(0, 2, 1, 3)
            .reshape(-1, 8, 8)
        )
    return np.concatenate(stacks)


def _median_time(fn, runs: int) -> float:
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure(n_frames: int = DEFAULT_FRAMES, runs: int = DEFAULT_RUNS) -> dict:
    """Time each kernel pair on a synthetic-clip residual workload."""
    frames = foreman_like(n_frames).frames
    blocks = _residual_blocks(frames)
    intra = np.arange(blocks.shape[0]) % 3 == 0

    coeffs = forward_dct_blocks(blocks)
    levels = quantize_blocks(coeffs, intra, QP)
    estimator = DiamondSearchMotionEstimator(SEARCH_RANGE, EARLY_EXIT_SAD)
    pairs = list(zip(frames, frames[1:]))

    # Equality guards: a drifted kernel must never report a speedup.
    np.testing.assert_array_equal(coeffs, forward_dct_scalar(blocks))
    np.testing.assert_array_equal(levels, quantize_scalar(coeffs, intra, QP))
    np.testing.assert_array_equal(
        dequantize_blocks(levels, intra, QP),
        dequantize_scalar(levels, intra, QP),
    )
    for prev, cur in pairs:
        batched = estimator.estimate(cur.pixels, prev.pixels)
        scalar = diamond_search_scalar(
            cur.pixels, prev.pixels, SEARCH_RANGE, EARLY_EXIT_SAD
        )
        np.testing.assert_array_equal(batched.mvs, scalar.mvs)
        assert batched.candidates_evaluated == scalar.candidates_evaluated

    def sad_batched():
        for prev, cur in pairs:
            estimator.estimate(cur.pixels, prev.pixels)

    def sad_scalar():
        for prev, cur in pairs:
            diamond_search_scalar(
                cur.pixels, prev.pixels, SEARCH_RANGE, EARLY_EXIT_SAD
            )

    scalar_s = {
        "dct": _median_time(lambda: forward_dct_scalar(blocks), runs),
        "quant": _median_time(
            lambda: dequantize_scalar(
                quantize_scalar(coeffs, intra, QP), intra, QP
            ),
            runs,
        ),
        "sad": _median_time(sad_scalar, runs),
    }
    batched_s = {
        "dct": _median_time(lambda: forward_dct_blocks(blocks), runs),
        "quant": _median_time(
            lambda: dequantize_blocks(
                quantize_blocks(coeffs, intra, QP), intra, QP
            ),
            runs,
        ),
        "sad": _median_time(sad_batched, runs),
    }
    total_scalar = sum(scalar_s.values())
    total_batched = sum(batched_s.values())
    return {
        "benchmark": "block_kernels",
        "workload": {
            "sequence": "foreman",
            "n_frames": n_frames,
            "runs": runs,
            "blocks": int(blocks.shape[0]),
            "frame_pairs": len(pairs),
            "qp": QP,
            "search_range": SEARCH_RANGE,
            "early_exit_sad": EARLY_EXIT_SAD,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "scalar_s": {k: round(v, 5) for k, v in scalar_s.items()},
        "batched_s": {k: round(v, 5) for k, v in batched_s.items()},
        "speedups": {
            kernel: round(scalar_s[kernel] / batched_s[kernel], 2)
            for kernel in scalar_s
            if batched_s[kernel]
        },
        "combined_block_speedup": (
            round(total_scalar / total_batched, 2) if total_batched else None
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure batched vs scalar block-kernel throughput"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON record to this path"
    )
    parser.add_argument(
        "--frames", type=int, default=DEFAULT_FRAMES, help="clip length"
    )
    parser.add_argument(
        "--runs", type=int, default=DEFAULT_RUNS, help="timing repetitions"
    )
    args = parser.parse_args(argv)
    record = measure(n_frames=args.frames, runs=args.runs)
    rendered = json.dumps(record, indent=2)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


# --- pytest entry point ----------------------------------------------------


def test_block_kernel_record_structure():
    """One reduced round: record shape, guards, and sane ratios."""
    record = measure(n_frames=3, runs=1)
    assert record["benchmark"] == "block_kernels"
    for section in ("scalar_s", "batched_s", "speedups"):
        assert set(record[section]) == {"dct", "quant", "sad"}
    assert record["combined_block_speedup"] > 0
    assert record["workload"]["blocks"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
