"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures and
prints it in the paper's structure (see DESIGN.md's per-experiment
index).  The heavy simulations are computed once per session and shared.

Frame counts default to 150 per clip (the paper uses 300) to keep the
suite's wall time reasonable; set ``REPRO_BENCH_FRAMES=300`` for the
full-length reproduction.  Shapes are stable across clip length because
all dynamics (refresh rates, loss rates) are per-frame stationary.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.api import (
    EnergyModel,
    IPAQ_H5555,
    SEQUENCE_GENERATORS,
    SimulationConfig,
    UniformLoss,
    ZAURUS_SL5600,
    make_strategy,
    calibrate_intra_th,
    simulate,
    total_encoded_bytes,
)

#: Frames per clip (paper: 300).
N_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "150"))
#: The paper's Figure 5 assumes PLR = 10%.
PLR = 0.10
#: Loss-pattern seed (deterministic benches).
LOSS_SEED = 2005
#: Figure 5's legend.
FIG5_SCHEMES = ("NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24")
#: Figure 5(c)'s size-matching target scheme.
SIZE_MATCH_TARGET = "PGOP-3"


@dataclass(frozen=True)
class SchemeRun:
    """One (sequence, scheme) cell of Figure 5, on both devices."""

    sequence: str
    scheme: str
    result: object  # SimulationResult
    energy_ipaq_j: float
    energy_zaurus_j: float


def _calibrate_intra_th(sequence) -> float:
    """Find the Intra_Th matching SIZE_MATCH_TARGET's encoded size.

    Mirrors the paper's setup: "We choose Intra_Th that gives similar
    compression ratio with PGOP-3 ...".  Calibration runs on the full
    clip: a prefix would miss FOREMAN's late camera pan and transfer a
    threshold that overshoots once the pan starts.
    """
    target = total_encoded_bytes(sequence, make_strategy(SIZE_MATCH_TARGET))
    return calibrate_intra_th(
        sequence, target, plr=PLR, max_iterations=9, tolerance=0.02
    )


@pytest.fixture(scope="session")
def sequences():
    return {
        name: generator(N_FRAMES)
        for name, generator in SEQUENCE_GENERATORS.items()
    }


@pytest.fixture(scope="session")
def calibrated_intra_th(sequences):
    return {name: _calibrate_intra_th(seq) for name, seq in sequences.items()}


@pytest.fixture(scope="session")
def fig5_results(sequences, calibrated_intra_th):
    """All Figure-5 cells: 5 schemes x 3 sequences at PLR = 10%."""
    zaurus = EnergyModel(ZAURUS_SL5600)
    runs: dict[tuple[str, str], SchemeRun] = {}
    for seq_name, sequence in sequences.items():
        for scheme in FIG5_SCHEMES:
            if scheme == "PBPAIR":
                strategy = make_strategy(
                    "PBPAIR", intra_th=calibrated_intra_th[seq_name], plr=PLR
                )
            else:
                strategy = make_strategy(scheme)
            result = simulate(
                sequence,
                strategy=strategy,
                loss_model=UniformLoss(plr=PLR, seed=LOSS_SEED),
                config=SimulationConfig(device=IPAQ_H5555),
            )
            runs[(seq_name, scheme)] = SchemeRun(
                sequence=seq_name,
                scheme=scheme,
                result=result,
                energy_ipaq_j=result.energy_joules,
                energy_zaurus_j=zaurus.joules(result.counters),
            )
    return runs
