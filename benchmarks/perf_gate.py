"""CI perf-regression gate over the committed benchmark baselines.

Compares a freshly measured benchmark JSON against the committed one on
a *ratio* field (a speedup), not on absolute wall times: CI runners
differ wildly in absolute speed, but a batched-vs-scalar or
word-level-vs-bit-serial ratio measured on one host is comparable to
the same ratio measured on another.  The gate fails when the measured
ratio falls more than ``--tolerance`` (default 25%) below the baseline.

Usage (one comparison per invocation; CI calls it once per benchmark)::

    python benchmarks/perf_gate.py \\
        --baseline BENCH_blocks.json \\
        --measured measured/BENCH_blocks.json \\
        --field combined_block_speedup

Fields may be dotted paths into nested objects (``after.encode_fps``).
Exit status: 0 on pass, 1 on regression, 2 on malformed inputs.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_TOLERANCE = 0.25


def lookup(record: dict, field: str):
    """Resolve a dotted field path inside a JSON record."""
    value = record
    for part in field.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(field)
        value = value[part]
    return value


def check(
    baseline: dict,
    measured: dict,
    field: str,
    tolerance: float = DEFAULT_TOLERANCE,
    ceiling_field: str | None = None,
) -> tuple[bool, str]:
    """Compare one ratio field; returns (passed, human-readable line).

    ``ceiling_field`` names a field in the *measured* record holding
    this host's physical ceiling for the ratio (e.g. a parallel speedup
    is bounded by the core count).  A baseline above the measured
    host's ceiling is unreachable there — comparing would fail every
    run on a smaller machine — so the check is skipped, not failed.
    """
    base = float(lookup(baseline, field))
    got = float(lookup(measured, field))
    if base <= 0:
        raise ValueError(f"baseline {field} must be positive, got {base}")
    if ceiling_field is not None:
        ceiling = float(lookup(measured, ceiling_field))
        if base > ceiling:
            return True, (
                f"SKIP: {field} baseline {base:.3g} exceeds this host's "
                f"ceiling {ceiling:.3g} ({ceiling_field}) — "
                "not comparable on this hardware"
            )
    floor = base * (1.0 - tolerance)
    passed = got >= floor
    verdict = "OK" if passed else "REGRESSION"
    line = (
        f"{verdict}: {field} measured {got:.3g} vs baseline {base:.3g} "
        f"(floor {floor:.3g}, tolerance {tolerance:.0%})"
    )
    return passed, line


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a benchmark ratio regresses vs its baseline"
    )
    parser.add_argument(
        "--baseline", required=True, help="committed benchmark JSON"
    )
    parser.add_argument(
        "--measured", required=True, help="freshly measured benchmark JSON"
    )
    parser.add_argument(
        "--field",
        required=True,
        help="dotted path of the ratio field to compare",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below the baseline (default 0.25)",
    )
    parser.add_argument(
        "--ceiling-field",
        default=None,
        help=(
            "dotted path in the MEASURED record holding this host's "
            "physical ceiling for the ratio; a baseline above it is "
            "skipped (unreachable here), not failed"
        ),
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        print(f"tolerance must be in [0, 1), got {args.tolerance}")
        return 2
    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(args.measured, encoding="utf-8") as handle:
            measured = json.load(handle)
        passed, line = check(
            baseline, measured, args.field, args.tolerance,
            ceiling_field=args.ceiling_field,
        )
    except (OSError, ValueError, KeyError) as error:
        print(f"perf gate could not compare: {error!r}")
        return 2
    print(line)
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
