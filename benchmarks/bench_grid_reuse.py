"""Encode-work reduction from the grid runner's encoded-stream cache.

The paper's figures replicate every (scheme, PLR) cell over several
channel seeds, and the channel only ever sees the *encoded* stream —
so a grid of S schemes x K seeds needs S encodes, not S*K.  This
benchmark runs the replication grid used by ``BENCH_runner.json``
(4 schemes x 4 channel seeds on AKIYO) with stream sharing on and off
and records:

* the structural reduction — cells per unique encode key, a
  deterministic property of the grid (16 cells / 4 keys = 4.0 here),
  which is what the CI perf gate tracks because it is host-independent;
* measured cold wall times (shared vs unshared) and a warm pass over a
  populated stream cache, for the curious — absolute times do not
  transfer across hosts;
* a results-identical check: sharing must not change a single metric.

Entry points mirror the other benchmarks: run standalone with
``python benchmarks/bench_grid_reuse.py [--out BENCH_grid.json]``, or
under pytest for the reduced-grid correctness checks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

from repro.api import (
    EncodedStreamCache,
    encode_content_hash,
    run_grid,
)
try:
    from benchmarks.bench_runner_scaling import scaling_grid
except ImportError:  # standalone: python benchmarks/bench_grid_reuse.py
    from bench_runner_scaling import scaling_grid

DEFAULT_FRAMES = 24


def unique_encode_keys(jobs) -> int:
    """Distinct encode-phase cache keys in the grid (deterministic)."""
    return len({encode_content_hash(spec) for spec in jobs})


def _timed_run(jobs, stream_cache=None, share=True) -> tuple[float, list]:
    start = time.perf_counter()
    outcomes = run_grid(
        jobs, max_workers=1, stream_cache=stream_cache, share_streams=share
    )
    elapsed = time.perf_counter() - start
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise RuntimeError(
            f"{len(failures)} grid cells failed: "
            f"{failures[0].error_type}: {failures[0].message}"
        )
    return elapsed, outcomes


def _metrics(outcomes) -> list:
    return [
        (o.result.average_psnr_decoder, o.result.counters, o.result.energy)
        for o in outcomes
    ]


def measure(n_frames: int = DEFAULT_FRAMES) -> dict:
    """Grid with sharing off, cold with sharing on, then warm."""
    jobs = scaling_grid(n_frames=n_frames)
    unique = unique_encode_keys(jobs)

    unshared_s, unshared = _timed_run(jobs, share=False)

    with tempfile.TemporaryDirectory() as tmp:
        cache = EncodedStreamCache(tmp, max_entries=max(unique, 8))
        cold_s, shared = _timed_run(jobs, stream_cache=cache)
        cold_encodes = cache.encodes
        cold_hits = cache.hits
        warm_cache = EncodedStreamCache(tmp, max_entries=max(unique, 8))
        warm_s, rewarmed = _timed_run(jobs, stream_cache=warm_cache)
        warm_encodes = warm_cache.encodes

    identical = (
        _metrics(unshared) == _metrics(shared) == _metrics(rewarmed)
    )
    if not identical:
        raise RuntimeError(
            "stream sharing changed grid results — the cache must be "
            "observation-equivalent to encoding every cell"
        )

    return {
        "benchmark": "grid_reuse",
        "grid": {
            "schemes": ["NO", "GOP-3", "PGOP-3", "PBPAIR"],
            "channel_seeds": [1, 2, 3, 4],
            "plr": 0.1,
            "sequence": "akiyo",
            "n_frames": n_frames,
            "cells": len(jobs),
        },
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "unique_encodes": unique,
        "cells_per_unique_encode": round(len(jobs) / unique, 3),
        "measured_cold_encodes": cold_encodes,
        "measured_cold_hits": cold_hits,
        "measured_warm_encodes": warm_encodes,
        "wall_time_s": {
            "unshared": round(unshared_s, 3),
            "cold_shared": round(cold_s, 3),
            "warm_shared": round(warm_s, 3),
        },
        "cold_speedup_vs_unshared": (
            round(unshared_s / cold_s, 3) if cold_s else None
        ),
        "warm_speedup_vs_unshared": (
            round(unshared_s / warm_s, 3) if warm_s else None
        ),
        "results_identical": identical,
        "note": (
            "cells_per_unique_encode is the gated field: it is a "
            "structural property of the grid (how many cells share each "
            "encode key), deterministic on any host; wall times and "
            "their speedups depend on how much of a cell's cost is the "
            "encoder vs the channel+decoder and do not transfer"
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure encode-work reduction from stream sharing"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON record to this path"
    )
    parser.add_argument(
        "--frames", type=int, default=DEFAULT_FRAMES, help="frames per cell"
    )
    args = parser.parse_args(argv)
    record = measure(n_frames=args.frames)
    rendered = json.dumps(record, indent=2)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


# --- pytest entry points ---------------------------------------------------


def test_grid_shares_one_encode_per_scheme():
    """4 schemes x N seeds collapse to 4 encode keys at any N."""
    jobs = scaling_grid(n_frames=2)
    assert len(jobs) == 16
    assert unique_encode_keys(jobs) == 4
    assert len(jobs) / unique_encode_keys(jobs) >= 4.0


def test_shared_grid_results_identical_on_reduced_grid():
    jobs = scaling_grid(n_frames=2, schemes=("NO", "PBPAIR"), seeds=(1, 2))
    _, unshared = _timed_run(jobs, share=False)
    cache = EncodedStreamCache()
    _, shared = _timed_run(jobs, stream_cache=cache)
    assert _metrics(unshared) == _metrics(shared)
    assert cache.encodes == 2  # one per scheme, not one per cell


def test_measure_smoke(tmp_path):
    record = measure(n_frames=2)
    assert record["results_identical"] is True
    assert record["cells_per_unique_encode"] >= 4.0
    assert record["measured_cold_encodes"] == record["unique_encodes"]
    assert record["measured_warm_encodes"] == 0


if __name__ == "__main__":
    raise SystemExit(main())
