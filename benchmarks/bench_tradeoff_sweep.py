"""Sections 4.3 and 4.4: the (Intra_Th x PLR) operating-point space.

Section 4.3 (error resiliency vs energy): sweeping Intra_Th from 0 to 1
moves PBPAIR from "maximum compression efficiency, no resilience" to
"every macroblock intra, maximum robustness"; energy falls and bitstream
size grows monotonically along the way.  Rising PLR at fixed Intra_Th
also raises the intra rate (sigma decays faster).

Section 4.4 (image quality vs error resiliency): under loss, higher
Intra_Th yields higher PSNR and fewer bad pixels.
"""

from __future__ import annotations

import pytest

from repro.api import (
    UniformLoss,
    foreman_like,
    format_table,
    make_strategy,
    simulate,
)

N_FRAMES = 60
THRESHOLDS = (0.0, 0.5, 0.8, 0.9, 0.95, 1.0)
PLRS = (0.05, 0.1, 0.2)


@pytest.fixture(scope="module")
def sweep_results():
    sequence = foreman_like(n_frames=N_FRAMES)
    grid = {}
    for plr in PLRS:
        for th in THRESHOLDS:
            strategy = make_strategy("PBPAIR", intra_th=th, plr=plr)
            grid[(plr, th)] = simulate(
                sequence,
                strategy=strategy,
                loss_model=UniformLoss(plr=plr, seed=77),
            )
    return grid


def test_sec43_energy_vs_resilience(benchmark, sweep_results):
    rows = benchmark(
        lambda: [
            [
                plr,
                th,
                sweep_results[(plr, th)].intra_fraction * 100,
                sweep_results[(plr, th)].total_bytes / 1024,
                sweep_results[(plr, th)].energy_joules,
            ]
            for plr in PLRS
            for th in THRESHOLDS
        ]
    )
    print(
        "\n"
        + format_table(
            ["PLR", "Intra_Th", "intra MBs %", "size KB", "energy J"],
            rows,
            title="Section 4.3: error resiliency vs energy (foreman)",
        )
    )
    for plr in PLRS:
        runs = [sweep_results[(plr, th)] for th in THRESHOLDS]
        intra = [r.intra_fraction for r in runs]
        sizes = [r.total_bytes for r in runs]
        energy = [r.energy_joules for r in runs]
        # More threshold -> more intra MBs -> larger stream, less energy.
        assert intra == sorted(intra)
        assert sizes == sorted(sizes)
        # Energy falls with the threshold except at the all-intra
        # extreme, where the much larger bitstream's entropy-coding work
        # can buy back a percent or two (the paper notes the tension:
        # "a larger number of intra blocks will result in more
        # transmission due to the larger encoded bitstream").
        for earlier, later in zip(energy, energy[1:]):
            assert later <= earlier * 1.04
        assert energy[-1] < energy[0] * 0.75
        # The two extremes the paper calls out.
        assert runs[0].intra_fraction < 0.15  # Th=0: essentially NO
        assert runs[-1].intra_fraction > 0.95  # Th=1: all intra

    # Fixed Intra_Th, rising PLR -> more intra macroblocks (sigma
    # decays faster), Section 3.2's Equation (3) argument.
    for th in (0.5, 0.8, 0.9):
        fractions = [sweep_results[(plr, th)].intra_fraction for plr in PLRS]
        assert fractions == sorted(fractions)


def test_sec44_quality_vs_resilience(benchmark, sweep_results):
    rows = benchmark(
        lambda: [
            [
                plr,
                th,
                sweep_results[(plr, th)].average_psnr_decoder,
                sweep_results[(plr, th)].total_bad_pixels / 1e6,
            ]
            for plr in PLRS
            for th in THRESHOLDS
        ]
    )
    print(
        "\n"
        + format_table(
            ["PLR", "Intra_Th", "PSNR dB", "bad pixels M"],
            rows,
            title="Section 4.4: image quality vs error resiliency (foreman)",
        )
    )
    for plr in PLRS:
        lowest = sweep_results[(plr, THRESHOLDS[0])]
        highest = sweep_results[(plr, THRESHOLDS[-1])]
        # Robust encodings end up with clearly better delivered quality.
        assert highest.average_psnr_decoder > lowest.average_psnr_decoder + 1.0
        assert highest.total_bad_pixels < lowest.total_bad_pixels / 2
