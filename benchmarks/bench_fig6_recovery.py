"""Figure 6: per-frame behaviour under scripted loss events e1..e7.

The paper runs FOREMAN for 50 frames under seven specific packet-loss
events and compares PBPAIR against PGOP-1, GOP-8 and AIR-10 (chosen
because they "generate a similar size of encoded bitstream").  Event e7
hits one of GOP-8's I-frames — the paper's showcase of GOP's fragility.

(a) prints the per-frame PSNR series; (b) the per-frame encoded size
series; the recovery test quantifies "PBPAIR recovers faster" with the
recovery-time metric (frames from a loss until decoder PSNR is back
within 2 dB of the loss-free encode).
"""

from __future__ import annotations

import pytest

from repro.api import (
    ScriptedLoss,
    foreman_like,
    format_series,
    format_table,
    make_strategy,
    calibrate_intra_th,
    simulate,
    total_encoded_bytes,
)

N_FRAMES = 50
#: Loss events e1..e7; e7 (frame 36) is a GOP-8 I-frame (0, 9, 18, 27,
#: 36, ...).  Events start after frame 10 so every scheme is past its
#: start-up transient (PBPAIR's sigma decays from the error-free start
#: for a few frames before the first refreshes trigger).
LOSS_EVENTS = (10, 14, 19, 23, 28, 32, 36)
SCHEMES = ("PBPAIR", "PGOP-1", "GOP-8", "AIR-10")


@pytest.fixture(scope="module")
def fig6_results():
    sequence = foreman_like(n_frames=N_FRAMES)
    target = total_encoded_bytes(sequence, make_strategy("PGOP-1"))
    intra_th = calibrate_intra_th(
        sequence, target, plr=0.1, max_iterations=8, tolerance=0.03
    )
    results = {}
    for scheme in SCHEMES:
        if scheme == "PBPAIR":
            strategy = make_strategy("PBPAIR", intra_th=intra_th, plr=0.1)
        else:
            strategy = make_strategy(scheme)
        results[scheme] = simulate(
            sequence, strategy=strategy, loss_model=ScriptedLoss(LOSS_EVENTS)
        )
    return results


def test_fig6a_psnr_variation(benchmark, fig6_results):
    series = benchmark(
        lambda: {s: fig6_results[s].psnr_series() for s in SCHEMES}
    )
    print("\nFig 6(a): per-frame PSNR (dB), loss events at frames "
          f"{LOSS_EVENTS}")
    for scheme in SCHEMES:
        print(format_series(scheme.ljust(7), series[scheme], precision=1))
    # Every scheme dips at each loss event.
    for scheme in SCHEMES:
        result = fig6_results[scheme]
        for event in LOSS_EVENTS:
            record = result.frames[event]
            assert record.packets_lost > 0
            assert record.psnr_decoder < record.psnr_encoder

    # GOP's showcase failure: after losing the I-frame at e7 its PSNR
    # stays depressed until the next I-frame (frame 45), while PBPAIR
    # has already recovered in that window.
    gop = fig6_results["GOP-8"].psnr_series()
    pbpair = fig6_results["PBPAIR"].psnr_series()
    window = slice(40, 45)
    assert sum(pbpair[window]) > sum(gop[window])


def test_fig6b_frame_size_variation(benchmark, fig6_results):
    series = benchmark(
        lambda: {s: fig6_results[s].size_series() for s in SCHEMES}
    )
    print("\nFig 6(b): per-frame encoded size (bytes)")
    for scheme in SCHEMES:
        print(format_series(scheme.ljust(7), [float(v) for v in series[scheme]], precision=0))
    from repro.api import frame_size_stats

    # Frame 0 is a full I-frame for every scheme (the error-free start);
    # smoothness is about steady-state behaviour, so judge frames 1..N.
    stats = {
        s: frame_size_stats(fig6_results[s].size_series()[1:]) for s in SCHEMES
    }
    table = format_table(
        ["scheme", "total KB", "mean B", "max B", "peak/mean", "cv"],
        [
            [
                s,
                stats[s].total_bytes / 1024,
                stats[s].mean_bytes,
                stats[s].max_bytes,
                stats[s].peak_to_mean,
                stats[s].coefficient_of_variation,
            ]
            for s in SCHEMES
        ],
        title="Fig 6(b) summary: bitstream smoothness",
    )
    print(table)
    # The paper's point: GOP's bitstream is severely uneven; the intra-
    # refresh schemes are much smoother.
    assert stats["GOP-8"].peak_to_mean > 1.5 * stats["PBPAIR"].peak_to_mean
    assert (
        stats["GOP-8"].coefficient_of_variation
        > stats["PGOP-1"].coefficient_of_variation
    )
    # Size matching held (the experiment's premise).
    sizes = [stats[s].total_bytes for s in SCHEMES]
    assert max(sizes) < 1.45 * min(sizes)


def test_recovery_speed(benchmark, fig6_results):
    times = benchmark(
        lambda: {s: fig6_results[s].recovery_times(dip_db=2.0) for s in SCHEMES}
    )
    rows = []
    for scheme in SCHEMES:
        t = times[scheme]
        rows.append(
            [scheme, len(t), sum(t) / len(t) if t else 0.0, max(t) if t else 0]
        )
    print(
        "\n"
        + format_table(
            ["scheme", "events", "mean recovery (frames)", "worst"],
            rows,
            title="Section 4.2: error recovery speed",
        )
    )
    mean = {s: sum(t) / len(t) for s, t in times.items()}
    # The paper's claim: PBPAIR recovers faster than PGOP and AIR;
    # GOP sometimes recovers faster but has catastrophic worst cases.
    assert mean["PBPAIR"] < mean["PGOP-1"]
    assert mean["PBPAIR"] < mean["AIR-10"]
    assert max(times["PBPAIR"]) <= max(times["GOP-8"])
