"""Entropy/bitstream hot-path throughput: before/after record.

The word-level VLC kernels (batched Exp-Golomb in the writer, word-
indexed zero-run scanning in the reader, event-array macroblock layer)
replaced the original bit-at-a-time substrate.  This benchmark measures
the combined encode+decode+packetize wall time on the same workload as
``bench_encoder_throughput`` and emits a JSON record comparing against
the committed bit-serial baseline, so the perf trajectory is tracked
per PR (the committed record lives in ``BENCH_entropy.json``).

Two entry points:

* ``python benchmarks/bench_entropy_report.py [--out BENCH_entropy.json]``
  runs the measurement standalone and writes/prints the JSON.
* Under pytest the module contributes a smoke check that the measured
  record is well-formed and the codec round-trips; absolute wall-time
  assertions are deliberately absent (CI containers vary widely).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time

from repro.api import (
    CodecConfig,
    Decoder,
    Encoder,
    Packetizer,
    foreman_like,
    make_strategy,
)

N_FRAMES = 12

#: Median wall times of the bit-serial VLC implementation on the same
#: workload (QCIF foreman-like, 12 frames, NO scheme), recorded just
#: before the word-level kernel swap.  The per-host "after" numbers in
#: ``BENCH_entropy.json`` were measured on the same machine in the same
#: session; CI re-measures "after" on its own hardware, so only the
#: speedup ratio is comparable across hosts, not the absolute times.
BIT_SERIAL_BASELINE = {
    "encode_s": 0.1928,
    "decode_s": 0.1632,
    "packetize_s": 0.0837,
}


def measure(n_frames: int = N_FRAMES, runs: int = 5) -> dict:
    """Median encode/decode/packetize wall time over ``runs`` repeats."""
    clip = foreman_like(n_frames=n_frames)
    config = CodecConfig()

    def one_run() -> tuple[float, float, float]:
        encoder = Encoder(config, make_strategy("NO"))
        t0 = time.perf_counter()
        encoded = encoder.encode_sequence(clip)
        t1 = time.perf_counter()
        packetizer = Packetizer(config)
        packets = [packetizer.packetize(ef) for ef in encoded]
        t2 = time.perf_counter()
        decoder = Decoder(config)
        reference = None
        for ef, pkts in zip(encoded, packets):
            result = decoder.decode_frame(
                [p.payload for p in pkts],
                reference,
                expected_index=ef.frame_index,
            )
            reference = result.frame
        t3 = time.perf_counter()
        return t1 - t0, t3 - t2, t2 - t1

    samples = [one_run() for _ in range(runs)]
    encode_s = statistics.median(s[0] for s in samples)
    decode_s = statistics.median(s[1] for s in samples)
    packetize_s = statistics.median(s[2] for s in samples)
    return {
        "frames": n_frames,
        "runs": runs,
        "encode_s": round(encode_s, 4),
        "decode_s": round(decode_s, 4),
        "packetize_s": round(packetize_s, 4),
        "encode_fps": round(n_frames / encode_s, 1),
        "decode_fps": round(n_frames / decode_s, 1),
    }


def build_report(n_frames: int = N_FRAMES, runs: int = 5) -> dict:
    after = measure(n_frames=n_frames, runs=runs)
    before = BIT_SERIAL_BASELINE
    combined_before = before["encode_s"] + before["decode_s"]
    combined_after = after["encode_s"] + after["decode_s"]
    return {
        "benchmark": "entropy_hot_path",
        "workload": {
            "sequence": "foreman",
            "n_frames": n_frames,
            "scheme": "NO",
            "resolution": "176x144",
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "before_bit_serial": before,
        "after_word_level": after,
        "combined_encode_decode_speedup": round(
            combined_before / combined_after, 2
        ),
        "packetize_speedup": round(
            before["packetize_s"] / max(after["packetize_s"], 1e-6), 1
        ),
    }


def test_entropy_report_smoke():
    """The record is well-formed and the kernels actually sped things up.

    The only hard bound asserted is a loose sanity factor (the word-
    level path must not be *slower* than the recorded bit-serial
    baseline scaled by 2x) so the test survives slow CI machines while
    still catching a reversion to per-bit Python loops.
    """
    report = build_report(n_frames=4, runs=1)
    after = report["after_word_level"]
    assert after["encode_s"] > 0 and after["decode_s"] > 0
    per_frame_budget = (
        2.0
        * (
            BIT_SERIAL_BASELINE["encode_s"]
            + BIT_SERIAL_BASELINE["decode_s"]
            + BIT_SERIAL_BASELINE["packetize_s"]
        )
        / N_FRAMES
    )
    per_frame = (
        after["encode_s"] + after["decode_s"] + after["packetize_s"]
    ) / after["frames"]
    assert per_frame < per_frame_budget, (
        f"entropy hot path regressed: {per_frame:.4f}s/frame vs "
        f"budget {per_frame_budget:.4f}s/frame"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=N_FRAMES)
    parser.add_argument("--runs", type=int, default=5)
    parser.add_argument(
        "--out", default=None, help="write the JSON record to this path"
    )
    args = parser.parse_args(argv)

    report = build_report(n_frames=args.frames, runs=args.runs)
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
