"""Ablations of the design choices DESIGN.md calls out.

* probability-aware ME (Section 3.1.2) on/off — the motion-vector bias
  toward references likely to survive transmission;
* similarity factor (Section 3.1.3) informative vs blunted — content
  awareness in the correctness update;
* fixed-point vs float DCT (Section 4.1's implementation constraint);
* motion-search strategy (diamond / three-step / full) — the cost
  structure underlying the energy result;
* concealment scheme (copy vs spatial interpolation) at the decoder.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CodecConfig,
    SimulationConfig,
    SpatialConcealment,
    UniformLoss,
    foreman_like,
    format_table,
    make_strategy,
    simulate,
)

N_FRAMES = 60
PLR = 0.1
INTRA_TH = 0.92


@pytest.fixture(scope="module")
def sequence():
    return foreman_like(n_frames=N_FRAMES)


def _run(sequence, loss_seed=31, config=None, concealment=None, **pbpair_kwargs):
    kwargs = dict(intra_th=INTRA_TH, plr=PLR)
    kwargs.update(pbpair_kwargs)
    return simulate(
        sequence,
        strategy=make_strategy("PBPAIR", **kwargs),
        loss_model=UniformLoss(plr=PLR, seed=loss_seed),
        config=config,
        concealment=concealment,
    )


def test_ablation_probability_aware_me(benchmark, sequence):
    """Disabling the ME bias must hurt delivered quality, not size."""
    runs = benchmark.pedantic(
        lambda: {
            "on": _run(sequence, loss_penalty_per_pixel=8.0),
            "off": _run(sequence, loss_penalty_per_pixel=0.0),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, r.average_psnr_decoder, r.total_bad_pixels / 1e6,
         r.total_bytes / 1024, r.energy_joules]
        for label, r in runs.items()
    ]
    print(
        "\n"
        + format_table(
            ["prob-aware ME", "PSNR dB", "bad px M", "size KB", "energy J"],
            rows,
            title="Ablation: probability-aware motion estimation",
        )
    )
    # The mechanism under test: with the bias on, the motion vectors
    # chosen for inter macroblocks reference blocks with higher
    # probability of correctness.  (The end-to-end quality effect is
    # small and loss-pattern dependent, so the assertion targets the
    # mechanism, plus a no-material-harm bound on quality.)
    from repro.api import (
        Encoder,
        FrameType,
        MacroblockMode,
        PBPAIRConfig,
        PBPAIRStrategy,
        min_sigma_related,
    )

    class RecordingPBPAIR(PBPAIRStrategy):
        def __init__(self, config):
            super().__init__(config)
            self.reference_sigmas = []

        def frame_done(self, feedback):
            if (
                self.controller is not None
                and feedback.frame_type is FrameType.P
            ):
                inter = feedback.modes == MacroblockMode.INTER
                if inter.any():
                    sigmas = min_sigma_related(
                        self.controller.matrix.sigma, feedback.mvs
                    )
                    self.reference_sigmas.append(float(sigmas[inter].mean()))
            super().frame_done(feedback)

    mean_sigma = {}
    for label, penalty in (("on", 8.0), ("off", 0.0)):
        strategy = RecordingPBPAIR(
            PBPAIRConfig(
                intra_th=INTRA_TH, plr=PLR, loss_penalty_per_pixel=penalty
            )
        )
        Encoder(CodecConfig(), strategy).encode_sequence(sequence)
        mean_sigma[label] = sum(strategy.reference_sigmas) / len(
            strategy.reference_sigmas
        )
    assert mean_sigma["on"] > mean_sigma["off"]
    assert runs["on"].total_bad_pixels < runs["off"].total_bad_pixels * 1.15


def test_ablation_similarity_factor(benchmark, sequence):
    """Blunting the similarity factor makes refresh content-blind.

    A huge similarity scale maps every colocated SAD to similarity ~1,
    so sigma stops distinguishing active from static content; the same
    Intra_Th then produces far less refresh and worse delivered quality.
    """
    runs = benchmark.pedantic(
        lambda: {
            "informative": _run(sequence),
            "blunted": _run(sequence, similarity_scale=100000.0),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, r.average_psnr_decoder, r.total_bad_pixels / 1e6,
         100 * r.intra_fraction]
        for label, r in runs.items()
    ]
    print(
        "\n"
        + format_table(
            ["similarity", "PSNR dB", "bad px M", "intra %"],
            rows,
            title="Ablation: similarity factor (content awareness)",
        )
    )
    assert runs["informative"].intra_fraction > runs["blunted"].intra_fraction
    assert (
        runs["informative"].total_bad_pixels < runs["blunted"].total_bad_pixels
    )


def test_ablation_dct_arithmetic(benchmark, sequence):
    """Fixed-point vs float DCT: same rate within 2%, same quality."""
    runs = benchmark.pedantic(
        lambda: {
            "fixed-point": _run(
                sequence,
                config=SimulationConfig(
                    codec=CodecConfig(use_fixed_point_dct=True)
                ),
            ),
            "float": _run(
                sequence,
                config=SimulationConfig(
                    codec=CodecConfig(use_fixed_point_dct=False)
                ),
            ),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, r.average_psnr_decoder, r.total_bytes / 1024]
        for label, r in runs.items()
    ]
    print(
        "\n"
        + format_table(
            ["DCT", "PSNR dB", "size KB"],
            rows,
            title="Ablation: fixed-point vs float DCT",
        )
    )
    fixed, floating = runs["fixed-point"], runs["float"]
    assert abs(fixed.total_bytes - floating.total_bytes) / floating.total_bytes < 0.05
    assert abs(fixed.average_psnr_decoder - floating.average_psnr_decoder) < 0.5


def test_ablation_motion_search(benchmark, sequence):
    """Search strategy sets the ME cost structure.

    The diamond search's candidate count must be far below the fixed-
    cost searches while losing little quality; full search is the
    quality/energy upper bound.
    """
    def run_with(search, search_range):
        return _run(
            sequence,
            config=SimulationConfig(
                codec=CodecConfig(
                    motion_search=search, search_range=search_range
                )
            ),
        )

    runs = benchmark.pedantic(
        lambda: {
            "diamond": run_with("diamond", 15),
            "three-step": run_with("three-step", 15),
            "full(+/-7)": run_with("full", 7),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            label,
            r.average_psnr_decoder,
            r.counters.sad_blocks / r.counters.mode_decisions,
            r.energy_joules,
        ]
        for label, r in runs.items()
    ]
    print(
        "\n"
        + format_table(
            ["search", "PSNR dB", "SAD cands/MB", "energy J"],
            rows,
            title="Ablation: motion search strategy",
        )
    )
    per_mb = {
        label: r.counters.sad_blocks / r.counters.mode_decisions
        for label, r in runs.items()
    }
    assert per_mb["diamond"] < per_mb["three-step"] < per_mb["full(+/-7)"]
    assert (
        abs(
            runs["diamond"].average_psnr_decoder
            - runs["full(+/-7)"].average_psnr_decoder
        )
        < 3.0
    )


def test_ablation_concealment(benchmark, sequence):
    """Spatial concealment vs the paper's copy scheme under loss."""
    runs = benchmark.pedantic(
        lambda: {
            "copy": _run(sequence),
            "spatial": _run(sequence, concealment=SpatialConcealment()),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, r.average_psnr_decoder, r.total_bad_pixels / 1e6]
        for label, r in runs.items()
    ]
    print(
        "\n"
        + format_table(
            ["concealment", "PSNR dB", "bad px M"],
            rows,
            title="Ablation: decoder-side concealment",
        )
    )
    # Both must deliver watchable streams; no strict ordering asserted
    # (copy wins on static content, spatial on textured losses).
    for r in runs.values():
        assert r.average_psnr_decoder > 20.0


def test_ablation_air_selection(benchmark, sequence):
    """AIR's two selection policies (extension of the paper's AIR).

    SAD-ranked refresh (the paper's description) chases activity and can
    starve quiet regions; the MPEG-4 cyclic map guarantees every
    macroblock a refresh per sweep.  Which wins is content-dependent;
    both must clearly beat no resilience.
    """
    def run():
        out = {}
        for spec in ("NO", "AIR-24", "AIR-24-cyclic"):
            out[spec] = simulate(
                sequence,
                strategy=make_strategy(spec),
                loss_model=UniformLoss(plr=PLR, seed=31),
            )
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, r.average_psnr_decoder, r.total_bad_pixels / 1e6]
        for label, r in runs.items()
    ]
    print(
        "\n"
        + format_table(
            ["scheme", "PSNR dB", "bad px M"],
            rows,
            title="Ablation: AIR selection policy (SAD-ranked vs cyclic map)",
        )
    )
    assert runs["AIR-24"].total_bad_pixels < runs["NO"].total_bad_pixels
    assert (
        runs["AIR-24-cyclic"].total_bad_pixels < runs["NO"].total_bad_pixels
    )
