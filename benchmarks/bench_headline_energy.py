"""The paper's headline claim and the second-device check.

Abstract/Section 5: "our approach reduces energy consumption by 34%,
24% and 17% compared with AIR, GOP and PGOP schemes respectively, while
incurring only a small fluctuation in the compressed frame size."

This bench aggregates the Figure-5 runs (all three sequences, PLR=10%,
sizes matched to PGOP-3) into a single savings table per device.  The
absolute percentages depend on the device's ME-to-transform cost ratio
and on the content's motion profile, so the assertion is on *shape*:
positive savings against every baseline, ordered AIR > GOP >= PGOP,
and consistent across both PDAs.
"""

from __future__ import annotations

from benchmarks.conftest import FIG5_SCHEMES
from repro.api import format_table

SEQUENCES = ("foreman", "akiyo", "garden")
BASELINES = ("AIR-24", "GOP-3", "PGOP-3")
#: The paper's measured savings, for side-by-side comparison.
PAPER_SAVINGS = {"AIR-24": 34.0, "GOP-3": 24.0, "PGOP-3": 17.0}


def _totals(fig5_results, device_attr):
    return {
        scheme: sum(
            getattr(fig5_results[(seq, scheme)], device_attr)
            for seq in SEQUENCES
        )
        for scheme in FIG5_SCHEMES
    }


def _savings_rows(totals):
    rows = []
    for baseline in BASELINES:
        saved = 100.0 * (1.0 - totals["PBPAIR"] / totals[baseline])
        rows.append(
            [baseline, totals[baseline], totals["PBPAIR"], saved,
             PAPER_SAVINGS[baseline]]
        )
    return rows


def _check_shape(totals):
    for baseline in BASELINES:
        assert totals["PBPAIR"] < totals[baseline], (
            f"PBPAIR must use less total energy than {baseline}"
        )
    saving = {
        b: 1.0 - totals["PBPAIR"] / totals[b] for b in BASELINES
    }
    # Ordering: AIR (no ME skipped) leaves the most on the table.
    assert saving["AIR-24"] > saving["GOP-3"] - 0.02
    assert saving["AIR-24"] > saving["PGOP-3"] - 0.02
    # Meaningful magnitude: at least a few percent against AIR.
    assert saving["AIR-24"] > 0.08


def test_headline_savings_ipaq(benchmark, fig5_results):
    totals = benchmark(_totals, fig5_results, "energy_ipaq_j")
    print(
        "\n"
        + format_table(
            ["baseline", "baseline J", "PBPAIR J", "saved %", "paper %"],
            _savings_rows(totals),
            title="Headline: PBPAIR energy savings (iPAQ, 3 sequences)",
        )
    )
    # Per-sequence breakdown: the savings live where motion estimation
    # is expensive (foreman, garden); near-static akiyo has almost no
    # ME to save and dilutes the aggregate.
    rows = []
    for seq in SEQUENCES:
        row = [seq]
        for baseline in BASELINES:
            base = fig5_results[(seq, baseline)].energy_ipaq_j
            ours = fig5_results[(seq, "PBPAIR")].energy_ipaq_j
            row.append(100.0 * (1.0 - ours / base))
        rows.append(row)
    print(
        format_table(
            ["sequence", *(f"vs {b} %" for b in BASELINES)],
            rows,
            title="Per-sequence savings (iPAQ)",
        )
    )
    _check_shape(totals)


def test_energy_zaurus(benchmark, fig5_results):
    totals = benchmark(_totals, fig5_results, "energy_zaurus_j")
    print(
        "\n"
        + format_table(
            ["baseline", "baseline J", "PBPAIR J", "saved %", "paper %"],
            _savings_rows(totals),
            title="Headline: PBPAIR energy savings (Zaurus SL-5600)",
        )
    )
    _check_shape(totals)
    # Section 4.1: both devices show the same trend; relative savings
    # within a few points of each other.
    ipaq = _totals(fig5_results, "energy_ipaq_j")
    for baseline in BASELINES:
        zaurus_saving = 1.0 - totals["PBPAIR"] / totals[baseline]
        ipaq_saving = 1.0 - ipaq["PBPAIR"] / ipaq[baseline]
        assert abs(zaurus_saving - ipaq_saving) < 0.05
