"""Scenario-pack fleet sweep: determinism gate and percentile tables.

The fleet report (``repro fleet``) claims two things worth pinning in
CI.  First, determinism: a (scheme, pack, seed) cell delivers the same
per-frame values whether the grid runs serially or on a process pool —
every loss model draws from structural RNG keys, so worker scheduling
must not leak into results.  Second, coverage: every shipped pack runs
against the full Figure-5 scheme set and yields a sane percentile
table (finite PSNR percentiles, loss within [0, 1], resilience
counters that only fire in packs that enable protection).

The gated field is ``determinism_ratio``: the fraction of fleet cells
whose content digest matches between the serial and the pooled sweep
of the identical grid.  It is exact by construction, so CI gates it
at 1.0 with zero tolerance — any mismatch means scheduling or shared
state leaked into a simulation result, which is a correctness bug,
not host noise.

Entry points mirror the other benchmarks: run standalone with
``python benchmarks/bench_scenarios.py [--out BENCH_scenarios.json]``,
or under pytest for the structural smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.api import (
    FLEET_SCHEMES,
    RunnerOptions,
    available_packs,
    run_fleet,
)

DEFAULT_SEQUENCE = "foreman"
DEFAULT_FRAMES = 30
DEFAULT_REPLICAS = 2


def measure(
    n_frames: int = DEFAULT_FRAMES,
    sequence: str = DEFAULT_SEQUENCE,
    replicas: int = DEFAULT_REPLICAS,
    schemes=FLEET_SCHEMES,
    packs=None,
) -> dict:
    """Sweep scheme × pack serially and pooled, and diff the digests."""
    pack_names = tuple(packs if packs is not None else available_packs())
    kwargs = dict(
        schemes=tuple(schemes),
        packs=pack_names,
        sequence=sequence,
        n_frames=n_frames,
        replicas=replicas,
    )
    serial = run_fleet(
        **kwargs, options=RunnerOptions(jobs=1, use_cache=False)
    )
    pooled = run_fleet(
        **kwargs, options=RunnerOptions(jobs=2, use_cache=False)
    )

    matched = sum(
        1
        for cell in serial.cells
        if pooled.cell(cell.scheme, cell.pack).digest == cell.digest
    )
    protected = [
        cell
        for cell in serial.cells
        if cell.fec_recovered or cell.retransmissions or cell.deadline_drops
    ]

    return {
        "benchmark": "scenarios",
        "grid": {
            "schemes": list(serial.schemes),
            "packs": list(serial.packs),
            "sequence": sequence,
            "n_frames": n_frames,
            "replicas": replicas,
        },
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "cells": [cell.to_json() for cell in serial.cells],
        "fleet_digest": serial.digest,
        "pooled_digest": pooled.digest,
        "cells_total": len(serial.cells),
        "cells_matched": matched,
        "protected_cells": len(protected),
        "determinism_ratio": round(matched / len(serial.cells), 3),
        "note": (
            "determinism_ratio is the gated field: the fraction of "
            "(scheme, pack) cells whose content digest is identical "
            "between a serial and a pooled sweep of the same grid.  "
            "Every channel decision comes from structural RNG keys, so "
            "1.0 is exact on any host and gates with zero tolerance; "
            "the percentile tables in `cells` are informational"
        ),
    }


def test_scenarios_benchmark_smoke():
    """Structural check on a reduced grid (kept fast for CI's tier 1)."""
    record = measure(
        n_frames=6,
        sequence="akiyo",
        replicas=1,
        schemes=("GOP-3", "PBPAIR"),
        packs=("steady-uniform", "retx-lossy"),
    )
    assert record["benchmark"] == "scenarios"
    assert record["cells_total"] == 4
    assert record["determinism_ratio"] == 1.0
    assert record["fleet_digest"] == record["pooled_digest"]
    for cell in record["cells"]:
        assert 0.0 <= cell["loss_rate"] <= 1.0
        assert cell["psnr_db"]["p50"] is None or cell["psnr_db"]["p50"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sweep scheme × scenario pack and gate determinism"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON record to this path"
    )
    parser.add_argument(
        "--frames", type=int, default=DEFAULT_FRAMES,
        help=f"frames per cell (default: {DEFAULT_FRAMES})",
    )
    parser.add_argument(
        "--sequence", default=DEFAULT_SEQUENCE,
        help=f"clip to encode (default: {DEFAULT_SEQUENCE})",
    )
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_REPLICAS,
        help=f"channel seeds per cell (default: {DEFAULT_REPLICAS})",
    )
    args = parser.parse_args(argv)
    record = measure(
        n_frames=args.frames,
        sequence=args.sequence,
        replicas=args.replicas,
    )
    rendered = json.dumps(record, indent=2)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
