"""Raw encoder throughput per scheme (simulator performance, not a
paper figure).

These are classic pytest-benchmark timings: how fast this Python
implementation encodes QCIF frames under each resilience scheme.  They
guard against performance regressions in the vectorized codec paths and
document the relative wall-clock cost of each scheme's machinery.
"""

from __future__ import annotations

import pytest

from repro.api import CodecConfig, Encoder, foreman_like, make_strategy

N_FRAMES = 12


@pytest.fixture(scope="module")
def clip():
    return foreman_like(n_frames=N_FRAMES)


@pytest.mark.parametrize(
    "spec,kwargs",
    [
        ("NO", {}),
        ("GOP-3", {}),
        ("AIR-24", {}),
        ("PGOP-3", {}),
        ("PBPAIR", dict(intra_th=0.92, plr=0.1)),
    ],
    ids=["NO", "GOP-3", "AIR-24", "PGOP-3", "PBPAIR"],
)
def test_encode_throughput(benchmark, clip, spec, kwargs):
    def encode_clip():
        encoder = Encoder(CodecConfig(), make_strategy(spec, **kwargs))
        return sum(ef.size_bytes for ef in encoder.encode_sequence(clip))

    total_bytes = benchmark(encode_clip)
    assert total_bytes > 0


def test_decode_throughput(benchmark, clip):
    from repro.api import Decoder, Packetizer

    config = CodecConfig()
    encoder = Encoder(config, make_strategy("NO"))
    encoded = encoder.encode_sequence(clip)
    packetizer = Packetizer(config)
    frames_packets = [
        [p.payload for p in packetizer.packetize(ef)] for ef in encoded
    ]

    def decode_clip():
        decoder = Decoder(config)
        reference = None
        for index, fragments in enumerate(frames_packets):
            result = decoder.decode_frame(fragments, reference, index)
            reference = result.frame
        return reference

    final = benchmark(decode_clip)
    assert final is not None
