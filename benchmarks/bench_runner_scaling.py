"""Serial-vs-parallel scaling of the experiment runner.

The grid engine's value proposition is wall time: the paper's figures
are (scheme x PLR x seed) grids of independent simulations, and
:func:`repro.sim.runner.run_grid` should approach linear speedup in the
worker count on multi-core hosts.  This benchmark measures exactly
that — the same multi-seed grid at several worker counts, plus a fully
cached pass — and emits a JSON record so later PRs can track scaling
regressions (the committed baseline lives in ``BENCH_runner.json``).

Two entry points:

* ``python benchmarks/bench_runner_scaling.py [--out BENCH_runner.json]``
  runs the full measurement standalone and writes/prints the JSON.
* Under pytest the module contributes a quick correctness check
  (parallel outcomes identical to serial) on a reduced grid; wall-time
  assertions are deliberately absent because CI containers may expose
  a single core, where pool overhead makes parallel *slower*.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pickle
import platform
import sys
import tempfile
import time

from repro.api import (
    JobSpec,
    ResultCache,
    SimulationConfig,
    build_grid,
    run_grid,
)

#: Worker counts measured by the standalone run (1 is the serial base).
DEFAULT_WORKER_COUNTS = (1, 2, 4)
#: Replication grid: every scheme at every channel seed, one PLR.
DEFAULT_SCHEMES = ("NO", "GOP-3", "PGOP-3", "PBPAIR")
DEFAULT_SEEDS = (1, 2, 3, 4)
DEFAULT_FRAMES = 24
PLR = 0.1


def scaling_grid(
    n_frames: int = DEFAULT_FRAMES,
    schemes=DEFAULT_SCHEMES,
    seeds=DEFAULT_SEEDS,
) -> list[JobSpec]:
    return build_grid(
        schemes=schemes,
        plrs=(PLR,),
        channel_seeds=seeds,
        sequences=("akiyo",),
        n_frames=n_frames,
        config=SimulationConfig(),
        pbpair_kwargs={"intra_th": 0.9},
    )


def _timed_run(jobs, max_workers, cache=None) -> tuple[float, list]:
    start = time.perf_counter()
    outcomes = run_grid(jobs, max_workers=max_workers, cache=cache)
    elapsed = time.perf_counter() - start
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise RuntimeError(
            f"{len(failures)} grid cells failed: "
            f"{failures[0].error_type}: {failures[0].message}"
        )
    return elapsed, outcomes


def payload_sizes(jobs) -> dict:
    """Pickle payload sizes: one spec alone vs a whole chunked batch.

    The chunked fast path ships many specs per pool dispatch; pickle's
    memo stores the config objects they share only once, so the bytes
    per job in a batch should undercut a solo spec noticeably.
    """
    protocol = pickle.HIGHEST_PROTOCOL
    solo = len(pickle.dumps(jobs[0], protocol))
    batch = len(pickle.dumps(list(jobs), protocol))
    return {
        "jobspec_pickle_bytes": solo,
        "chunked_pickle_bytes_per_job": round(batch / len(jobs), 1),
        "chunk_dedup_ratio": round(solo * len(jobs) / batch, 2),
    }


def fan_out_metrics(jobs, workers: int) -> dict:
    """Measure the pool's fixed costs separately from simulation work.

    ``pool_spawn_s`` is process startup (creation until a first no-op
    round-trips); ``submit_roundtrip_s_per_job`` is the steady-state
    dispatch+IPC cost of one future carrying no work at all — the
    per-job tax that chunked submission amortizes.
    """
    record = dict(payload_sizes(jobs))
    record["workers"] = workers
    start = time.perf_counter()
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        pool.submit(os.getpid).result()
        record["pool_spawn_s"] = round(time.perf_counter() - start, 4)
        n = max(len(jobs) * 4, 64)
        start = time.perf_counter()
        futures = [pool.submit(os.getpid) for _ in range(n)]
        for future in futures:
            future.result()
        record["submit_roundtrip_s_per_job"] = round(
            (time.perf_counter() - start) / n, 6
        )
    return record


def measure(
    n_frames: int = DEFAULT_FRAMES,
    worker_counts=DEFAULT_WORKER_COUNTS,
    schemes=DEFAULT_SCHEMES,
    seeds=DEFAULT_SEEDS,
) -> dict:
    """Time the same grid at each worker count, then fully cached."""
    jobs = scaling_grid(n_frames=n_frames, schemes=schemes, seeds=seeds)
    timings: dict[str, float] = {}
    reference = None
    for workers in worker_counts:
        elapsed, outcomes = _timed_run(jobs, max_workers=workers)
        timings[str(workers)] = round(elapsed, 3)
        metrics = [o.result.average_psnr_decoder for o in outcomes]
        if reference is None:
            reference = metrics
        elif metrics != reference:
            raise RuntimeError(
                f"worker count {workers} changed results — the runner "
                "must be deterministic at any parallelism"
            )

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        _timed_run(jobs, max_workers=1, cache=cache)  # populate
        cached_s, _ = _timed_run(jobs, max_workers=1, cache=cache)

    serial_s = timings[str(worker_counts[0])]
    cpu_count = os.cpu_count() or 1
    ceilings = {
        workers: min(int(workers), cpu_count) for workers in timings
    }
    raw_speedups = {
        workers: round(serial_s / elapsed, 3) if elapsed else None
        for workers, elapsed in timings.items()
    }
    return {
        "benchmark": "runner_scaling",
        "grid": {
            "schemes": list(schemes),
            "channel_seeds": list(seeds),
            "plr": PLR,
            "sequence": "akiyo",
            "n_frames": n_frames,
            "cells": len(jobs),
        },
        "host": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "wall_time_s": timings,
        "speedup_vs_serial": {
            workers: (
                min(raw, float(ceilings[workers]))
                if raw is not None
                else None
            )
            for workers, raw in raw_speedups.items()
        },
        "speedup_vs_serial_raw": raw_speedups,
        "parallel_ceiling": ceilings,
        "note": (
            "speedup_vs_serial is clamped at min(workers, cpu_count) — "
            "a measured ratio above that ceiling is timer noise, not "
            "parallelism, so only the clamped value is gate-worthy; "
            "speedup_vs_serial_raw preserves the unclamped measurement"
        ),
        "fan_out": fan_out_metrics(jobs, workers=max(
            int(w) for w in timings
        )),
        "cached_pass_s": round(cached_s, 3),
        "cache_speedup": round(serial_s / cached_s, 1) if cached_s else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure serial-vs-parallel runner scaling"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON record to this path"
    )
    parser.add_argument(
        "--frames", type=int, default=DEFAULT_FRAMES, help="frames per cell"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKER_COUNTS),
        help="worker counts to measure (first one is the serial baseline)",
    )
    args = parser.parse_args(argv)
    record = measure(n_frames=args.frames, worker_counts=tuple(args.workers))
    rendered = json.dumps(record, indent=2)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


# --- pytest entry point ----------------------------------------------------


def test_parallel_grid_matches_serial_on_reduced_grid():
    """Determinism across worker counts, on a grid small enough for CI."""
    jobs = scaling_grid(n_frames=4, schemes=("NO", "PBPAIR"), seeds=(1, 2))
    serial_s, serial = _timed_run(jobs, max_workers=1)
    parallel_s, parallel = _timed_run(jobs, max_workers=2)
    for s, p in zip(serial, parallel):
        assert s.result.frames == p.result.frames
        assert s.result.counters == p.result.counters
    assert serial_s > 0 and parallel_s > 0


def test_chunked_batch_pickles_smaller_than_solo_specs():
    """The chunk payload must amortize the specs' shared config objects."""
    jobs = scaling_grid(n_frames=4, schemes=("NO", "PBPAIR"), seeds=(1, 2))
    sizes = payload_sizes(jobs)
    assert sizes["chunked_pickle_bytes_per_job"] < sizes["jobspec_pickle_bytes"]
    assert sizes["chunk_dedup_ratio"] > 1.0


def test_speedup_is_clamped_at_the_parallel_ceiling():
    """The gated ratio never exceeds min(workers, cpu_count)."""
    record = measure(
        n_frames=2, worker_counts=(1, 2), schemes=("NO",), seeds=(1,)
    )
    for workers, speedup in record["speedup_vs_serial"].items():
        assert speedup <= record["parallel_ceiling"][workers]
    assert set(record["speedup_vs_serial_raw"]) == set(
        record["speedup_vs_serial"]
    )


def test_cached_pass_returns_identical_results(tmp_path):
    jobs = scaling_grid(n_frames=4, schemes=("NO",), seeds=(1, 2))
    cache = ResultCache(tmp_path)
    _, cold = _timed_run(jobs, max_workers=1, cache=cache)
    _, warm = _timed_run(jobs, max_workers=1, cache=cache)
    assert all(o.from_cache for o in warm)
    for a, b in zip(cold, warm):
        assert a.result.frames == b.result.frames


if __name__ == "__main__":
    raise SystemExit(main())
