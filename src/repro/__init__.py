"""repro — reproduction of "Probability Based Power Aware Error Resilient
Coding" (Kim, Oh, Dutt, Nicolau, Venkatasubramanian; ICDCS 2005).

The package implements PBPAIR (Probability Based Power Aware Intra
Refresh) together with everything the paper's evaluation needs: an
H.263-style codec, the NO/GOP/AIR/PGOP baselines, a lossy packet
network, error concealment, an operation-counting energy model with PDA
device profiles, quality metrics, and an end-to-end simulation harness.

Quick start::

    from repro import (
        PBPAIRConfig, PBPAIRStrategy, UniformLoss, foreman_like, simulate,
    )

    video = foreman_like(n_frames=60)
    strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=0.35, plr=0.1))
    result = simulate(video, strategy, loss_model=UniformLoss(plr=0.1))
    print(result.average_psnr_decoder, result.energy_joules)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.codec import (
    ClosedLoopRateController,
    CodecConfig,
    Decoder,
    Encoder,
    FrameType,
    MacroblockMode,
    RateControlConfig,
    RateController,
    build_rate_controller,
)
from repro.concealment import (
    CopyConcealment,
    MotionRecoveryConcealment,
    SpatialConcealment,
)
from repro.core import (
    CorrectnessMatrix,
    EnergyBudgetController,
    FeedbackIntraThController,
    InstrumentedPBPAIRStrategy,
    PBPAIRConfig,
    PBPAIRController,
    approximate_sigma,
    intra_th_for_plr_change,
    refresh_interval,
    sigma_heatmap,
)
from repro.energy import (
    DEVICE_PROFILES,
    EnergyModel,
    IPAQ_H5555,
    OperationCounters,
    ZAURUS_SL5600,
)
from repro.metrics import (
    average_psnr,
    bad_pixel_count,
    bitrate_kbps,
    frame_size_stats,
    psnr,
    sequence_bad_pixels,
    ssim,
)
from repro.network import (
    BandwidthDeadlineLoss,
    BitErrorChannel,
    Channel,
    GilbertElliottLoss,
    NoLoss,
    Packetizer,
    ScriptedLoss,
    TraceLoss,
    UniformLoss,
)
from repro.resilience import (
    AIRStrategy,
    GOPStrategy,
    NoResilience,
    PBPAIRStrategy,
    PGOPStrategy,
    build_strategy,
)
from repro.sim import (
    RateMatchSpec,
    SimulationConfig,
    SimulationResult,
    calibrate_intra_th,
    encode_only,
    match_intra_th_to_size,
    simulate,
)
from repro.video import (
    Frame,
    SEQUENCE_GENERATORS,
    VideoSequence,
    akiyo_like,
    foreman_like,
    garden_like,
)

def _resolve_version() -> str:
    """The package version, single-sourced from packaging metadata.

    Installed (even ``pip install -e``): the version comes from
    ``importlib.metadata``, i.e. whatever ``pyproject.toml`` said at
    install time.  Running straight from a source checkout via
    ``PYTHONPATH=src``: fall back to reading ``pyproject.toml`` itself,
    so there is exactly one place the number is written.
    """
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:
        pass
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        import tomllib

        with pyproject.open("rb") as handle:
            return str(tomllib.load(handle)["project"]["version"])
    except (ImportError, OSError, KeyError, ValueError):
        return "0.0.0+unknown"


__version__ = _resolve_version()

__all__ = [
    "CodecConfig",
    "Encoder",
    "Decoder",
    "FrameType",
    "MacroblockMode",
    "RateController",
    "RateControlConfig",
    "ClosedLoopRateController",
    "build_rate_controller",
    "RateMatchSpec",
    "CopyConcealment",
    "MotionRecoveryConcealment",
    "SpatialConcealment",
    "CorrectnessMatrix",
    "PBPAIRConfig",
    "PBPAIRController",
    "approximate_sigma",
    "refresh_interval",
    "intra_th_for_plr_change",
    "FeedbackIntraThController",
    "EnergyBudgetController",
    "InstrumentedPBPAIRStrategy",
    "sigma_heatmap",
    "OperationCounters",
    "EnergyModel",
    "IPAQ_H5555",
    "ZAURUS_SL5600",
    "DEVICE_PROFILES",
    "psnr",
    "average_psnr",
    "bad_pixel_count",
    "sequence_bad_pixels",
    "frame_size_stats",
    "bitrate_kbps",
    "ssim",
    "Channel",
    "BitErrorChannel",
    "BandwidthDeadlineLoss",
    "Packetizer",
    "NoLoss",
    "UniformLoss",
    "ScriptedLoss",
    "TraceLoss",
    "GilbertElliottLoss",
    "NoResilience",
    "GOPStrategy",
    "AIRStrategy",
    "PGOPStrategy",
    "PBPAIRStrategy",
    "build_strategy",
    "SimulationConfig",
    "SimulationResult",
    "simulate",
    "encode_only",
    "match_intra_th_to_size",
    "calibrate_intra_th",
    "Frame",
    "VideoSequence",
    "foreman_like",
    "akiyo_like",
    "garden_like",
    "SEQUENCE_GENERATORS",
    "__version__",
]
