"""Experiment harness: sweeps, scheme comparisons, operating-point matching.

The paper's comparisons are run at *matched compression ratio*: "We
choose Intra_Th that gives similar compression ratio with PGOP-3, GOP-3,
and AIR-24" (Figure 5) and schemes "that generate a similar size of
encoded bitstream" (Figure 6).  Two ways to get there:

* :class:`RateMatchSpec` — the first-class path: every scheme encodes
  under the same closed-loop :class:`~repro.codec.rate.RateControlConfig`
  and the controller *drives* each one to the target bitrate in a
  single pass.  No probing, no bisection.
* :func:`calibrate_intra_th` — the legacy offline path: find the
  ``Intra_Th`` whose encoded size matches a reference by bisection (the
  intra-macroblock count, and with it the encoded size, grows
  monotonically with the threshold).  Kept for matched-*size* studies;
  its old name, :func:`match_intra_th_to_size`, is a deprecated alias.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.core.pbpair import PBPAIRConfig
from repro.network.loss import LossModel
from repro.resilience.base import ResilienceStrategy
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.resilience.registry import build_strategy
from repro.sim.pipeline import (
    SimulationConfig,
    SimulationResult,
    encode_only,
    encode_phase,
    simulate,
)
from repro.codec.rate import RateControlConfig
from repro.sim.runner import (
    EncodedStreamCache,
    JobSpec,
    ResultCache,
    encode_stream_key,
    run_simulations,
    sequence_digest,
    stable_hash,
)
from repro.video.frame import VideoSequence


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of a comparison grid.

    ``strategy_factory`` builds a *fresh* strategy per run (strategies
    are stateful); ``loss_factory`` likewise for the channel.
    """

    label: str
    strategy_factory: Callable[[], ResilienceStrategy]
    loss_factory: Optional[Callable[[], LossModel]] = None


@dataclass(frozen=True)
class ExperimentResult:
    """A labelled simulation outcome."""

    label: str
    result: SimulationResult


def run_experiment(
    sequence: VideoSequence,
    spec: ExperimentSpec,
    config: Optional[SimulationConfig] = None,
) -> ExperimentResult:
    """Run one spec against one sequence."""
    loss_model = spec.loss_factory() if spec.loss_factory else None
    result = simulate(
        sequence,
        spec.strategy_factory(),
        loss_model=loss_model,
        config=config,
    )
    return ExperimentResult(label=spec.label, result=result)


def sweep(
    sequence: VideoSequence,
    specs: Iterable[ExperimentSpec],
    config: Optional[SimulationConfig] = None,
    max_workers: Optional[int] = 1,
) -> list[ExperimentResult]:
    """Run a list of specs against one sequence, preserving order.

    ``max_workers`` fans the runs across a process pool via
    :func:`repro.sim.runner.run_simulations`; strategies and loss
    models are instantiated here (fresh per run) and shipped to the
    workers as initial-state objects, so parallel results are
    bit-identical to serial ones.  Specs whose factories do not pickle
    (e.g. lambdas) silently run serially instead.
    """
    specs = list(specs)
    tasks = [
        (
            sequence,
            spec.strategy_factory(),
            spec.loss_factory() if spec.loss_factory else None,
            config,
        )
        for spec in specs
    ]
    results = run_simulations(tasks, max_workers=max_workers)
    return [
        ExperimentResult(label=spec.label, result=result)
        for spec, result in zip(specs, results)
    ]


def total_encoded_bytes(
    sequence: VideoSequence,
    strategy: ResilienceStrategy,
    config: Optional[SimulationConfig] = None,
) -> int:
    """Encoded size of the sequence under a scheme (no channel)."""
    encoded, _ = encode_only(sequence, strategy, config)
    return sum(frame.size_bytes for frame in encoded)


class CalibrationResult(float):
    """The matched ``Intra_Th``, annotated with calibration-cost stats.

    A plain ``float`` to every existing consumer (arithmetic,
    ``"{:.3f}"`` formatting, equality with the bisection midpoints all
    behave normally) — plus an honest account of the encode work the
    caches saved: ``probes`` bisection probes asked for a size, only
    ``unique_encodes`` of them actually ran the encoder.
    """

    probes: int
    unique_encodes: int
    cache_hits: int

    def __new__(
        cls,
        value: float,
        probes: int = 0,
        unique_encodes: int = 0,
        cache_hits: int = 0,
    ) -> "CalibrationResult":
        self = super().__new__(cls, value)
        self.probes = probes
        self.unique_encodes = unique_encodes
        self.cache_hits = cache_hits
        return self

    @property
    def saved_encodes(self) -> int:
        """Probes that cost a lookup instead of an encoder run."""
        return self.probes - self.unique_encodes


def calibrate_intra_th(
    sequence: VideoSequence,
    target_bytes: int,
    plr: float,
    config: Optional[SimulationConfig] = None,
    pbpair_kwargs: Optional[dict] = None,
    tolerance: float = 0.03,
    max_iterations: int = 8,
    cache: Optional[ResultCache] = None,
    stream_cache: Optional[EncodedStreamCache] = None,
) -> CalibrationResult:
    """Find the ``Intra_Th`` whose encoded size matches ``target_bytes``.

    Bisection over [0, 1]; the encoded size grows with the threshold
    (more macroblocks fall below it and are intra-coded).  Stops when
    within ``tolerance`` (relative) of the target or after
    ``max_iterations`` encodes, returning the best threshold seen as a
    :class:`CalibrationResult` — a float that also reports how many
    probes ran and how many encodes the caches saved.

    The bisection itself is inherently sequential (each probe depends
    on the previous outcome), but each probe's encoded size is pure in
    its parameters: with a ``cache``, probes are memoized on disk under
    a content hash of (sequence pixels, threshold, PBPAIR knobs, codec
    config), so re-calibrating the same clip is free.  With a
    ``stream_cache``, each probe's full :class:`EncodedStream` is kept
    under the *grid runner's* encode key — the stream encoded while
    probing the winning threshold is the very stream the subsequent
    PBPAIR grid cells replay, so calibration's encode work is not
    thrown away.

    The paper does the same calibration to compare schemes at equal
    compression ratio.  Calibrate on the clip you will measure: a
    prefix is cheaper but transfers poorly when the content is
    non-stationary (FOREMAN's camera pan starts in the final third).
    """
    if target_bytes <= 0:
        raise ValueError("target_bytes must be positive")
    if not 0.0 < tolerance < 1.0:
        raise ValueError("tolerance must be in (0, 1)")
    if max_iterations < 1:
        raise ValueError(
            f"max_iterations must be >= 1, got {max_iterations}: bisection "
            "needs at least one encode to have a threshold to return"
        )
    kwargs = dict(pbpair_kwargs or {})
    digest = (
        sequence_digest(sequence)
        if cache is not None or stream_cache is not None
        else None
    )
    stats = {"probes": 0, "encodes": 0, "hits": 0}

    def encode_probe(th: float) -> int:
        """The probe's encoder run — through the stream cache if given."""
        strategy = PBPAIRStrategy(PBPAIRConfig(intra_th=th, plr=plr, **kwargs))
        if stream_cache is None:
            stats["encodes"] += 1
            return total_encoded_bytes(sequence, strategy, config)
        key = encode_stream_key(
            sequence=digest,
            scheme="PBPAIR",
            strategy_kwargs={"plr": plr, "intra_th": th, **kwargs},
            config=config or SimulationConfig(),
        )
        stream, reused = stream_cache.get_or_encode(
            key, lambda: encode_phase(sequence, strategy, config=config)
        )
        stats["hits" if reused else "encodes"] += 1
        return stream.total_bytes

    def probe_size(th: float) -> int:
        stats["probes"] += 1
        if cache is not None:
            key = stable_hash(
                {
                    "kind": "encode-size",
                    "sequence": digest,
                    "intra_th": th,
                    "plr": plr,
                    "pbpair_kwargs": kwargs,
                    "config": config or SimulationConfig(),
                }
            )
            hit = cache.get(key)
            if hit is not None:
                stats["hits"] += 1
                return int(hit)
        size = encode_probe(th)
        if cache is not None:
            cache.put(key, size)
        return size

    lo, hi = 0.0, 1.0
    best_th, best_error = 0.5, float("inf")
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        size = probe_size(mid)
        error = abs(size - target_bytes) / target_bytes
        if error < best_error:
            best_th, best_error = mid, error
        if error <= tolerance:
            break
        if size < target_bytes:
            lo = mid
        else:
            hi = mid
    return CalibrationResult(
        best_th,
        probes=stats["probes"],
        unique_encodes=stats["encodes"],
        cache_hits=stats["hits"],
    )


def match_intra_th_to_size(*args: Any, **kwargs: Any) -> CalibrationResult:
    """Deprecated alias of :func:`calibrate_intra_th`.

    .. deprecated::
        Matched-*bitrate* comparisons no longer probe at all — build a
        :class:`RateMatchSpec` (or pass ``--target-kbps`` to the CLI)
        and the closed-loop controller drives every scheme to the
        target in one pass.  For the remaining matched-*size* studies,
        call :func:`calibrate_intra_th`; it is the same bisection with
        the same signature and the same :class:`CalibrationResult`
        return.  This alias will be removed in a future release.
    """
    warnings.warn(
        "match_intra_th_to_size is deprecated: use RateMatchSpec / "
        "--target-kbps for matched-bitrate comparisons, or "
        "calibrate_intra_th for matched-size calibration",
        DeprecationWarning,
        stacklevel=2,
    )
    return calibrate_intra_th(*args, **kwargs)


@dataclass(frozen=True)
class RateMatchSpec:
    """A matched-bitrate comparison: every scheme, one kbps target.

    The first-class replacement for the ``match_intra_th_to_size``
    probe loop on the Figure 5/6 path: instead of bisecting PBPAIR's
    ``Intra_Th`` until its file size matches a reference encode, every
    scheme carries the same closed-loop
    :class:`~repro.codec.rate.RateControlConfig` and the controller
    steers each one to the target bitrate *while encoding*.  Zero
    probe encodes; fairness by construction.

    Attributes:
        target_kbps: the shared bitrate target.  Must sit inside every
            scheme's feasible band — intra-heavy schemes (GOP, AIR)
            have a bitrate floor at QP 31 that a too-low target cannot
            get under.
        schemes: figure-style scheme specs to compare.
        fps: frame rate the target divides by.
        sensitivity: controller aggressiveness (see
            :class:`~repro.codec.rate.RateControlConfig`).
        base_qp: first-frame quantizer for every scheme.
    """

    target_kbps: float
    schemes: tuple[str, ...] = ("NO", "GOP-3", "AIR-24", "PGOP-3", "PBPAIR")
    fps: float = 30.0
    sensitivity: float = 1.0
    base_qp: int = 6

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("need at least one scheme")
        object.__setattr__(self, "schemes", tuple(self.schemes))
        # Delegate numeric validation to the config itself.
        self.rate_config()

    def rate_config(self) -> RateControlConfig:
        """The one rate-control config every scheme encodes under."""
        return RateControlConfig(
            target_kbps=self.target_kbps,
            fps=self.fps,
            sensitivity=self.sensitivity,
            base_qp=self.base_qp,
        )

    def jobs(
        self,
        *,
        plr: float,
        channel_seed: int = 0,
        sequence: str = "foreman",
        n_frames: int = 90,
        config: Optional[SimulationConfig] = None,
        pbpair_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> list[JobSpec]:
        """One rate-controlled :class:`JobSpec` per scheme, in order.

        Ready for :func:`repro.sim.runner.run_grid`: every cell shares
        the channel conditions and the rate config, so the grid *is*
        the matched-bitrate comparison.
        """
        rate = self.rate_config()
        return [
            JobSpec(
                scheme=scheme,
                plr=plr,
                channel_seed=channel_seed,
                sequence=sequence,
                n_frames=n_frames,
                config=config or SimulationConfig(),
                pbpair_kwargs=dict(pbpair_kwargs or {})
                if scheme.upper().startswith("PBPAIR")
                else {},
                rate=rate,
            )
            for scheme in self.schemes
        ]


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean/stddev of a metric over several independent channel seeds."""

    label: str
    seeds: tuple[int, ...]
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / len(self.values)
        )


def replicate(
    sequence: VideoSequence,
    strategy_factory: Callable[[], ResilienceStrategy],
    loss_factory: Callable[[int], LossModel],
    metric: Callable[[SimulationResult], float],
    seeds: Sequence[int],
    label: str = "run",
    config: Optional[SimulationConfig] = None,
    max_workers: Optional[int] = 1,
) -> ReplicationSummary:
    """Run the same experiment over several channel seeds.

    Single-seed results can flatter or punish a scheme by luck of which
    frames the channel drops; reporting mean and spread over seeds is
    how the comparison benches should be read.  ``loss_factory`` maps a
    seed to a fresh loss model; ``strategy_factory`` builds a fresh
    (stateful) strategy per run.

    The per-seed runs are independent, so ``max_workers`` fans them
    across a process pool (:func:`repro.sim.runner.run_simulations`);
    the ``metric`` callable is applied in *this* process, so it may be
    a lambda.  Seed order and values are identical at any worker count.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    tasks = [
        (sequence, strategy_factory(), loss_factory(seed), config)
        for seed in seeds
    ]
    results = run_simulations(tasks, max_workers=max_workers)
    values = [float(metric(result)) for result in results]
    return ReplicationSummary(
        label=label, seeds=tuple(int(s) for s in seeds), values=tuple(values)
    )


def comparison_specs(
    scheme_specs: Sequence[str],
    loss_factory: Optional[Callable[[], LossModel]] = None,
    pbpair_kwargs: Optional[dict] = None,
) -> list[ExperimentSpec]:
    """Build the paper's figure legends ("NO", "PBPAIR", "PGOP-3", ...).

    ``pbpair_kwargs`` configures the PBPAIR entries (``intra_th``,
    ``plr``, ...); the baselines take their parameter from the spec
    string itself.
    """
    kwargs = dict(pbpair_kwargs or {})
    specs = []
    for spec_string in scheme_specs:
        if spec_string.upper().startswith("PBPAIR"):
            factory = _pbpair_factory(kwargs)
        else:
            factory = _baseline_factory(spec_string)
        specs.append(
            ExperimentSpec(
                label=spec_string,
                strategy_factory=factory,
                loss_factory=loss_factory,
            )
        )
    return specs


def _pbpair_factory(kwargs: dict) -> Callable[[], ResilienceStrategy]:
    def factory() -> ResilienceStrategy:
        return build_strategy("PBPAIR", **kwargs)

    return factory


def _baseline_factory(spec_string: str) -> Callable[[], ResilienceStrategy]:
    def factory() -> ResilienceStrategy:
        return build_strategy(spec_string)

    return factory
