"""The end-to-end video communication pipeline of the paper's Figure 1.

``simulate`` runs: video source -> encoder (with a resilience strategy)
-> packetizer -> lossy channel -> depacketizer -> decoder -> concealment
-> quality metrics, collecting per-frame records and whole-run
aggregates (energy, file size, PSNR, bad pixels) — everything the
paper's evaluation section plots.

The pipeline is split into two first-class phases:

* :func:`encode_phase` — source -> encoder -> packetizer.  Fully
  deterministic given (sequence, strategy, codec config, encode-stage
  faults); its output, an :class:`EncodedStream`, is what a sender
  would hand to the network and is safe to cache and replay against
  many channel realizations.
* :func:`transmit_phase` — channel -> depacketizer -> decoder ->
  concealment -> metrics.  Consumes an :class:`EncodedStream` plus the
  source sequence (for PSNR/bad-pixel ground truth) and everything
  channel-side: loss model, bit errors, channel/decoder-stage faults.

``simulate`` composes the two under one trace root, so existing callers
see identical results and identical span structure; grid runners call
the phases separately to encode once per operating point and fan out
only the transmit work (see :mod:`repro.sim.runner`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.rate import AnyRateController
from repro.codec.types import CodecConfig, EncodedFrame, FrameType
from repro.concealment.base import ConcealmentStrategy
from repro.concealment.copy import CopyConcealment
from repro.energy.counters import OperationCounters
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.profiles import DeviceProfile, IPAQ_H5555
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.metrics.bad_pixels import (
    DEFAULT_BAD_PIXEL_THRESHOLD,
    bad_pixel_count,
)
from repro.metrics.bitrate import FrameSizeStats, frame_size_stats
from repro.metrics.psnr import average_psnr, psnr
from repro.network.biterror import BitErrorChannel
from repro.network.channel import Channel, ChannelLog
from repro.network.loss import LossModel, NoLoss
from repro.network.packet import DEFAULT_MTU, Depacketizer, Packet, Packetizer
from repro.obs import get_tracer
from repro.resilience.base import ResilienceStrategy
from repro.video.frame import VideoSequence


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulation run needs besides source and scheme.

    Attributes:
        codec: codec parameters.
        mtu: packet size limit (paper: one packet per frame up to MTU).
        device: energy cost profile for the encoder-energy report.
        bad_pixel_threshold: grey-level threshold of the bad-pixel
            metric.
    """

    codec: CodecConfig = field(default_factory=CodecConfig)
    mtu: int = DEFAULT_MTU
    device: DeviceProfile = IPAQ_H5555
    bad_pixel_threshold: int = DEFAULT_BAD_PIXEL_THRESHOLD


@dataclass(frozen=True)
class FrameRecord:
    """Per-frame observables (one row of Figure 6's series)."""

    frame_index: int
    frame_type: FrameType
    size_bytes: int
    intra_mbs: int
    me_skipped_mbs: int
    packets_sent: int
    packets_lost: int
    psnr_encoder: float  # loss-free, encoder-side reconstruction
    psnr_decoder: float  # after the lossy channel and concealment
    bad_pixels: int
    damaged_fragments: int = 0  # fragments the decoder concealed


@dataclass(frozen=True)
class StreamFrame:
    """One frame of an :class:`EncodedStream`: packets + sender stats.

    This is the lean, transmit-facing slice of
    :class:`~repro.codec.types.EncodedFrame`: the packetized bitstream
    and the per-frame numbers the final report needs.  Encoder-side
    reconstructions, macroblock decisions and bit offsets stay behind —
    they are observability, not payload, and dropping them keeps the
    stream cheap to pickle into caches and across process pools.
    """

    frame_index: int
    frame_type: FrameType
    size_bytes: int
    bits: int
    intra_mbs: int
    me_skipped_mbs: int
    psnr_reconstructed: float
    packets: tuple[Packet, ...]


@dataclass(frozen=True)
class EncodedStream:
    """The sender's half of a run: everything :func:`encode_phase` made.

    Deterministic given (sequence, strategy, codec config, encode-stage
    faults) — which is exactly the contract that lets
    :class:`repro.sim.runner.EncodedStreamCache` share one stream across
    every grid cell that differs only in channel conditions.
    """

    sequence_name: str
    strategy_name: str
    width: int
    height: int
    frames: tuple[StreamFrame, ...]
    counters: OperationCounters
    fault_events: tuple[FaultEvent, ...] = ()

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.frames)


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one end-to-end run."""

    sequence_name: str
    strategy_name: str
    frames: tuple[FrameRecord, ...]
    counters: OperationCounters
    energy: EnergyBreakdown
    channel_log: ChannelLog
    size_stats: FrameSizeStats
    decoder_counters: Optional[OperationCounters] = None
    decoder_energy: Optional[EnergyBreakdown] = None
    fault_events: tuple[FaultEvent, ...] = ()

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def total_bytes(self) -> int:
        return self.size_stats.total_bytes

    @property
    def energy_joules(self) -> float:
        return self.energy.total_joules

    @property
    def decoder_energy_joules(self) -> float:
        """Receive-side decode energy (0 when not tracked)."""
        return self.decoder_energy.total_joules if self.decoder_energy else 0.0

    @property
    def average_psnr_decoder(self) -> float:
        return average_psnr(f.psnr_decoder for f in self.frames)

    @property
    def average_psnr_encoder(self) -> float:
        return average_psnr(f.psnr_encoder for f in self.frames)

    @property
    def total_bad_pixels(self) -> int:
        return sum(f.bad_pixels for f in self.frames)

    @property
    def total_damaged_fragments(self) -> int:
        """Fragments whose damage the decoder concealed across the run."""
        return sum(f.damaged_fragments for f in self.frames)

    @property
    def intra_mb_total(self) -> int:
        return sum(f.intra_mbs for f in self.frames)

    @property
    def intra_fraction(self) -> float:
        mb_per_frame = None
        total = 0
        for f in self.frames:
            total += f.intra_mbs
        mb_per_frame = self.counters.mode_decisions
        return total / mb_per_frame if mb_per_frame else 0.0

    def psnr_series(self) -> list[float]:
        """Per-frame decoder PSNR (Figure 6a's y-values)."""
        return [f.psnr_decoder for f in self.frames]

    def size_series(self) -> list[int]:
        """Per-frame encoded size in bytes (Figure 6b's y-values)."""
        return [f.size_bytes for f in self.frames]

    def recovery_times(self, dip_db: float = 2.0) -> list[int]:
        """Frames needed to recover after each loss-affected frame.

        For every frame that lost at least one packet, count the frames
        until decoder PSNR climbs back to within ``dip_db`` of the
        encoder-side (loss-free) PSNR.  The paper's "faster error
        recovery" claim (Section 4.2) is this quantity, smaller = better.

        The scan for each event is censored at the next loss event (or
        the end of the run): without censoring, closely spaced events
        would each be charged for the whole pile-up and the metric would
        no longer describe a single event's recovery.
        """
        events = [r.frame_index for r in self.frames if r.packets_lost > 0]
        times = []
        for position, start in enumerate(events):
            horizon = (
                events[position + 1]
                if position + 1 < len(events)
                else self.frames[-1].frame_index + 1
            )
            recovered = horizon
            for later in self.frames[start:horizon]:
                if later.psnr_decoder >= later.psnr_encoder - dip_db:
                    recovered = later.frame_index
                    break
            times.append(recovered - start)
        return times


def encode_only(
    sequence: VideoSequence,
    strategy: ResilienceStrategy,
    config: Optional[SimulationConfig] = None,
) -> tuple[list[EncodedFrame], OperationCounters]:
    """Run just the encoder (for size/energy studies without a channel)."""
    config = config or SimulationConfig()
    encoder = Encoder(config.codec, strategy)
    encoded = encoder.encode_sequence(sequence)
    return encoded, encoder.counters


def _as_injector(
    faults: Optional[Union[FaultPlan, FaultInjector]],
) -> Optional[FaultInjector]:
    if isinstance(faults, FaultInjector):
        return faults
    if faults is not None and faults:
        return FaultInjector(faults)
    return None


def _check_dimensions(sequence: VideoSequence, config: SimulationConfig) -> None:
    codec = config.codec
    if sequence.width != codec.width or sequence.height != codec.height:
        raise ValueError(
            f"sequence {sequence.width}x{sequence.height} does not match "
            f"codec {codec.width}x{codec.height}"
        )


def _encode_stream(
    sequence: VideoSequence,
    strategy: ResilienceStrategy,
    encoder: Encoder,
    packetizer: Packetizer,
    rate_controller: Optional[AnyRateController],
    injector: Optional[FaultInjector],
) -> EncodedStream:
    """The sender loop: encode and packetize every frame.

    Opens per-frame ``encode_frame``/``packetize`` spans but no root
    span, and takes its (already constructed) pipeline objects from the
    caller — callers own the trace root and the setup cost, so the
    phases compose under one ``simulate`` span whether they run
    together or apart, with stage spans accounting for the root's
    entire duration.
    """
    tracer = get_tracer()
    events_before = len(injector.events) if injector is not None else 0

    frames: list[StreamFrame] = []
    for frame in sequence:
        if rate_controller is not None:
            # Closed-loop controllers jointly steer PBPAIR's Intra_Th
            # alongside the quantizer; the classic open-loop controller
            # has no such hook, hence the duck-typed dispatch.
            steer = getattr(rate_controller, "steer_strategy", None)
            if steer is not None:
                steer(strategy)
            encoder.quantizer = rate_controller.quantizer
        with tracer.span("encode_frame") as encode_span:
            encoded = encoder.encode_frame(frame)
            encode_span.add(
                bits=encoded.stats.bits,
                intra_mbs=encoded.stats.intra_mbs,
                me_skipped_mbs=encoded.stats.me_skipped_mbs,
            )
        if rate_controller is not None:
            observe_frame = getattr(rate_controller, "observe_frame", None)
            if observe_frame is not None:
                observe_frame(encoded)
            else:
                rate_controller.observe(encoded.stats.bits)
        if injector is not None:
            payload = injector.apply_to_payload(encoded.payload, frame.index)
            if payload is not encoded.payload:
                encoded = replace(encoded, payload=payload)
        with tracer.span("packetize") as packet_span:
            packets = packetizer.packetize(encoded)
            packet_span.add(packets=len(packets))
            frames.append(
                StreamFrame(
                    frame_index=frame.index,
                    frame_type=encoded.frame_type,
                    size_bytes=encoded.size_bytes,
                    bits=encoded.stats.bits,
                    intra_mbs=encoded.stats.intra_mbs,
                    me_skipped_mbs=encoded.stats.me_skipped_mbs,
                    psnr_reconstructed=encoded.stats.psnr_reconstructed,
                    packets=tuple(packets),
                )
            )

    return EncodedStream(
        sequence_name=sequence.name,
        strategy_name=strategy.name,
        width=sequence.width,
        height=sequence.height,
        frames=tuple(frames),
        counters=encoder.counters,
        fault_events=(
            tuple(injector.events[events_before:])
            if injector is not None
            else ()
        ),
    )


def _transmit_stream(
    stream: EncodedStream,
    sequence: VideoSequence,
    config: SimulationConfig,
    decoder: Decoder,
    depacketizer: Depacketizer,
    channel: Channel,
    energy_model: EnergyModel,
    concealment: ConcealmentStrategy,
    bit_errors: Optional[BitErrorChannel],
    injector: Optional[FaultInjector],
) -> SimulationResult:
    """The receiver loop: channel, decode, conceal, measure, report.

    Like :func:`_encode_stream` this opens only stage spans and takes
    its constructed pipeline objects from the caller; the ``report``
    span wrapping result construction stays a direct child of whatever
    root the caller holds, keeping stage coverage honest.
    """
    tracer = get_tracer()
    events_before = len(injector.events) if injector is not None else 0

    records: list[FrameRecord] = []
    decoder_reference: Optional[np.ndarray] = None
    decoder_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None

    for frame, sent in zip(sequence, stream.frames):
        with tracer.span("channel"):
            delivered = channel.transmit(list(sent.packets))
            if bit_errors is not None:
                delivered = bit_errors.corrupt(delivered)
            if injector is not None:
                delivered = injector.apply_to_packets(delivered, frame.index)
        with tracer.span("decode_frame"):
            fragments = depacketizer.group_by_frame(
                delivered, frame.index + 1
            )[frame.index]
            if injector is not None:
                fragments = injector.apply_to_fragments(
                    fragments, frame.index
                )
            result = decoder.decode_frame(
                fragments,
                decoder_reference,
                expected_index=frame.index,
                reference_chroma=decoder_chroma,
            )
        with tracer.span("conceal"):
            repaired = concealment.conceal(
                result.frame,
                result.received,
                decoder_reference,
                mvs_pixels=result.mvs_pixels,
                modes=result.modes,
            )
        decoder_reference = repaired
        # Lost chroma macroblocks already hold the reference copy (the
        # paper's copy concealment); spatial repair is luma-only.
        decoder_chroma = result.chroma

        with tracer.span("metrics"):
            records.append(
                FrameRecord(
                    frame_index=frame.index,
                    frame_type=sent.frame_type,
                    size_bytes=sent.size_bytes,
                    intra_mbs=sent.intra_mbs,
                    me_skipped_mbs=sent.me_skipped_mbs,
                    packets_sent=len(sent.packets),
                    # Duplicate-packet faults can deliver more
                    # packets than were sent; loss never goes
                    # negative.
                    packets_lost=max(len(sent.packets) - len(delivered), 0),
                    psnr_encoder=sent.psnr_reconstructed,
                    psnr_decoder=psnr(frame.pixels, repaired),
                    bad_pixels=bad_pixel_count(
                        frame.pixels, repaired, config.bad_pixel_threshold
                    ),
                    damaged_fragments=result.damaged_fragments,
                )
            )

    with tracer.span("report"):
        return SimulationResult(
            sequence_name=stream.sequence_name,
            strategy_name=stream.strategy_name,
            frames=tuple(records),
            counters=stream.counters,
            energy=energy_model.breakdown(stream.counters),
            channel_log=channel.log,
            size_stats=frame_size_stats([r.size_bytes for r in records]),
            decoder_counters=decoder.counters,
            decoder_energy=energy_model.breakdown(decoder.counters),
            fault_events=tuple(stream.fault_events)
            + (
                tuple(injector.events[events_before:])
                if injector is not None
                else ()
            ),
        )


def encode_phase(
    sequence: VideoSequence,
    strategy: ResilienceStrategy,
    config: Optional[SimulationConfig] = None,
    rate_controller: Optional[AnyRateController] = None,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
) -> EncodedStream:
    """Phase 1 of Figure 1: source -> encoder -> packetizer.

    Deterministic given its arguments: the same sequence, strategy,
    codec config and encode-stage fault sub-plan always produce a
    byte-identical :class:`EncodedStream`, in any process.  That
    contract is what the grid runner's stream cache keys on.

    Args:
        sequence: source video.
        strategy: error-resilience scheme for the encoder.
        config: codec/network/energy parameters.
        rate_controller: optional frame-level quantizer control.
        faults: optional fault plan; only its ``encode``-stage specs
            act here (bytes flipped in the sender's frame buffer before
            packetization), and their events ride the returned stream's
            ``fault_events``.
    """
    config = config or SimulationConfig()
    _check_dimensions(sequence, config)
    return _encode_stream(
        sequence,
        strategy,
        Encoder(config.codec, strategy),
        Packetizer(config.codec, mtu=config.mtu),
        rate_controller,
        _as_injector(faults),
    )


def _build_channel(
    loss_model: Optional[LossModel],
    scenario,
    scenario_seed: int,
):
    """One channel-side entry point for both the plain and scenario paths.

    ``scenario=None`` constructs exactly what the pipeline always
    built — ``Channel(loss_model or NoLoss())`` — so existing runs stay
    bit-identical.  With a :class:`~repro.scenarios.pack.ScenarioPack`
    the channel becomes a
    :class:`~repro.scenarios.channel.ScenarioChannel` (same duck-typed
    interface), and ``loss_model`` must be unset: the pack declares the
    loss models.
    """
    if scenario is not None:
        if loss_model is not None:
            raise ValueError(
                "pass either loss_model or scenario, not both "
                "(a scenario pack declares its own loss models)"
            )
        from repro.scenarios.channel import ScenarioChannel

        return ScenarioChannel(scenario, seed=scenario_seed)
    return Channel(loss_model if loss_model is not None else NoLoss())


def transmit_phase(
    stream: EncodedStream,
    sequence: VideoSequence,
    loss_model: Optional[LossModel] = None,
    config: Optional[SimulationConfig] = None,
    concealment: Optional[ConcealmentStrategy] = None,
    bit_errors: Optional[BitErrorChannel] = None,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    scenario=None,
    scenario_seed: int = 0,
) -> SimulationResult:
    """Phase 2 of Figure 1: channel -> depacketize -> decode -> metrics.

    Replays one channel realization against a prepared
    :class:`EncodedStream`.  The source ``sequence`` must be the one
    the stream was encoded from — it supplies the pixels that decoder
    PSNR and bad-pixel counts are measured against.

    Args:
        stream: output of :func:`encode_phase` (possibly cache-shared).
        sequence: the stream's source video (metric ground truth).
        loss_model: channel behaviour; defaults to a lossless channel.
        config: codec/network/energy parameters — must match the
            encode-side config for the decode to be meaningful.
        concealment: decoder-side repair; defaults to the paper's copy
            scheme.
        bit_errors: optional bit-flipping corruption applied to
            delivered packets (VLC desynchronization stress).
        faults: optional fault plan; ``channel``-stage faults hit the
            delivered packet stream after ``bit_errors``,
            ``decoder_input`` faults hit the depacketized fragments.
            The stream's own encode-stage events are prepended to
            ``result.fault_events`` so the run's log stays complete.
        scenario: optional :class:`~repro.scenarios.pack.ScenarioPack`;
            mutually exclusive with ``loss_model``.  The channel then
            follows the pack's segment timeline (loss models, bandwidth
            caps, FEC/retransmission wrappers).
        scenario_seed: channel seed for the scenario's loss models
            (each segment derives its own stream structurally from it).
    """
    config = config or SimulationConfig()
    _check_dimensions(sequence, config)
    if len(sequence) != stream.n_frames:
        raise ValueError(
            f"sequence has {len(sequence)} frames but the encoded stream "
            f"carries {stream.n_frames}"
        )
    return _transmit_stream(
        stream,
        sequence,
        config,
        Decoder(config.codec),
        Depacketizer(),
        _build_channel(loss_model, scenario, scenario_seed),
        EnergyModel(config.device),
        concealment if concealment is not None else CopyConcealment(),
        bit_errors,
        _as_injector(faults),
    )


def simulate(
    sequence: VideoSequence,
    strategy: ResilienceStrategy,
    loss_model: Optional[LossModel] = None,
    config: Optional[SimulationConfig] = None,
    concealment: Optional[ConcealmentStrategy] = None,
    rate_controller: Optional[AnyRateController] = None,
    bit_errors: Optional[BitErrorChannel] = None,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    scenario=None,
    scenario_seed: int = 0,
) -> SimulationResult:
    """Run the full Figure-1 pipeline and collect every metric.

    Composes :func:`encode_phase` and :func:`transmit_phase` under one
    ``simulate`` trace root.  Results are identical to running the two
    phases by hand — every stateful pipeline object (packetizer
    sequence numbers, channel RNG, fault RNG streams) sees the same
    per-frame call order either way.

    Args:
        sequence: source video.
        strategy: error-resilience scheme for the encoder.
        loss_model: channel behaviour; defaults to a lossless channel.
        config: codec/network/energy parameters.
        concealment: decoder-side repair; defaults to the paper's copy
            scheme.
        rate_controller: optional frame-level quantizer control; when
            given, each frame is encoded at the controller's QP and its
            size fed back (the paper's "independent control mechanism").
        bit_errors: optional bit-flipping corruption applied to
            delivered packets (VLC desynchronization stress).
        faults: optional deterministic fault plan (or a prepared
            :class:`~repro.faults.FaultInjector`): encode-stage faults
            hit the bitstream before packetization, channel-stage
            faults hit the delivered packet stream after ``bit_errors``,
            decoder-input faults hit the depacketized fragments.  Every
            injection lands in ``result.fault_events`` and, when
            tracing, in the obs trace.
        scenario: optional :class:`~repro.scenarios.pack.ScenarioPack`;
            mutually exclusive with ``loss_model`` (see
            :func:`transmit_phase`).
        scenario_seed: channel seed for the scenario's loss models.
    """
    config = config or SimulationConfig()
    _check_dimensions(sequence, config)
    injector = _as_injector(faults)
    tracer = get_tracer()

    # Construct every pipeline object before the trace root opens, so
    # the root's duration is simulation work that the stage spans fully
    # account for (the coverage bar in tests/test_obs.py).
    encoder = Encoder(config.codec, strategy)
    packetizer = Packetizer(config.codec, mtu=config.mtu)
    decoder = Decoder(config.codec)
    depacketizer = Depacketizer()
    channel = _build_channel(loss_model, scenario, scenario_seed)
    energy_model = EnergyModel(config.device)
    concealment = concealment if concealment is not None else CopyConcealment()

    with tracer.span("simulate") as run_span:
        stream = _encode_stream(
            sequence, strategy, encoder, packetizer, rate_controller, injector
        )
        run_span.add(frames=stream.n_frames)
        tracer.metrics.gauge("sim.frames", stream.n_frames)
        return _transmit_stream(
            stream,
            sequence,
            config,
            decoder,
            depacketizer,
            channel,
            energy_model,
            concealment,
            bit_errors,
            injector,
        )
