"""The end-to-end video communication pipeline of the paper's Figure 1.

``simulate`` runs: video source -> encoder (with a resilience strategy)
-> packetizer -> lossy channel -> depacketizer -> decoder -> concealment
-> quality metrics, collecting per-frame records and whole-run
aggregates (energy, file size, PSNR, bad pixels) — everything the
paper's evaluation section plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.rate import RateController
from repro.codec.types import CodecConfig, EncodedFrame, FrameType
from repro.concealment.base import ConcealmentStrategy
from repro.concealment.copy import CopyConcealment
from repro.energy.counters import OperationCounters
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.profiles import DeviceProfile, IPAQ_H5555
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.metrics.bad_pixels import (
    DEFAULT_BAD_PIXEL_THRESHOLD,
    bad_pixel_count,
)
from repro.metrics.bitrate import FrameSizeStats, frame_size_stats
from repro.metrics.psnr import average_psnr, psnr
from repro.network.biterror import BitErrorChannel
from repro.network.channel import Channel, ChannelLog
from repro.network.loss import LossModel, NoLoss
from repro.network.packet import DEFAULT_MTU, Depacketizer, Packetizer
from repro.obs import get_tracer
from repro.resilience.base import ResilienceStrategy
from repro.video.frame import VideoSequence


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulation run needs besides source and scheme.

    Attributes:
        codec: codec parameters.
        mtu: packet size limit (paper: one packet per frame up to MTU).
        device: energy cost profile for the encoder-energy report.
        bad_pixel_threshold: grey-level threshold of the bad-pixel
            metric.
    """

    codec: CodecConfig = field(default_factory=CodecConfig)
    mtu: int = DEFAULT_MTU
    device: DeviceProfile = IPAQ_H5555
    bad_pixel_threshold: int = DEFAULT_BAD_PIXEL_THRESHOLD


@dataclass(frozen=True)
class FrameRecord:
    """Per-frame observables (one row of Figure 6's series)."""

    frame_index: int
    frame_type: FrameType
    size_bytes: int
    intra_mbs: int
    me_skipped_mbs: int
    packets_sent: int
    packets_lost: int
    psnr_encoder: float  # loss-free, encoder-side reconstruction
    psnr_decoder: float  # after the lossy channel and concealment
    bad_pixels: int
    damaged_fragments: int = 0  # fragments the decoder concealed


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one end-to-end run."""

    sequence_name: str
    strategy_name: str
    frames: tuple[FrameRecord, ...]
    counters: OperationCounters
    energy: EnergyBreakdown
    channel_log: ChannelLog
    size_stats: FrameSizeStats
    decoder_counters: Optional[OperationCounters] = None
    decoder_energy: Optional[EnergyBreakdown] = None
    fault_events: tuple[FaultEvent, ...] = ()

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def total_bytes(self) -> int:
        return self.size_stats.total_bytes

    @property
    def energy_joules(self) -> float:
        return self.energy.total_joules

    @property
    def decoder_energy_joules(self) -> float:
        """Receive-side decode energy (0 when not tracked)."""
        return self.decoder_energy.total_joules if self.decoder_energy else 0.0

    @property
    def average_psnr_decoder(self) -> float:
        return average_psnr(f.psnr_decoder for f in self.frames)

    @property
    def average_psnr_encoder(self) -> float:
        return average_psnr(f.psnr_encoder for f in self.frames)

    @property
    def total_bad_pixels(self) -> int:
        return sum(f.bad_pixels for f in self.frames)

    @property
    def total_damaged_fragments(self) -> int:
        """Fragments whose damage the decoder concealed across the run."""
        return sum(f.damaged_fragments for f in self.frames)

    @property
    def intra_mb_total(self) -> int:
        return sum(f.intra_mbs for f in self.frames)

    @property
    def intra_fraction(self) -> float:
        mb_per_frame = None
        total = 0
        for f in self.frames:
            total += f.intra_mbs
        mb_per_frame = self.counters.mode_decisions
        return total / mb_per_frame if mb_per_frame else 0.0

    def psnr_series(self) -> list[float]:
        """Per-frame decoder PSNR (Figure 6a's y-values)."""
        return [f.psnr_decoder for f in self.frames]

    def size_series(self) -> list[int]:
        """Per-frame encoded size in bytes (Figure 6b's y-values)."""
        return [f.size_bytes for f in self.frames]

    def recovery_times(self, dip_db: float = 2.0) -> list[int]:
        """Frames needed to recover after each loss-affected frame.

        For every frame that lost at least one packet, count the frames
        until decoder PSNR climbs back to within ``dip_db`` of the
        encoder-side (loss-free) PSNR.  The paper's "faster error
        recovery" claim (Section 4.2) is this quantity, smaller = better.

        The scan for each event is censored at the next loss event (or
        the end of the run): without censoring, closely spaced events
        would each be charged for the whole pile-up and the metric would
        no longer describe a single event's recovery.
        """
        events = [r.frame_index for r in self.frames if r.packets_lost > 0]
        times = []
        for position, start in enumerate(events):
            horizon = (
                events[position + 1]
                if position + 1 < len(events)
                else self.frames[-1].frame_index + 1
            )
            recovered = horizon
            for later in self.frames[start:horizon]:
                if later.psnr_decoder >= later.psnr_encoder - dip_db:
                    recovered = later.frame_index
                    break
            times.append(recovered - start)
        return times


def encode_only(
    sequence: VideoSequence,
    strategy: ResilienceStrategy,
    config: Optional[SimulationConfig] = None,
) -> tuple[list[EncodedFrame], OperationCounters]:
    """Run just the encoder (for size/energy studies without a channel)."""
    config = config or SimulationConfig()
    encoder = Encoder(config.codec, strategy)
    encoded = encoder.encode_sequence(sequence)
    return encoded, encoder.counters


def simulate(
    sequence: VideoSequence,
    strategy: ResilienceStrategy,
    loss_model: Optional[LossModel] = None,
    config: Optional[SimulationConfig] = None,
    concealment: Optional[ConcealmentStrategy] = None,
    rate_controller: Optional[RateController] = None,
    bit_errors: Optional[BitErrorChannel] = None,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
) -> SimulationResult:
    """Run the full Figure-1 pipeline and collect every metric.

    Args:
        sequence: source video.
        strategy: error-resilience scheme for the encoder.
        loss_model: channel behaviour; defaults to a lossless channel.
        config: codec/network/energy parameters.
        concealment: decoder-side repair; defaults to the paper's copy
            scheme.
        rate_controller: optional frame-level quantizer control; when
            given, each frame is encoded at the controller's QP and its
            size fed back (the paper's "independent control mechanism").
        bit_errors: optional bit-flipping corruption applied to
            delivered packets (VLC desynchronization stress).
        faults: optional deterministic fault plan (or a prepared
            :class:`~repro.faults.FaultInjector`): channel-stage faults
            hit the delivered packet stream after ``bit_errors``,
            decoder-input faults hit the depacketized fragments.  Every
            injection lands in ``result.fault_events`` and, when
            tracing, in the obs trace.
    """
    config = config or SimulationConfig()
    loss_model = loss_model if loss_model is not None else NoLoss()
    concealment = concealment if concealment is not None else CopyConcealment()
    injector: Optional[FaultInjector] = None
    if isinstance(faults, FaultInjector):
        injector = faults
    elif faults is not None and faults:
        injector = FaultInjector(faults)

    codec = config.codec
    if sequence.width != codec.width or sequence.height != codec.height:
        raise ValueError(
            f"sequence {sequence.width}x{sequence.height} does not match "
            f"codec {codec.width}x{codec.height}"
        )

    encoder = Encoder(codec, strategy)
    decoder = Decoder(codec)
    packetizer = Packetizer(codec, mtu=config.mtu)
    depacketizer = Depacketizer()
    channel = Channel(loss_model)
    energy_model = EnergyModel(config.device)
    tracer = get_tracer()

    records: list[FrameRecord] = []
    decoder_reference: Optional[np.ndarray] = None
    decoder_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None

    with tracer.span("simulate") as run_span:
        for frame in sequence:
            if rate_controller is not None:
                encoder.quantizer = rate_controller.quantizer
            with tracer.span("encode_frame") as encode_span:
                encoded = encoder.encode_frame(frame)
                encode_span.add(
                    bits=encoded.stats.bits,
                    intra_mbs=encoded.stats.intra_mbs,
                    me_skipped_mbs=encoded.stats.me_skipped_mbs,
                )
            if rate_controller is not None:
                rate_controller.observe(encoded.stats.bits)
            with tracer.span("packetize") as packet_span:
                packets = packetizer.packetize(encoded)
                packet_span.add(packets=len(packets))
            with tracer.span("channel"):
                delivered = channel.transmit(packets)
                if bit_errors is not None:
                    delivered = bit_errors.corrupt(delivered)
                if injector is not None:
                    delivered = injector.apply_to_packets(
                        delivered, frame.index
                    )
            with tracer.span("decode_frame"):
                fragments = depacketizer.group_by_frame(
                    delivered, frame.index + 1
                )[frame.index]
                if injector is not None:
                    fragments = injector.apply_to_fragments(
                        fragments, frame.index
                    )
                result = decoder.decode_frame(
                    fragments,
                    decoder_reference,
                    expected_index=frame.index,
                    reference_chroma=decoder_chroma,
                )
            with tracer.span("conceal"):
                repaired = concealment.conceal(
                    result.frame,
                    result.received,
                    decoder_reference,
                    mvs_pixels=result.mvs_pixels,
                    modes=result.modes,
                )
            decoder_reference = repaired
            # Lost chroma macroblocks already hold the reference copy (the
            # paper's copy concealment); spatial repair is luma-only.
            decoder_chroma = result.chroma

            with tracer.span("metrics"):
                records.append(
                    FrameRecord(
                        frame_index=frame.index,
                        frame_type=encoded.frame_type,
                        size_bytes=encoded.size_bytes,
                        intra_mbs=encoded.stats.intra_mbs,
                        me_skipped_mbs=encoded.stats.me_skipped_mbs,
                        packets_sent=len(packets),
                        # Duplicate-packet faults can deliver more
                        # packets than were sent; loss never goes
                        # negative.
                        packets_lost=max(len(packets) - len(delivered), 0),
                        psnr_encoder=encoded.stats.psnr_reconstructed,
                        psnr_decoder=psnr(frame.pixels, repaired),
                        bad_pixels=bad_pixel_count(
                            frame.pixels, repaired, config.bad_pixel_threshold
                        ),
                        damaged_fragments=result.damaged_fragments,
                    )
                )

        run_span.add(frames=len(records))
        tracer.metrics.gauge("sim.frames", len(records))
        with tracer.span("report"):
            return SimulationResult(
                sequence_name=sequence.name,
                strategy_name=strategy.name,
                frames=tuple(records),
                counters=encoder.counters,
                energy=energy_model.breakdown(encoder.counters),
                channel_log=channel.log,
                size_stats=frame_size_stats([r.size_bytes for r in records]),
                decoder_counters=decoder.counters,
                decoder_energy=energy_model.breakdown(decoder.counters),
                fault_events=(
                    tuple(injector.events) if injector is not None else ()
                ),
            )
