"""Plain-text reporting of figure-shaped data.

The benchmark harness prints each figure as rows/series identical in
structure to the paper's plots, so paper-vs-measured comparison is a
visual diff of two small tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width table."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, values: Sequence[float], precision: int = 2
) -> str:
    """Render one named numeric series on a single line."""
    rendered = " ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: {rendered}"


def format_csv(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as RFC-4180-ish CSV for downstream plotting.

    Floats keep full precision (unlike the display table); fields
    containing commas, quotes or newlines are quoted and inner quotes
    doubled.
    """

    def escape(cell: object) -> str:
        text = repr(cell) if isinstance(cell, float) else str(cell)
        if any(ch in text for ch in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(escape(h) for h in headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        lines.append(",".join(escape(cell) for cell in row))
    return "\n".join(lines) + "\n"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
