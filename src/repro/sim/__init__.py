"""End-to-end simulation: source -> encoder -> channel -> decoder -> metrics.

:func:`repro.sim.pipeline.simulate` wires the whole Figure-1 system
together and returns a :class:`repro.sim.pipeline.SimulationResult` with
everything the paper's figures plot; :mod:`repro.sim.experiment` runs
parameter sweeps over schemes/sequences/channels; :mod:`repro.sim.runner`
fans declarative job grids across a process pool with on-disk result
caching; :mod:`repro.sim.report` prints figure-shaped tables.
"""

from repro.sim.pipeline import (
    SimulationConfig,
    SimulationResult,
    FrameRecord,
    simulate,
    encode_only,
)
from repro.sim.experiment import (
    ExperimentSpec,
    ExperimentResult,
    ReplicationSummary,
    run_experiment,
    sweep,
    replicate,
    match_intra_th_to_size,
)
from repro.sim.runner import (
    JobFailure,
    JobResult,
    JobSpec,
    ResultCache,
    build_grid,
    run_grid,
    run_job,
    run_simulations,
    stable_hash,
)
from repro.sim.report import format_table, format_series, format_csv

__all__ = [
    "JobSpec",
    "JobResult",
    "JobFailure",
    "ResultCache",
    "build_grid",
    "run_grid",
    "run_job",
    "run_simulations",
    "stable_hash",
    "SimulationConfig",
    "SimulationResult",
    "FrameRecord",
    "simulate",
    "encode_only",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "sweep",
    "match_intra_th_to_size",
    "ReplicationSummary",
    "replicate",
    "format_table",
    "format_series",
    "format_csv",
]
