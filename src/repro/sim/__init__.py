"""End-to-end simulation: source -> encoder -> channel -> decoder -> metrics.

:func:`repro.sim.pipeline.simulate` wires the whole Figure-1 system
together and returns a :class:`repro.sim.pipeline.SimulationResult` with
everything the paper's figures plot; :mod:`repro.sim.experiment` runs
parameter sweeps over schemes/sequences/channels; :mod:`repro.sim.runner`
fans declarative job grids across a process pool with on-disk result
caching; :mod:`repro.sim.report` prints figure-shaped tables.
"""

from repro.sim.pipeline import (
    EncodedStream,
    SimulationConfig,
    SimulationResult,
    FrameRecord,
    StreamFrame,
    simulate,
    encode_phase,
    transmit_phase,
    encode_only,
)
from repro.sim.experiment import (
    CalibrationResult,
    ExperimentSpec,
    ExperimentResult,
    RateMatchSpec,
    ReplicationSummary,
    run_experiment,
    sweep,
    replicate,
    calibrate_intra_th,
    match_intra_th_to_size,
)
from repro.sim.runner import (
    EncodedStreamCache,
    JobFailure,
    JobResult,
    JobSpec,
    ResultCache,
    build_grid,
    encode_content_hash,
    encode_stream_key,
    run_grid,
    run_job,
    run_simulations,
    stable_hash,
)
from repro.sim.report import format_table, format_series, format_csv

__all__ = [
    "JobSpec",
    "JobResult",
    "JobFailure",
    "ResultCache",
    "EncodedStreamCache",
    "build_grid",
    "encode_content_hash",
    "encode_stream_key",
    "run_grid",
    "run_job",
    "run_simulations",
    "stable_hash",
    "SimulationConfig",
    "SimulationResult",
    "FrameRecord",
    "EncodedStream",
    "StreamFrame",
    "simulate",
    "encode_phase",
    "transmit_phase",
    "encode_only",
    "CalibrationResult",
    "ExperimentSpec",
    "ExperimentResult",
    "RateMatchSpec",
    "run_experiment",
    "sweep",
    "calibrate_intra_th",
    "match_intra_th_to_size",
    "ReplicationSummary",
    "replicate",
    "format_table",
    "format_series",
    "format_csv",
]
