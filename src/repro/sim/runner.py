"""Parallel experiment execution with on-disk result caching.

The paper's headline results (Figures 5-6) are grids of
``(scheme x PLR x channel seed x sequence)`` simulations.  Every cell is
independent and deterministic given its parameters, which makes the grid
embarrassingly parallel *and* cacheable — this module exploits both:

* :class:`JobSpec` is a *declarative*, picklable description of one
  grid cell: the scheme spec string (the figures' own vocabulary, see
  :mod:`repro.resilience.registry`), the channel parameters, the source
  sequence by name, and the codec/device configuration.  Everything a
  worker process needs to rebuild the experiment from scratch.
* :func:`run_grid` fans a list of specs across a
  :class:`concurrent.futures.ProcessPoolExecutor`, with per-job error
  capture (a crashed cell comes back as a :class:`JobFailure` record
  instead of killing the sweep) and an optional per-job timeout.
* :class:`ResultCache` stores each cell's
  :class:`~repro.sim.pipeline.SimulationResult` on disk under a stable
  content hash of its spec, so re-running a sweep only computes the
  cells whose parameters changed.

Determinism: a job's outcome depends only on its spec (synthetic
sequences, the channel and the codec are all explicitly seeded), so the
same grid produces bit-identical results at any worker count — the
serial path is the ``max_workers=1`` special case of the same code, not
a separate implementation.

Observability: passing ``trace_dir`` to :func:`run_grid` runs every
executed cell under a per-job :class:`repro.obs.Tracer`; workers write
``job-*.jsonl`` trace files (span records cannot ride the result pickle
without coupling results to tracing) and the parent merges them into
``trace_dir/trace.jsonl`` once the grid completes.

:func:`run_simulations` is the lower-level sibling used by
:func:`repro.sim.experiment.sweep` and
:func:`~repro.sim.experiment.replicate`: it parallelizes already-built
(sequence, strategy, loss model) triples, falling back to serial
execution when the objects cannot cross a process boundary (e.g. lambda
factories) or the platform has no working process pool.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.faults import FaultInjector, FaultPlan
from repro.faults.inject import InjectedWorkerCrash
from repro.network.loss import UniformLoss
from repro.obs import Tracer, merge_job_traces, use_tracer, write_trace
from repro.resilience.registry import build_strategy
from repro.sim.pipeline import SimulationConfig, SimulationResult, simulate
from repro.video.frame import VideoSequence
from repro.video.synthetic import (
    SEQUENCE_GENERATORS,
    SyntheticConfig,
    generate_sequence,
)

#: Bumped whenever the simulation pipeline changes in a way that makes
#: previously cached results stale (new metrics, changed semantics).
#: Version 2: FrameRecord.damaged_fragments + SimulationResult.fault_events.
CACHE_SCHEMA_VERSION = 2

#: Schema version of the JSON failure manifest written by
#: :meth:`GridManifest.write`.
MANIFEST_SCHEMA_VERSION = 1

#: Default on-disk cache location (overridable per call and via the CLI).
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


# ---------------------------------------------------------------------------
# Stable content hashing
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-serializable primitives, deterministically.

    Dataclasses become sorted dicts tagged with their class name (two
    configs of different types never collide), mappings are
    key-sorted, and tuples/sets become lists.  Floats pass through:
    ``json`` renders them with ``repr``, which round-trips exactly.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        tagged = {"__class__": type(value).__name__}
        for f in dataclasses.fields(value):
            tagged[f.name] = _canonical(getattr(value, f.name))
        return tagged
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for content hashing"
    )


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``payload``.

    Stable across processes and sessions (no ``PYTHONHASHSEED``
    dependence), which is what makes it usable as an on-disk cache key.
    """
    canonical = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def sequence_digest(sequence: VideoSequence) -> str:
    """Content hash of a sequence's pixel data (for non-declarative jobs).

    Used when the caller holds a :class:`VideoSequence` object rather
    than a (name, n_frames) description — e.g. the calibration loop of
    :func:`repro.sim.experiment.match_intra_th_to_size`.
    """
    digest = hashlib.sha256()
    digest.update(sequence.name.encode("utf-8"))
    for frame in sequence:
        digest.update(frame.pixels.tobytes())
        if frame.cb is not None:
            digest.update(frame.cb.tobytes())
        if frame.cr is not None:
            digest.update(frame.cr.tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One declarative cell of an experiment grid.

    Every field is plain data, so the spec pickles cheaply to worker
    processes and hashes stably for the result cache.  The worker
    rebuilds the whole experiment from it: sequence (by registry name,
    or from an explicit :class:`SyntheticConfig`), strategy (from the
    figure-style spec string), channel (uniform loss at ``plr`` with
    ``channel_seed``) and pipeline configuration.

    Attributes:
        scheme: figure-style strategy spec ("NO", "GOP-3", "AIR-24",
            "PGOP-3", "PBPAIR").
        plr: channel packet loss rate; also PBPAIR's assumed ``alpha``
            unless ``pbpair_kwargs`` overrides it.
        channel_seed: loss-pattern seed — the replication axis.
        sequence: synthetic clip name from
            :data:`repro.video.synthetic.SEQUENCE_GENERATORS`, or a
            free-form label when ``synthetic`` is given.
        n_frames: clip length (ignored when ``synthetic`` is given,
            which carries its own ``n_frames``).
        synthetic: explicit sequence parameters; takes precedence over
            the ``sequence``-name lookup.  This keeps the spec fully
            declarative for non-registry clips (tests use tiny frames).
        granularity: channel loss granularity, ``"frame"`` (paper) or
            ``"packet"``.
        config: pipeline configuration (codec, MTU, device profile).
        pbpair_kwargs: extra :class:`repro.core.pbpair.PBPAIRConfig`
            knobs for PBPAIR schemes (``intra_th``, ...).
        faults: optional deterministic :class:`repro.faults.FaultPlan`.
            Pipeline-stage faults are injected inside the simulation
            (and change the result, so the plan is part of the cache
            key); runner-stage faults afflict the worker executing the
            job.
    """

    scheme: str
    plr: float = 0.1
    channel_seed: int = 0
    sequence: str = "foreman"
    n_frames: int = 90
    synthetic: Optional[SyntheticConfig] = None
    granularity: str = "frame"
    config: SimulationConfig = field(default_factory=SimulationConfig)
    pbpair_kwargs: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.plr <= 1.0:
            raise ValueError(f"plr must be in [0, 1], got {self.plr}")
        if self.n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {self.n_frames}")
        if self.synthetic is None and self.sequence not in SEQUENCE_GENERATORS:
            known = ", ".join(sorted(SEQUENCE_GENERATORS))
            raise ValueError(
                f"unknown sequence {self.sequence!r} (known: {known}); "
                "pass synthetic=SyntheticConfig(...) for custom clips"
            )
        # Normalize to a plain dict so equality and hashing see the same
        # content regardless of the mapping type the caller used.
        object.__setattr__(self, "pbpair_kwargs", dict(self.pbpair_kwargs))

    @property
    def is_pbpair(self) -> bool:
        return self.scheme.strip().upper() == "PBPAIR"

    def content_hash(self) -> str:
        """Stable cache key: every parameter that can change the result."""
        return stable_hash(
            {
                "kind": "simulate",
                "cache_schema": CACHE_SCHEMA_VERSION,
                "scheme": self.scheme.strip().upper(),
                "plr": self.plr,
                "channel_seed": self.channel_seed,
                "sequence": self.sequence,
                "n_frames": None if self.synthetic else self.n_frames,
                "synthetic": self.synthetic,
                "granularity": self.granularity,
                "config": self.config,
                "pbpair_kwargs": self.pbpair_kwargs,
                "faults": self.faults,
            }
        )


@dataclass(frozen=True)
class JobResult:
    """A completed grid cell.

    ``attempts`` counts executions including retries (1 = first try
    succeeded); ``injected_faults`` labels the runner-stage faults a
    :class:`~repro.faults.FaultPlan` fired against this job
    (``"worker_crash@1"`` = crashed on attempt 1), so a degraded-but-
    recovered cell is distinguishable from a clean one.
    """

    spec: JobSpec
    result: SimulationResult
    wall_time_s: float
    from_cache: bool = False
    attempts: int = 1
    injected_faults: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class JobFailure:
    """A grid cell that raised (or timed out) instead of finishing.

    Captured per cell so one bad parameter combination does not kill an
    hours-long sweep; the traceback text travels back from the worker
    as a string because live traceback objects do not pickle.

    ``attempts`` counts executions including retries; ``quarantined``
    marks a job that kept failing until its retry budget ran out (a
    *poison job* — the runner stopped feeding it to workers).
    """

    spec: JobSpec
    error_type: str
    message: str
    traceback_text: str = ""
    wall_time_s: float = 0.0
    attempts: int = 1
    quarantined: bool = False
    injected_faults: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` bounds total executions of one job (1 = no
    retries, the default — existing callers keep their semantics).
    The delay before attempt ``n+1`` is::

        backoff_s * backoff_factor**(n-1) * (1 + jitter * u)

    where ``u`` in [0, 1) is derived from a stable hash of the job key
    and the attempt number — jittered like production retry loops (so
    simultaneous retries do not stampede), yet exactly reproducible.
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError("backoff parameters must be non-negative")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * u)


def build_grid(
    schemes: Sequence[str],
    plrs: Sequence[float],
    channel_seeds: Sequence[int],
    sequences: Sequence[str] = ("foreman",),
    n_frames: int = 90,
    config: Optional[SimulationConfig] = None,
    pbpair_kwargs: Optional[Mapping[str, Any]] = None,
    granularity: str = "frame",
) -> list[JobSpec]:
    """Cartesian product of the paper's four grid axes, in a fixed order.

    Iteration order is sequence-major, then scheme, PLR, seed — stable,
    so result lists line up across runs and worker counts.
    """
    jobs = []
    for sequence in sequences:
        for scheme in schemes:
            for plr in plrs:
                for seed in channel_seeds:
                    jobs.append(
                        JobSpec(
                            scheme=scheme,
                            plr=plr,
                            channel_seed=seed,
                            sequence=sequence,
                            n_frames=n_frames,
                            config=config or SimulationConfig(),
                            pbpair_kwargs=dict(pbpair_kwargs or {}),
                        )
                    )
    return jobs


# ---------------------------------------------------------------------------
# Failure manifest: machine-readable partial-grid completion record
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ManifestEntry:
    """One grid cell's outcome, flattened for the JSON manifest."""

    index: int
    scheme: str
    plr: float
    channel_seed: int
    sequence: str
    content_hash: str
    status: str  # "ok" | "cached" | "failed"
    attempts: int
    wall_time_s: float
    error_type: Optional[str] = None
    message: Optional[str] = None
    quarantined: bool = False
    injected_faults: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    def to_json(self) -> dict:
        record: dict[str, Any] = {
            "index": self.index,
            "scheme": self.scheme,
            "plr": self.plr,
            "channel_seed": self.channel_seed,
            "sequence": self.sequence,
            "content_hash": self.content_hash,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
        }
        if self.error_type is not None:
            record["error_type"] = self.error_type
            record["message"] = self.message
        if self.quarantined:
            record["quarantined"] = True
        if self.injected_faults:
            record["injected_faults"] = list(self.injected_faults)
        return record

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "ManifestEntry":
        return cls(
            index=int(record["index"]),
            scheme=record["scheme"],
            plr=float(record["plr"]),
            channel_seed=int(record["channel_seed"]),
            sequence=record["sequence"],
            content_hash=record["content_hash"],
            status=record["status"],
            attempts=int(record["attempts"]),
            wall_time_s=float(record["wall_time_s"]),
            error_type=record.get("error_type"),
            message=record.get("message"),
            quarantined=bool(record.get("quarantined", False)),
            injected_faults=tuple(record.get("injected_faults", ())),
        )


@dataclass(frozen=True)
class GridManifest:
    """Machine-readable record of a (possibly partial) grid run.

    The contract for graceful degradation: *every* submitted job
    appears exactly once — succeeded, served from cache, or failed
    (with error type, attempt count and quarantine flag) — so an
    orchestrator can tell a complete sweep from a degraded one and
    resubmit exactly the cells that died.
    """

    entries: tuple[ManifestEntry, ...] = ()

    @property
    def n_jobs(self) -> int:
        return len(self.entries)

    @property
    def degraded(self) -> tuple[ManifestEntry, ...]:
        """Entries that ultimately failed (the resubmission work list)."""
        return tuple(e for e in self.entries if not e.ok)

    @property
    def complete(self) -> bool:
        return not self.degraded

    def to_json(self) -> dict:
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "n_jobs": self.n_jobs,
            "complete": self.complete,
            "counts": counts,
            "jobs": [entry.to_json() for entry in self.entries],
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "GridManifest":
        schema = record.get("schema")
        if schema != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {schema!r} "
                f"(this reader understands {MANIFEST_SCHEMA_VERSION})"
            )
        return cls(
            entries=tuple(
                ManifestEntry.from_json(job) for job in record.get("jobs", ())
            )
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest as JSON (atomically: tempfile + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        tmp.replace(path)
        return path


def grid_manifest(
    outcomes: Sequence[Union[JobResult, JobFailure]],
) -> GridManifest:
    """Build the failure manifest from :func:`run_grid` outcomes."""
    entries = []
    for index, outcome in enumerate(outcomes):
        spec = outcome.spec
        if isinstance(outcome, JobResult):
            status = "cached" if outcome.from_cache else "ok"
            error_type = message = None
            quarantined = False
        else:
            status = "failed"
            error_type = outcome.error_type
            message = outcome.message
            quarantined = outcome.quarantined
        entries.append(
            ManifestEntry(
                index=index,
                scheme=spec.scheme,
                plr=spec.plr,
                channel_seed=spec.channel_seed,
                sequence=spec.sequence,
                content_hash=spec.content_hash(),
                status=status,
                attempts=outcome.attempts,
                wall_time_s=outcome.wall_time_s,
                error_type=error_type,
                message=message,
                quarantined=quarantined,
                injected_faults=outcome.injected_faults,
            )
        )
    return GridManifest(entries=tuple(entries))


def load_manifest(path: Union[str, Path]) -> GridManifest:
    """Read a manifest previously written by :meth:`GridManifest.write`."""
    return GridManifest.from_json(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Pickle-per-key cache directory for experiment results.

    Writes are atomic (tempfile + rename) so a killed run never leaves a
    truncated entry behind; unreadable entries are treated as misses and
    deleted.  Keys are the stable content hashes produced by
    :meth:`JobSpec.content_hash` / :func:`stable_hash`, so the cache is
    shared safely between sweeps: equal spec, equal key, equal result.
    """

    def __init__(self, directory: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[object]:
        """The cached object, or None (counts a hit/miss either way)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated/corrupt entry (e.g. a version-skewed pickle):
            # drop it and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Job execution
# ---------------------------------------------------------------------------


@lru_cache(maxsize=8)
def _sequence_for(
    sequence: str, n_frames: int, synthetic: Optional[SyntheticConfig]
) -> VideoSequence:
    """Build (and memoize per process) a job's source sequence.

    Workers typically run many cells of the same clip; regenerating it
    per job would dominate small-grid wall time.
    """
    if synthetic is not None:
        return generate_sequence(synthetic, name=sequence)
    return SEQUENCE_GENERATORS[sequence](n_frames)


def run_job(spec: JobSpec) -> SimulationResult:
    """Execute one grid cell from scratch, deterministically.

    Every random element (synthetic sequence, channel) is seeded from
    the spec, so equal specs produce equal results in any process.
    """
    sequence = _sequence_for(spec.sequence, spec.n_frames, spec.synthetic)
    if spec.is_pbpair:
        kwargs = {"plr": spec.plr, **spec.pbpair_kwargs}
        strategy = build_strategy("PBPAIR", **kwargs)
    else:
        strategy = build_strategy(spec.scheme)
    loss_model = UniformLoss(
        plr=spec.plr, seed=spec.channel_seed, granularity=spec.granularity
    )
    return simulate(
        sequence,
        strategy,
        loss_model=loss_model,
        config=spec.config,
        faults=spec.faults,
    )


def _job_trace_id(spec: JobSpec) -> str:
    """Human-readable trace label for one grid cell."""
    return (
        f"{spec.scheme} plr={spec.plr:g} seed={spec.channel_seed} "
        f"{spec.sequence}"
    )


def _raise_worker_faults(
    spec: JobSpec, attempt: int, allow_process_exit: bool
) -> None:
    """Fire the runner-stage faults a plan aims at this worker attempt.

    ``worker_hang`` sleeps (the job then proceeds — a slow worker, not
    a dead one); ``worker_crash`` raises :class:`InjectedWorkerCrash`;
    ``worker_exit`` kills the whole process with :func:`os._exit` when
    ``allow_process_exit`` says a pool can absorb it (pooled workers),
    and degrades to the soft crash serially — the parent process must
    survive its own fault plan.
    """
    if spec.faults is None or not spec.faults:
        return
    injector = FaultInjector(spec.faults)
    for fault in injector.worker_faults(spec.content_hash(), attempt):
        if fault.kind == "worker_hang":
            time.sleep(fault.hang_seconds)
        elif fault.kind == "worker_exit" and allow_process_exit:
            os._exit(86)
        else:  # worker_crash, or worker_exit downgraded for serial mode
            raise InjectedWorkerCrash(
                f"injected {fault.kind} on attempt {attempt}"
            )


def _execute_job(
    spec: JobSpec,
    trace_dir: Optional[str] = None,
    attempt: int = 1,
    allow_process_exit: bool = False,
) -> tuple[bool, object, float]:
    """Worker entry point: never raises*, returns a picklable outcome.

    (*except an injected ``worker_exit``, which by design takes the
    whole process down so the parent's broken-pool recovery path gets
    exercised.)

    With ``trace_dir``, the job runs under a fresh :class:`Tracer` and
    leaves its spans in ``trace_dir/job-<hash>.jsonl`` — a per-process
    file, because :class:`SpanRecord` streams cannot cross the pool
    boundary any other way without coupling results to tracing.  The
    parent merges the per-job files after the grid completes.  Tracing
    is observation-only: the returned result is bit-identical either
    way.
    """
    start = time.perf_counter()
    try:
        _raise_worker_faults(spec, attempt, allow_process_exit)
        if trace_dir is not None:
            tracer = Tracer(trace_id=_job_trace_id(spec))
            with use_tracer(tracer):
                result = run_job(spec)
            write_trace(
                Path(trace_dir) / f"job-{spec.content_hash()[:16]}.jsonl",
                tracer,
            )
        else:
            result = run_job(spec)
        return True, result, time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 - error capture is the contract
        payload = (
            type(error).__name__,
            str(error),
            traceback.format_exc(),
        )
        return False, payload, time.perf_counter() - start


@lru_cache(maxsize=4)
def _worker_cache(directory: str) -> ResultCache:
    """Per-process cache handle for chunk workers.

    Each worker opens the cache directory once and reuses the handle
    across every chunk it executes, instead of the parent serializing
    all cache writes through its own process.
    """
    return ResultCache(directory)


def _execute_chunk(
    specs: Sequence[JobSpec],
    trace_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
) -> list[tuple[bool, object, float]]:
    """Run a batch of clean-path jobs in one worker dispatch.

    The coarse-grained sibling of :func:`_execute_job`, used by
    :func:`run_grid` when no retries, timeouts or faults are in play:
    one pool round-trip carries a whole chunk of specs (pickle
    deduplicates the shared config objects across them) and the worker
    writes its own successes into the result cache, so neither the
    per-job dispatch latency nor the cache writes serialize on the
    parent.  Outcomes are per spec, order-aligned, never raising —
    identical to what per-job dispatch would have produced.
    """
    cache = _worker_cache(cache_dir) if cache_dir is not None else None
    outcomes = []
    for spec in specs:
        ok, payload, elapsed = _execute_job(spec, trace_dir, 1, True)
        if ok and cache is not None:
            cache.put(spec.content_hash(), payload)
        outcomes.append((ok, payload, elapsed))
    return outcomes


def _outcome(
    spec: JobSpec,
    ok: bool,
    payload: object,
    elapsed: float,
    attempts: int = 1,
    injected: Sequence[str] = (),
    quarantined: bool = False,
) -> Union[JobResult, JobFailure]:
    if ok:
        return JobResult(
            spec=spec,
            result=payload,
            wall_time_s=elapsed,
            attempts=attempts,
            injected_faults=tuple(injected),
        )
    error_type, message, tb_text = payload
    return JobFailure(
        spec=spec,
        error_type=error_type,
        message=message,
        traceback_text=tb_text,
        wall_time_s=elapsed,
        attempts=attempts,
        quarantined=quarantined,
        injected_faults=tuple(injected),
    )


def resolve_workers(max_workers: Optional[int]) -> int:
    """None -> all cores; values below 1 are a configuration error."""
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _poison_cache_entries(
    spec: JobSpec, cache: Optional[ResultCache]
) -> list[str]:
    """Fire a plan's poison-cache faults against one job's cache entry.

    Corrupts the entry file in place (the cache treats unreadable
    entries as misses and deletes them, so the job recomputes — this
    fault *proves* that recovery path).  Returns injection labels for
    the job's outcome; nothing fires when there is no entry to rot.
    """
    if cache is None or spec.faults is None or not spec.faults:
        return []
    key = spec.content_hash()
    injector = FaultInjector(spec.faults)
    labels = []
    for fault in injector.poison_cache_faults(key):
        path = cache.path_for(key)
        if not path.exists():
            continue
        with path.open("r+b") as handle:
            handle.seek(0)
            handle.write(b"\x00rotten\x00")
            handle.truncate(8)
        injector.record_runner_fault(fault, target=f"cache:{key[:12]}")
        labels.append("poison_cache")
    return labels


def _attempt_labels(spec: JobSpec, attempt: int) -> list[str]:
    """Parent-side labels for worker faults firing in one attempt.

    A crashed worker cannot send its own fault events back, so the
    parent re-evaluates the (deterministic) plan to know what it did
    to the job — same draw, same verdict, any process.
    """
    if spec.faults is None or not spec.faults:
        return []
    injector = FaultInjector(spec.faults)
    return [
        f"{fault.kind}@{attempt}"
        for fault in injector.worker_faults(spec.content_hash(), attempt)
    ]


def run_grid(
    jobs: Iterable[JobSpec],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    trace_dir: Optional[Union[str, Path]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    manifest_path: Optional[Union[str, Path]] = None,
) -> list[Union[JobResult, JobFailure]]:
    """Run a grid of jobs, in parallel, with caching and error capture.

    Args:
        jobs: the grid cells; results come back in the same order.
        max_workers: process count; ``None`` uses every core, ``1``
            (or a single uncached job, or a platform without a working
            process pool) runs serially in this process.
        cache: optional on-disk result cache.  Cached cells are
            returned immediately (``from_cache=True``) without touching
            the pool; fresh successes are written back.  Failures are
            never cached.
        timeout: per-job wall-clock limit in seconds, enforced while
            collecting pool results — a cell that exceeds it becomes a
            :class:`JobFailure` with ``error_type="TimeoutError"`` (or
            is retried, under a ``retry`` policy).  Best-effort: an
            already-running worker process is not killed, and the
            serial path cannot preempt a job at all.
        trace_dir: when given, every *executed* cell runs under a
            :class:`repro.obs.Tracer` and writes a per-job
            ``job-*.jsonl`` trace into this directory (workers cannot
            share one file); after the grid completes they are merged
            into ``trace_dir/trace.jsonl``.  Cache hits execute
            nothing, so they contribute no spans.  Tracing never
            changes results.
        retry: bounded-retry policy for failed cells.  A cell that
            fails (raises, times out, or takes its pool down) is re-run
            up to ``retry.max_attempts`` total times with the policy's
            jittered exponential backoff between attempts; a cell still
            failing with the budget spent comes back as a *quarantined*
            :class:`JobFailure`.  Default: one attempt, no retries.
        faults: run-level :class:`~repro.faults.FaultPlan` applied to
            every spec that does not already carry its own plan (a
            spec-level plan wins — it is part of the cache key).
        manifest_path: when given, a :class:`GridManifest` JSON file is
            written here after the grid completes — every submitted
            job, succeeded or failed, for machine consumption.  Written
            even when everything succeeded (``complete: true``).

    Returns:
        One :class:`JobResult` or :class:`JobFailure` per input spec,
        order-aligned with ``jobs``.  Outcomes are deterministic: the
        worker count changes wall time, never values.

    Dispatch granularity: when no retries, timeouts or faults are
    configured (the common sweep), uncached jobs are shipped to the
    pool in coarse chunks — one round-trip per chunk instead of per
    job, with workers writing their own cache entries — which removes
    most of the fan-out overhead on small grids.  Retry/timeout/fault
    runs keep per-job futures, since those features need to observe
    individual cells in flight.
    """
    specs = list(jobs)
    if faults is not None and faults:
        specs = [
            spec if spec.faults is not None
            else dataclasses.replace(spec, faults=faults)
            for spec in specs
        ]
    retry = retry or RetryPolicy()
    outcomes: dict[int, Union[JobResult, JobFailure]] = {}

    trace_dir_arg: Optional[str] = None
    if trace_dir is not None:
        trace_path = Path(trace_dir)
        trace_path.mkdir(parents=True, exist_ok=True)
        trace_dir_arg = str(trace_path)

    pending: list[int] = []
    labels: dict[int, list[str]] = {}
    for index, spec in enumerate(specs):
        labels[index] = _poison_cache_entries(spec, cache)
        if cache is not None:
            hit = cache.get(spec.content_hash())
            if hit is not None:
                outcomes[index] = JobResult(
                    spec=spec,
                    result=hit,
                    wall_time_s=0.0,
                    from_cache=True,
                    injected_faults=tuple(labels[index]),
                )
                continue
        pending.append(index)

    workers = min(resolve_workers(max_workers), max(len(pending), 1))
    attempts: dict[int, int] = {index: 1 for index in pending}

    def note_attempt(index: int) -> None:
        labels[index].extend(
            _attempt_labels(specs[index], attempts[index])
        )

    def finish(
        index: int,
        ok: bool,
        payload: object,
        elapsed: float,
        cache_written: bool = False,
    ) -> None:
        quarantined = (
            not ok
            and retry.max_attempts > 1
            and attempts[index] >= retry.max_attempts
        )
        outcome = _outcome(
            specs[index],
            ok,
            payload,
            elapsed,
            attempts=attempts[index],
            injected=labels[index],
            quarantined=quarantined,
        )
        if cache is not None and isinstance(outcome, JobResult) and not cache_written:
            cache.put(specs[index].content_hash(), outcome.result)
        outcomes[index] = outcome

    def should_retry(index: int, ok: bool) -> bool:
        if ok or attempts[index] >= retry.max_attempts:
            return False
        time.sleep(
            retry.delay_for(attempts[index], specs[index].content_hash())
        )
        attempts[index] += 1
        note_attempt(index)
        return True

    def collect() -> list[Union[JobResult, JobFailure]]:
        if trace_dir_arg is not None:
            merge_job_traces(trace_dir_arg)
        results = [outcomes[i] for i in range(len(specs))]
        if manifest_path is not None:
            grid_manifest(results).write(manifest_path)
        return results

    def run_serial() -> list[Union[JobResult, JobFailure]]:
        for index in pending:
            note_attempt(index)
            while True:
                ok, payload, elapsed = _execute_job(
                    specs[index], trace_dir_arg, attempts[index]
                )
                if not should_retry(index, ok):
                    break
            finish(index, ok, payload, elapsed)
        return collect()

    if workers <= 1:
        return run_serial()

    def make_executor() -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(max_workers=workers)

    try:
        executor = make_executor()
    except (NotImplementedError, OSError, PermissionError):
        # No usable process pool on this platform: same results, serially.
        return run_serial()

    def run_chunked() -> list[Union[JobResult, JobFailure]]:
        # Clean-path fan-out: no retries, timeouts or faults anywhere,
        # so nothing needs per-job futures.  Ship the grid in coarse
        # chunks (a few per worker keeps the pool load-balanced) and
        # let workers write their own cache entries; the pickle memo
        # shares the config objects across a chunk's specs, so the
        # per-job submit payload shrinks along with the dispatch count.
        chunksize = max(1, -(-len(pending) // (workers * 4)))
        chunks = [
            pending[i : i + chunksize]
            for i in range(0, len(pending), chunksize)
        ]
        cache_dir = str(cache.directory) if cache is not None else None
        try:
            chunk_futures = [
                executor.submit(
                    _execute_chunk,
                    [specs[i] for i in chunk],
                    trace_dir_arg,
                    cache_dir,
                )
                for chunk in chunks
            ]
            for chunk, future in zip(chunks, chunk_futures):
                for index in chunk:
                    note_attempt(index)
                try:
                    chunk_outcomes = future.result()
                except concurrent.futures.process.BrokenProcessPool as error:
                    # The pool died under this chunk; with no retry
                    # budget on the clean path the chunk's cells become
                    # failures (the error-capture contract), and later
                    # chunks report the same way as their futures fail.
                    for index in chunk:
                        finish(
                            index,
                            False,
                            ("BrokenProcessPool", str(error), ""),
                            0.0,
                        )
                    continue
                for index, (ok, payload, elapsed) in zip(
                    chunk, chunk_outcomes
                ):
                    finish(index, ok, payload, elapsed, cache_written=ok)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return collect()

    clean_path = (
        retry.max_attempts == 1
        and timeout is None
        and all(not specs[index].faults for index in pending)
    )
    if clean_path:
        return run_chunked()

    futures: dict[int, concurrent.futures.Future] = {}

    def submit(index: int) -> None:
        futures[index] = executor.submit(
            _execute_job,
            specs[index],
            trace_dir_arg,
            attempts[index],
            True,  # allow_process_exit: the pool absorbs a hard exit
        )

    def rebuild_and_resubmit() -> None:
        # A worker hard-died and took the pool's queues with it: every
        # in-flight future is lost.  Rebuild the pool and resubmit the
        # cells that have no outcome yet.  A cell whose *current*
        # attempt is itself scheduled to hard-exit spends that attempt
        # first (the plan is deterministic, so the parent knows without
        # hearing back) — resubmitting it unchanged would just kill the
        # fresh pool again and bleed the other cells' retry budgets.
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        executor = make_executor()
        for index in pending:
            if index in outcomes:
                continue
            while (
                attempts[index] < retry.max_attempts
                and f"worker_exit@{attempts[index]}" in labels[index]
            ):
                attempts[index] += 1
                note_attempt(index)
            submit(index)

    try:
        for index in pending:
            note_attempt(index)
            submit(index)
        for index in pending:
            while index not in outcomes:
                try:
                    ok, payload, elapsed = futures[index].result(
                        timeout=timeout
                    )
                except concurrent.futures.TimeoutError:
                    futures[index].cancel()
                    ok = False
                    payload = (
                        "TimeoutError",
                        f"job exceeded {timeout}s",
                        "",
                    )
                    elapsed = float(timeout or 0.0)
                except concurrent.futures.process.BrokenProcessPool as error:
                    ok = False
                    payload = ("BrokenProcessPool", str(error), "")
                    elapsed = 0.0
                    if should_retry(index, ok):
                        rebuild_and_resubmit()
                        continue
                    finish(index, ok, payload, elapsed)
                    rebuild_and_resubmit()
                    continue
                if should_retry(index, ok):
                    submit(index)
                    continue
                finish(index, ok, payload, elapsed)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    return collect()


# ---------------------------------------------------------------------------
# Lower-level parallel simulate (for already-built experiment objects)
# ---------------------------------------------------------------------------


def _execute_simulation(task: tuple) -> SimulationResult:
    sequence, strategy, loss_model, config = task
    return simulate(sequence, strategy, loss_model=loss_model, config=config)


def run_simulations(
    tasks: Sequence[tuple],
    max_workers: Optional[int] = 1,
) -> list[SimulationResult]:
    """Run ``simulate`` over (sequence, strategy, loss_model, config) tuples.

    The object-level counterpart of :func:`run_grid`, used by
    :func:`repro.sim.experiment.sweep` and
    :func:`~repro.sim.experiment.replicate`: strategies and loss models
    are instantiated by the *caller* (fresh per run — they are
    stateful), then shipped to workers as initial-state instances.

    Falls back to serial execution when ``max_workers`` is 1, when a
    task does not pickle (user-supplied objects are arbitrary), or when
    the platform has no working process pool.  Exceptions propagate to
    the caller unchanged, matching the serial semantics these helpers
    always had.
    """
    tasks = list(tasks)
    workers = min(resolve_workers(max_workers), max(len(tasks), 1))
    if workers > 1:
        try:
            for task in tasks:
                pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            workers = 1

    if workers <= 1:
        return [_execute_simulation(task) for task in tasks]

    try:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    except (NotImplementedError, OSError, PermissionError):
        return [_execute_simulation(task) for task in tasks]

    with executor:
        futures = [executor.submit(_execute_simulation, task) for task in tasks]
        return [future.result() for future in futures]
