"""Parallel experiment execution with on-disk result caching.

The paper's headline results (Figures 5-6) are grids of
``(scheme x PLR x channel seed x sequence)`` simulations.  Every cell is
independent and deterministic given its parameters, which makes the grid
embarrassingly parallel *and* cacheable — this module exploits both:

* :class:`JobSpec` is a *declarative*, picklable description of one
  grid cell: the scheme spec string (the figures' own vocabulary, see
  :mod:`repro.resilience.registry`), the channel parameters, the source
  sequence by name, and the codec/device configuration.  Everything a
  worker process needs to rebuild the experiment from scratch.
* :func:`run_grid` fans a list of specs across a
  :class:`concurrent.futures.ProcessPoolExecutor`, with per-job error
  capture (a crashed cell comes back as a :class:`JobFailure` record
  instead of killing the sweep) and an optional per-job timeout.
* :class:`ResultCache` stores each cell's
  :class:`~repro.sim.pipeline.SimulationResult` on disk under a stable
  content hash of its spec, so re-running a sweep only computes the
  cells whose parameters changed.

Determinism: a job's outcome depends only on its spec (synthetic
sequences, the channel and the codec are all explicitly seeded), so the
same grid produces bit-identical results at any worker count — the
serial path is the ``max_workers=1`` special case of the same code, not
a separate implementation.

Observability: passing ``trace_dir`` to :func:`run_grid` runs every
executed cell under a per-job :class:`repro.obs.Tracer`; workers write
``job-*.jsonl`` trace files (span records cannot ride the result pickle
without coupling results to tracing) and the parent merges them into
``trace_dir/trace.jsonl`` once the grid completes.

:func:`run_simulations` is the lower-level sibling used by
:func:`repro.sim.experiment.sweep` and
:func:`~repro.sim.experiment.replicate`: it parallelizes already-built
(sequence, strategy, loss model) triples, falling back to serial
execution when the objects cannot cross a process boundary (e.g. lambda
factories) or the platform has no working process pool.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pickle
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.faults import FaultInjector, FaultPlan, encode_subplan
from repro.faults.inject import InjectedWorkerCrash
from repro.network.loss import UniformLoss
from repro.scenarios.pack import ScenarioPack
from repro.obs import Tracer, get_tracer, merge_job_traces, use_tracer, write_trace
from repro.codec.rate import RateControlConfig, build_rate_controller
from repro.resilience.registry import build_strategy, strategy_to_spec
from repro.sim.pipeline import (
    EncodedStream,
    SimulationConfig,
    SimulationResult,
    encode_phase,
    simulate,
    transmit_phase,
)
from repro.video.frame import VideoSequence
from repro.video.synthetic import (
    SEQUENCE_GENERATORS,
    SyntheticConfig,
    generate_sequence,
)

#: Bumped whenever the simulation pipeline changes in a way that makes
#: previously cached results stale (new metrics, changed semantics).
#: Version 2: FrameRecord.damaged_fragments + SimulationResult.fault_events.
#: Version 3: JobSpec.rate (closed-loop rate control) joins the key.
#: Version 4: JobSpec.scenario (declarative channel scenario packs)
#: joins the key, and ChannelLog grew resilience counters.
CACHE_SCHEMA_VERSION = 4

#: Schema of the :class:`~repro.sim.pipeline.EncodedStream` pickles held
#: by :class:`EncodedStreamCache`; part of every encode cache key.
#: Version 2: the rate-control config joins the key (a controller
#: changes every frame's QP, and therefore the stream bytes).
STREAM_SCHEMA_VERSION = 2

#: Schema version of the JSON failure manifest written by
#: :meth:`GridManifest.write`.  Version 2 added the explicit
#: ``schema_version`` key and the ``counts.quarantined`` accounting;
#: version-1 manifests remain loadable (current and v-1, the same
#: contract the trace schema keeps).
MANIFEST_SCHEMA_VERSION = 2

#: Manifest schema versions :meth:`GridManifest.from_json` understands.
SUPPORTED_MANIFEST_SCHEMAS = frozenset({1, MANIFEST_SCHEMA_VERSION})

#: Default on-disk cache location (overridable per call and via the CLI).
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


# ---------------------------------------------------------------------------
# Stable content hashing
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-serializable primitives, deterministically.

    Dataclasses become sorted dicts tagged with their class name (two
    configs of different types never collide), mappings are
    key-sorted, and tuples/sets become lists.  Floats pass through:
    ``json`` renders them with ``repr``, which round-trips exactly.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        tagged = {"__class__": type(value).__name__}
        for f in dataclasses.fields(value):
            tagged[f.name] = _canonical(getattr(value, f.name))
        return tagged
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for content hashing"
    )


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``payload``.

    Stable across processes and sessions (no ``PYTHONHASHSEED``
    dependence), which is what makes it usable as an on-disk cache key.
    """
    canonical = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def sequence_digest(sequence: VideoSequence) -> str:
    """Content hash of a sequence's pixel data (for non-declarative jobs).

    Used when the caller holds a :class:`VideoSequence` object rather
    than a (name, n_frames) description — e.g. the calibration loop of
    :func:`repro.sim.experiment.calibrate_intra_th`.
    """
    digest = hashlib.sha256()
    digest.update(sequence.name.encode("utf-8"))
    for frame in sequence:
        digest.update(frame.pixels.tobytes())
        if frame.cb is not None:
            digest.update(frame.cb.tobytes())
        if frame.cr is not None:
            digest.update(frame.cr.tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One declarative cell of an experiment grid.

    Every field is plain data, so the spec pickles cheaply to worker
    processes and hashes stably for the result cache.  The worker
    rebuilds the whole experiment from it: sequence (by registry name,
    or from an explicit :class:`SyntheticConfig`), strategy (from the
    figure-style spec string), channel (uniform loss at ``plr`` with
    ``channel_seed``) and pipeline configuration.

    Attributes:
        scheme: figure-style strategy spec ("NO", "GOP-3", "AIR-24",
            "PGOP-3", "PBPAIR").
        plr: channel packet loss rate; also PBPAIR's assumed ``alpha``
            unless ``pbpair_kwargs`` overrides it.
        channel_seed: loss-pattern seed — the replication axis.
        sequence: synthetic clip name from
            :data:`repro.video.synthetic.SEQUENCE_GENERATORS`, or a
            free-form label when ``synthetic`` is given.
        n_frames: clip length (ignored when ``synthetic`` is given,
            which carries its own ``n_frames``).
        synthetic: explicit sequence parameters; takes precedence over
            the ``sequence``-name lookup.  This keeps the spec fully
            declarative for non-registry clips (tests use tiny frames).
        granularity: channel loss granularity, ``"frame"`` (paper) or
            ``"packet"``.
        config: pipeline configuration (codec, MTU, device profile).
        pbpair_kwargs: extra :class:`repro.core.pbpair.PBPAIRConfig`
            knobs for PBPAIR schemes (``intra_th``, ...).
        faults: optional deterministic :class:`repro.faults.FaultPlan`.
            Pipeline-stage faults are injected inside the simulation
            (and change the result, so the plan is part of the cache
            key); runner-stage faults afflict the worker executing the
            job.
        rate: optional :class:`repro.codec.rate.RateControlConfig`.
            When set, the worker builds a fresh closed-loop controller
            for the job, so every frame's QP (and the stream bytes)
            chases the configured kbps target — part of both the result
            and the stream cache keys.
        scenario: optional :class:`repro.scenarios.pack.ScenarioPack`.
            When set, the channel follows the pack's segment timeline
            instead of uniform loss at ``plr`` (which is then ignored,
            along with ``granularity``); ``channel_seed`` seeds the
            pack's loss models and stays the replication axis.  The
            pack is transmit-side only: it joins the result-cache key
            but not the encoded-stream key, so scenario sweeps share
            encodes.
    """

    scheme: str
    plr: float = 0.1
    channel_seed: int = 0
    sequence: str = "foreman"
    n_frames: int = 90
    synthetic: Optional[SyntheticConfig] = None
    granularity: str = "frame"
    config: SimulationConfig = field(default_factory=SimulationConfig)
    pbpair_kwargs: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[FaultPlan] = None
    rate: Optional[RateControlConfig] = None
    scenario: Optional[ScenarioPack] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.plr <= 1.0:
            raise ValueError(f"plr must be in [0, 1], got {self.plr}")
        if self.scenario is not None and not isinstance(
            self.scenario, ScenarioPack
        ):
            raise TypeError(
                f"scenario must be a ScenarioPack, got {type(self.scenario)!r}"
            )
        if self.n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {self.n_frames}")
        if self.synthetic is None and self.sequence not in SEQUENCE_GENERATORS:
            known = ", ".join(sorted(SEQUENCE_GENERATORS))
            raise ValueError(
                f"unknown sequence {self.sequence!r} (known: {known}); "
                "pass synthetic=SyntheticConfig(...) for custom clips"
            )
        # Normalize to a plain dict so equality and hashing see the same
        # content regardless of the mapping type the caller used.
        object.__setattr__(self, "pbpair_kwargs", dict(self.pbpair_kwargs))

    @property
    def is_pbpair(self) -> bool:
        return self.scheme.strip().upper() == "PBPAIR"

    def content_hash(self) -> str:
        """Stable cache key: every parameter that can change the result."""
        return stable_hash(
            {
                "kind": "simulate",
                "cache_schema": CACHE_SCHEMA_VERSION,
                "scheme": self.scheme.strip().upper(),
                "plr": self.plr,
                "channel_seed": self.channel_seed,
                "sequence": self.sequence,
                "n_frames": None if self.synthetic else self.n_frames,
                "synthetic": self.synthetic,
                "granularity": self.granularity,
                "config": self.config,
                "pbpair_kwargs": self.pbpair_kwargs,
                "faults": self.faults,
                "rate": self.rate,
                "scenario": self.scenario,
            }
        )


@dataclass(frozen=True)
class JobResult:
    """A completed grid cell.

    ``attempts`` counts executions including retries (1 = first try
    succeeded); ``injected_faults`` labels the runner-stage faults a
    :class:`~repro.faults.FaultPlan` fired against this job
    (``"worker_crash@1"`` = crashed on attempt 1), so a degraded-but-
    recovered cell is distinguishable from a clean one.
    """

    spec: JobSpec
    result: SimulationResult
    wall_time_s: float
    from_cache: bool = False
    attempts: int = 1
    injected_faults: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class JobFailure:
    """A grid cell that raised (or timed out) instead of finishing.

    Captured per cell so one bad parameter combination does not kill an
    hours-long sweep; the traceback text travels back from the worker
    as a string because live traceback objects do not pickle.

    ``attempts`` counts executions including retries; ``quarantined``
    marks a job that kept failing until its retry budget ran out (a
    *poison job* — the runner stopped feeding it to workers).
    """

    spec: JobSpec
    error_type: str
    message: str
    traceback_text: str = ""
    wall_time_s: float = 0.0
    attempts: int = 1
    quarantined: bool = False
    injected_faults: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` bounds total executions of one job (1 = no
    retries, the default — existing callers keep their semantics).
    The delay before attempt ``n+1`` is::

        backoff_s * backoff_factor**(n-1) * (1 + jitter * u)

    where ``u`` in [0, 1) is derived from a stable hash of the job key
    and the attempt number — jittered like production retry loops (so
    simultaneous retries do not stampede), yet exactly reproducible.
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError("backoff parameters must be non-negative")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class RunnerOptions:
    """Every execution knob of the grid runner, as one declarative bundle.

    The CLI verbs (``compare``/``sweep``/``simulate``/``serve``/
    ``submit``), :func:`run_grid` and the service daemon all used to
    grow the same flag set independently (``--jobs``, ``--no-cache``,
    ``--cache-dir``, ``--faults``, ``--retries``, ``--job-timeout``,
    ``--manifest``, ``--no-stream-cache``).  This dataclass is the one
    typed surface those flags resolve into: build it once, hand it to
    :func:`run_grid` (``options=``) or to
    :class:`repro.service.daemon.EncodeDaemon`, and the execution
    semantics are identical everywhere.

    Attributes:
        jobs: worker process count; ``0`` means every core, ``1`` runs
            serially in-process.
        use_cache: keep completed cells in the on-disk result cache.
        cache_dir: result-cache directory (streams live beside it under
            ``<cache_dir>/streams``).
        share_streams: encode-once stream sharing (disable to force the
            full pipeline per cell; results are identical either way).
        retries: extra executions for a failed cell (``0`` = fail fast).
        job_timeout: per-job wall-clock limit in seconds, or ``None``.
        manifest_path: where to write the :class:`GridManifest` JSON,
            or ``None`` to skip it.
        faults: run-level deterministic :class:`~repro.faults.FaultPlan`.
        trace_dir: per-job trace directory, or ``None`` for no tracing.
        rate: run-level :class:`~repro.codec.rate.RateControlConfig`
            applied to every spec that does not carry its own — the
            matched-bitrate switch: one config, every scheme encodes
            toward the same kbps target.
        scenario: run-level
            :class:`~repro.scenarios.pack.ScenarioPack` applied to
            every spec that does not carry its own — one pack, every
            cell transmits over the same channel timeline.
    """

    jobs: int = 1
    use_cache: bool = True
    cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR
    share_streams: bool = True
    retries: int = 0
    job_timeout: Optional[float] = None
    manifest_path: Optional[Union[str, Path]] = None
    faults: Optional[FaultPlan] = None
    trace_dir: Optional[Union[str, Path]] = None
    rate: Optional[RateControlConfig] = None
    scenario: Optional[ScenarioPack] = None

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be positive, got {self.job_timeout}"
            )

    @property
    def max_workers(self) -> Optional[int]:
        """The :func:`run_grid` ``max_workers`` value (``None`` = all)."""
        return None if self.jobs == 0 else self.jobs

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return (
            RetryPolicy(max_attempts=self.retries + 1)
            if self.retries
            else None
        )

    def build_cache(self) -> Optional["ResultCache"]:
        """The result cache these options describe (``None`` when off)."""
        if not self.use_cache:
            return None
        return ResultCache(self.cache_dir)

    def build_stream_cache(
        self, cache: Optional["ResultCache"] = None
    ) -> Optional["EncodedStreamCache"]:
        """The encoded-stream cache (memory-only when caching is off)."""
        if not self.share_streams:
            return None
        return EncodedStreamCache(
            cache.directory / "streams" if cache is not None else None
        )

    def run(
        self, jobs: Iterable["JobSpec"], **overrides: Any
    ) -> list[Union["JobResult", "JobFailure"]]:
        """Run a grid under these options (``run_grid`` shorthand)."""
        return run_grid(jobs, options=self, **overrides)


def build_grid(
    schemes: Sequence[str],
    plrs: Sequence[float],
    channel_seeds: Sequence[int],
    sequences: Sequence[str] = ("foreman",),
    n_frames: int = 90,
    config: Optional[SimulationConfig] = None,
    pbpair_kwargs: Optional[Mapping[str, Any]] = None,
    granularity: str = "frame",
) -> list[JobSpec]:
    """Cartesian product of the paper's four grid axes, in a fixed order.

    Iteration order is sequence-major, then scheme, PLR, seed — stable,
    so result lists line up across runs and worker counts.
    """
    jobs = []
    for sequence in sequences:
        for scheme in schemes:
            for plr in plrs:
                for seed in channel_seeds:
                    jobs.append(
                        JobSpec(
                            scheme=scheme,
                            plr=plr,
                            channel_seed=seed,
                            sequence=sequence,
                            n_frames=n_frames,
                            config=config or SimulationConfig(),
                            pbpair_kwargs=dict(pbpair_kwargs or {}),
                        )
                    )
    return jobs


# ---------------------------------------------------------------------------
# Failure manifest: machine-readable partial-grid completion record
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ManifestEntry:
    """One grid cell's outcome, flattened for the JSON manifest."""

    index: int
    scheme: str
    plr: float
    channel_seed: int
    sequence: str
    content_hash: str
    status: str  # "ok" | "cached" | "failed"
    attempts: int
    wall_time_s: float
    error_type: Optional[str] = None
    message: Optional[str] = None
    quarantined: bool = False
    injected_faults: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    def to_json(self) -> dict:
        record: dict[str, Any] = {
            "index": self.index,
            "scheme": self.scheme,
            "plr": self.plr,
            "channel_seed": self.channel_seed,
            "sequence": self.sequence,
            "content_hash": self.content_hash,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
        }
        if self.error_type is not None:
            record["error_type"] = self.error_type
            record["message"] = self.message
        if self.quarantined:
            record["quarantined"] = True
        if self.injected_faults:
            record["injected_faults"] = list(self.injected_faults)
        return record

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "ManifestEntry":
        return cls(
            index=int(record["index"]),
            scheme=record["scheme"],
            plr=float(record["plr"]),
            channel_seed=int(record["channel_seed"]),
            sequence=record["sequence"],
            content_hash=record["content_hash"],
            status=record["status"],
            attempts=int(record["attempts"]),
            wall_time_s=float(record["wall_time_s"]),
            error_type=record.get("error_type"),
            message=record.get("message"),
            quarantined=bool(record.get("quarantined", False)),
            injected_faults=tuple(record.get("injected_faults", ())),
        )


@dataclass(frozen=True)
class GridManifest:
    """Machine-readable record of a (possibly partial) grid run.

    The contract for graceful degradation: *every* submitted job
    appears exactly once — succeeded, served from cache, or failed
    (with error type, attempt count and quarantine flag) — so an
    orchestrator can tell a complete sweep from a degraded one and
    resubmit exactly the cells that died.
    """

    entries: tuple[ManifestEntry, ...] = ()

    @property
    def n_jobs(self) -> int:
        return len(self.entries)

    @property
    def degraded(self) -> tuple[ManifestEntry, ...]:
        """Entries that ultimately failed (the resubmission work list)."""
        return tuple(e for e in self.entries if not e.ok)

    @property
    def complete(self) -> bool:
        return not self.degraded

    def to_json(self) -> dict:
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        # Quarantined cells report status "failed" (schema-v1 vocabulary,
        # kept for compatibility) but are accounted separately so an
        # orchestrator can tell poison jobs from transient failures.
        quarantined = sum(1 for e in self.entries if e.quarantined)
        if quarantined:
            counts["quarantined"] = quarantined
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "n_jobs": self.n_jobs,
            "complete": self.complete,
            "counts": counts,
            "jobs": [entry.to_json() for entry in self.entries],
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "GridManifest":
        schema = record.get("schema", record.get("schema_version"))
        if schema not in SUPPORTED_MANIFEST_SCHEMAS:
            supported = sorted(SUPPORTED_MANIFEST_SCHEMAS)
            raise ValueError(
                f"manifest schema {schema!r} "
                f"(this reader understands {supported})"
            )
        return cls(
            entries=tuple(
                ManifestEntry.from_json(job) for job in record.get("jobs", ())
            )
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest as JSON (atomically: tempfile + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        tmp.replace(path)
        return path


def grid_manifest(
    outcomes: Sequence[Union[JobResult, JobFailure]],
) -> GridManifest:
    """Build the failure manifest from :func:`run_grid` outcomes."""
    entries = []
    for index, outcome in enumerate(outcomes):
        spec = outcome.spec
        if isinstance(outcome, JobResult):
            status = "cached" if outcome.from_cache else "ok"
            error_type = message = None
            quarantined = False
        else:
            status = "failed"
            error_type = outcome.error_type
            message = outcome.message
            quarantined = outcome.quarantined
        entries.append(
            ManifestEntry(
                index=index,
                scheme=spec.scheme,
                plr=spec.plr,
                channel_seed=spec.channel_seed,
                sequence=spec.sequence,
                content_hash=spec.content_hash(),
                status=status,
                attempts=outcome.attempts,
                wall_time_s=outcome.wall_time_s,
                error_type=error_type,
                message=message,
                quarantined=quarantined,
                injected_faults=outcome.injected_faults,
            )
        )
    return GridManifest(entries=tuple(entries))


def load_manifest(path: Union[str, Path]) -> GridManifest:
    """Read a manifest previously written by :meth:`GridManifest.write`."""
    return GridManifest.from_json(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Pickle-per-key cache directory for experiment results.

    Writes are atomic (tempfile + rename) so a killed run never leaves a
    truncated entry behind; unreadable entries are treated as misses and
    deleted.  Keys are the stable content hashes produced by
    :meth:`JobSpec.content_hash` / :func:`stable_hash`, so the cache is
    shared safely between sweeps: equal spec, equal key, equal result.

    ``max_bytes`` bounds the directory's total ``*.pkl`` size with LRU
    eviction: every read refreshes its entry's mtime, and every write
    evicts stalest-first until the budget holds again.  The entry just
    written is never evicted, even when it alone exceeds the budget —
    a cache that silently drops what it was asked to keep would turn
    one oversized result into an infinite recompute loop.  ``None``
    (the default) keeps the historical unbounded behaviour.
    """

    def __init__(
        self,
        directory: Union[str, Path] = DEFAULT_CACHE_DIR,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[object]:
        """The cached object, or None (counts a hit/miss either way)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated/corrupt entry (e.g. a version-skewed pickle):
            # drop it and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        if self.max_bytes is not None:
            try:
                os.utime(path)  # mark recently-used for LRU eviction
            except OSError:
                pass
        return value

    def put(self, key: str, value: object) -> None:
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        self._evict(keep=path)

    def _evict(self, keep: Path) -> None:
        """Drop stalest entries until the byte budget holds again."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:  # raced with another process's eviction
                continue
            total += stat.st_size
            if path != keep:
                entries.append((stat.st_mtime, path, stat.st_size))
        entries.sort()
        while total > self.max_bytes and entries:
            _, path, size = entries.pop(0)
            path.unlink(missing_ok=True)
            total -= size
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Encoded-stream cache: encode once, replay many channel realizations
# ---------------------------------------------------------------------------


class EncodedStreamCache:
    """Two-level cache of :class:`~repro.sim.pipeline.EncodedStream`.

    A small in-memory LRU front (the streams a worker is actively
    replaying) over an optional on-disk :class:`ResultCache` back end
    (shared between workers and across runs) — the disk layer inherits
    ResultCache's atomic writes, corrupt-entry recovery and max-bytes
    eviction wholesale.  Pass ``directory=None`` for a memory-only
    cache (serial runs, tests).

    Keys come from :func:`encode_stream_key`: the encoder is
    deterministic, so equal keys mean byte-identical streams and a
    cache hit is exactly as good as encoding again.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_entries: int = 8,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._memory: OrderedDict[str, EncodedStream] = OrderedDict()
        self.max_entries = max_entries
        self.disk: Optional[ResultCache] = (
            ResultCache(directory, max_bytes=max_bytes)
            if directory is not None
            else None
        )
        self.hits = 0
        self.misses = 0
        self.encodes = 0

    @property
    def directory(self) -> Optional[Path]:
        return self.disk.directory if self.disk is not None else None

    def _remember(self, key: str, stream: EncodedStream) -> None:
        self._memory[key] = stream
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def get(self, key: str) -> Optional[EncodedStream]:
        stream = self._memory.get(key)
        if stream is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return stream
        if self.disk is not None:
            value = self.disk.get(key)
            if isinstance(value, EncodedStream):
                self._remember(key, value)
                self.hits += 1
                return value
        self.misses += 1
        return None

    def put(self, key: str, stream: EncodedStream) -> None:
        self._remember(key, stream)
        if self.disk is not None:
            self.disk.put(key, stream)

    def get_or_encode(
        self, key: str, encode: Callable[[], EncodedStream]
    ) -> tuple[EncodedStream, bool]:
        """The cached stream for ``key``, or ``encode()``'s fresh one.

        Returns ``(stream, reused)`` — ``reused`` is what the runner
        reports as the ``encode_reused`` trace event, keeping per-cell
        energy accounting honest about work that did not happen.
        """
        stream = self.get(key)
        if stream is not None:
            return stream, True
        self.encodes += 1
        stream = encode()
        self.put(key, stream)
        return stream, False


def encode_stream_key(
    *,
    sequence: str,
    scheme: str,
    strategy_kwargs: Mapping[str, Any],
    config: SimulationConfig,
    encode_faults: Optional[FaultPlan] = None,
    rate: Optional[RateControlConfig] = None,
) -> str:
    """Stable cache key for one :func:`~repro.sim.pipeline.encode_phase`.

    ``sequence`` is a pixel-content digest (:func:`sequence_digest`),
    so renamed-but-identical clips share and identically-named-but-
    different clips never collide.  The key covers exactly what can
    change the stream bytes: source pixels, resolved strategy (scheme
    plus its kwargs — for PBPAIR that includes the assumed ``plr``),
    codec parameters, MTU, the encode-stage fault sub-plan, and the
    rate-control config (a controller rewrites every frame's QP).
    Channel seed/PLR/granularity, the device energy profile and the
    bad-pixel threshold are transmit-side and deliberately absent —
    that absence *is* the sharing.
    """
    return stable_hash(
        {
            "kind": "encode-stream",
            "stream_schema": STREAM_SCHEMA_VERSION,
            "sequence": sequence,
            "scheme": scheme.strip().upper(),
            "strategy_kwargs": dict(strategy_kwargs),
            "codec": config.codec,
            "mtu": config.mtu,
            "encode_faults": encode_faults,
            "rate": rate,
        }
    )


def _strategy_kwargs_for(spec: "JobSpec") -> dict[str, Any]:
    """The kwargs :func:`run_job` resolves a spec's strategy with."""
    if spec.is_pbpair:
        return {"plr": spec.plr, **spec.pbpair_kwargs}
    return {}


@lru_cache(maxsize=32)
def _declared_sequence_digest(
    sequence: str, n_frames: int, synthetic: Optional[SyntheticConfig]
) -> str:
    """Memoized pixel digest of a declaratively-specified sequence."""
    return sequence_digest(_sequence_for(sequence, n_frames, synthetic))


def encode_content_hash(spec: "JobSpec") -> str:
    """The encode-phase cache key of one grid cell.

    Two specs with equal hashes share one encoded stream: same pixels,
    same resolved strategy, same codec/MTU, same encode-stage faults.
    A seeds-sweep grid therefore collapses to one encode per scheme —
    PBPAIR cells additionally split per PLR, because the scheme's
    intra-refresh probability is a function of the loss rate it
    assumes.
    """
    return encode_stream_key(
        sequence=_declared_sequence_digest(
            spec.sequence, spec.n_frames, spec.synthetic
        ),
        scheme=spec.scheme,
        strategy_kwargs=_strategy_kwargs_for(spec),
        config=spec.config,
        encode_faults=encode_subplan(spec.faults),
        rate=spec.rate,
    )


# ---------------------------------------------------------------------------
# Job execution
# ---------------------------------------------------------------------------


@lru_cache(maxsize=8)
def _sequence_for(
    sequence: str, n_frames: int, synthetic: Optional[SyntheticConfig]
) -> VideoSequence:
    """Build (and memoize per process) a job's source sequence.

    Workers typically run many cells of the same clip; regenerating it
    per job would dominate small-grid wall time.
    """
    if synthetic is not None:
        return generate_sequence(synthetic, name=sequence)
    return SEQUENCE_GENERATORS[sequence](n_frames)


def run_job(
    spec: JobSpec,
    stream_cache: Optional[EncodedStreamCache] = None,
) -> SimulationResult:
    """Execute one grid cell from scratch, deterministically.

    Every random element (synthetic sequence, channel) is seeded from
    the spec, so equal specs produce equal results in any process.

    With a ``stream_cache``, the encode phase is looked up under
    :func:`encode_content_hash` and only the transmit phase runs when
    another cell already paid for the encode — value-identical to the
    full pipeline, with an ``encode_reused`` trace event marking the
    skipped work.  Specs carrying encode-stage faults opt out and run
    the whole pipeline (their corrupted stream is theirs alone).
    """
    sequence = _sequence_for(spec.sequence, spec.n_frames, spec.synthetic)
    strategy = build_strategy(spec.scheme, **_strategy_kwargs_for(spec))
    if spec.scenario is not None:
        loss_model = None
        channel_kwargs: dict[str, Any] = {
            "scenario": spec.scenario,
            "scenario_seed": spec.channel_seed,
        }
    else:
        loss_model = UniformLoss(
            plr=spec.plr, seed=spec.channel_seed, granularity=spec.granularity
        )
        channel_kwargs = {}
    if stream_cache is None or encode_subplan(spec.faults) is not None:
        return simulate(
            sequence,
            strategy,
            loss_model=loss_model,
            config=spec.config,
            rate_controller=build_rate_controller(spec.rate),
            faults=spec.faults,
            **channel_kwargs,
        )

    tracer = get_tracer()
    with tracer.span("simulate") as run_span:
        key = encode_content_hash(spec)
        stream, reused = stream_cache.get_or_encode(
            key,
            # A fresh controller per encode: its state is a pure
            # function of the frames it observes, which keeps the
            # encode deterministic and therefore cacheable.
            lambda: encode_phase(
                sequence,
                strategy,
                config=spec.config,
                rate_controller=build_rate_controller(spec.rate),
            ),
        )
        if reused and tracer.enabled:
            tracer.event(
                "encode_reused",
                key=key[:16],
                scheme=spec.scheme,
                sequence=spec.sequence,
                frames=stream.n_frames,
            )
        run_span.add(frames=stream.n_frames)
        tracer.metrics.gauge("sim.frames", stream.n_frames)
        return transmit_phase(
            stream,
            sequence,
            loss_model=loss_model,
            config=spec.config,
            faults=spec.faults,
            **channel_kwargs,
        )


def _job_trace_id(spec: JobSpec) -> str:
    """Human-readable trace label for one grid cell."""
    channel = (
        f"scenario={spec.scenario.name}"
        if spec.scenario is not None
        else f"plr={spec.plr:g}"
    )
    return (
        f"{spec.scheme} {channel} seed={spec.channel_seed} "
        f"{spec.sequence}"
    )


def _raise_worker_faults(
    spec: JobSpec, attempt: int, allow_process_exit: bool
) -> None:
    """Fire the runner-stage faults a plan aims at this worker attempt.

    ``worker_hang`` sleeps (the job then proceeds — a slow worker, not
    a dead one); ``worker_crash`` raises :class:`InjectedWorkerCrash`;
    ``worker_exit`` kills the whole process with :func:`os._exit` when
    ``allow_process_exit`` says a pool can absorb it (pooled workers),
    and degrades to the soft crash serially — the parent process must
    survive its own fault plan.
    """
    if spec.faults is None or not spec.faults:
        return
    injector = FaultInjector(spec.faults)
    for fault in injector.worker_faults(spec.content_hash(), attempt):
        if fault.kind == "worker_hang":
            time.sleep(fault.hang_seconds)
        elif fault.kind == "worker_exit" and allow_process_exit:
            os._exit(86)
        else:  # worker_crash, or worker_exit downgraded for serial mode
            raise InjectedWorkerCrash(
                f"injected {fault.kind} on attempt {attempt}"
            )


def _execute_job(
    spec: JobSpec,
    trace_dir: Optional[str] = None,
    attempt: int = 1,
    allow_process_exit: bool = False,
    stream_dir: Optional[str] = None,
    share_streams: bool = False,
    stream_cache: Optional[EncodedStreamCache] = None,
) -> tuple[bool, object, float]:
    """Worker entry point: never raises*, returns a picklable outcome.

    (*except an injected ``worker_exit``, which by design takes the
    whole process down so the parent's broken-pool recovery path gets
    exercised.)

    With ``trace_dir``, the job runs under a fresh :class:`Tracer` and
    leaves its spans in ``trace_dir/job-<hash>.jsonl`` — a per-process
    file, because :class:`SpanRecord` streams cannot cross the pool
    boundary any other way without coupling results to tracing.  The
    parent merges the per-job files after the grid completes.  Tracing
    is observation-only: the returned result is bit-identical either
    way.

    With ``share_streams``, the job replays its cell against the
    per-process encoded-stream cache rooted at ``stream_dir`` (memory
    only when ``None``) — the worker looks the stream up by content
    hash instead of receiving pickled megabytes from the parent.
    """
    start = time.perf_counter()
    try:
        _raise_worker_faults(spec, attempt, allow_process_exit)
        if stream_cache is None and share_streams:
            stream_cache = _worker_stream_cache(stream_dir)
        elif not share_streams:
            stream_cache = None
        if trace_dir is not None:
            tracer = Tracer(trace_id=_job_trace_id(spec))
            with use_tracer(tracer):
                result = run_job(spec, stream_cache)
            write_trace(
                Path(trace_dir) / f"job-{spec.content_hash()[:16]}.jsonl",
                tracer,
            )
        else:
            result = run_job(spec, stream_cache)
        return True, result, time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 - error capture is the contract
        payload = (
            type(error).__name__,
            str(error),
            traceback.format_exc(),
        )
        return False, payload, time.perf_counter() - start


@lru_cache(maxsize=4)
def _worker_cache(directory: str) -> ResultCache:
    """Per-process cache handle for chunk workers.

    Each worker opens the cache directory once and reuses the handle
    across every chunk it executes, instead of the parent serializing
    all cache writes through its own process.
    """
    return ResultCache(directory)


@lru_cache(maxsize=4)
def _worker_stream_cache(directory: Optional[str]) -> EncodedStreamCache:
    """Per-process encoded-stream cache handle.

    Like :func:`_worker_cache` but for streams; ``None`` gives this
    process a memory-only cache (jobs of one serial run, or of one
    worker's lifetime, still share).  Keys are content hashes, so a
    long-lived handle can never serve a stale stream.
    """
    return EncodedStreamCache(directory)


def _execute_chunk(
    specs: Sequence[JobSpec],
    trace_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    stream_dir: Optional[str] = None,
    share_streams: bool = False,
) -> list[tuple[bool, object, float]]:
    """Run a batch of clean-path jobs in one worker dispatch.

    The coarse-grained sibling of :func:`_execute_job`, used by
    :func:`run_grid` when no retries, timeouts or faults are in play:
    one pool round-trip carries a whole chunk of specs (pickle
    deduplicates the shared config objects across them) and the worker
    writes its own successes into the result cache, so neither the
    per-job dispatch latency nor the cache writes serialize on the
    parent.  Outcomes are per spec, order-aligned, never raising —
    identical to what per-job dispatch would have produced.

    :func:`run_grid` sorts the clean path's pending cells by encode
    key before chunking, so the cells of one encode group usually land
    in the same chunk and hit this worker's stream cache back to back.
    """
    cache = _worker_cache(cache_dir) if cache_dir is not None else None
    outcomes = []
    for spec in specs:
        ok, payload, elapsed = _execute_job(
            spec, trace_dir, 1, True, stream_dir, share_streams
        )
        if ok and cache is not None:
            cache.put(spec.content_hash(), payload)
        outcomes.append((ok, payload, elapsed))
    return outcomes


def _outcome(
    spec: JobSpec,
    ok: bool,
    payload: object,
    elapsed: float,
    attempts: int = 1,
    injected: Sequence[str] = (),
    quarantined: bool = False,
) -> Union[JobResult, JobFailure]:
    if ok:
        return JobResult(
            spec=spec,
            result=payload,
            wall_time_s=elapsed,
            attempts=attempts,
            injected_faults=tuple(injected),
        )
    error_type, message, tb_text = payload
    return JobFailure(
        spec=spec,
        error_type=error_type,
        message=message,
        traceback_text=tb_text,
        wall_time_s=elapsed,
        attempts=attempts,
        quarantined=quarantined,
        injected_faults=tuple(injected),
    )


def resolve_workers(max_workers: Optional[int]) -> int:
    """None -> all cores; values below 1 are a configuration error."""
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _poison_cache_entries(
    spec: JobSpec, cache: Optional[ResultCache]
) -> list[str]:
    """Fire a plan's poison-cache faults against one job's cache entry.

    Corrupts the entry file in place (the cache treats unreadable
    entries as misses and deletes them, so the job recomputes — this
    fault *proves* that recovery path).  Returns injection labels for
    the job's outcome; nothing fires when there is no entry to rot.
    """
    if cache is None or spec.faults is None or not spec.faults:
        return []
    key = spec.content_hash()
    injector = FaultInjector(spec.faults)
    labels = []
    for fault in injector.poison_cache_faults(key):
        path = cache.path_for(key)
        if not path.exists():
            continue
        with path.open("r+b") as handle:
            handle.seek(0)
            handle.write(b"\x00rotten\x00")
            handle.truncate(8)
        injector.record_runner_fault(fault, target=f"cache:{key[:12]}")
        labels.append("poison_cache")
    return labels


def _attempt_labels(spec: JobSpec, attempt: int) -> list[str]:
    """Parent-side labels for worker faults firing in one attempt.

    A crashed worker cannot send its own fault events back, so the
    parent re-evaluates the (deterministic) plan to know what it did
    to the job — same draw, same verdict, any process.
    """
    if spec.faults is None or not spec.faults:
        return []
    injector = FaultInjector(spec.faults)
    return [
        f"{fault.kind}@{attempt}"
        for fault in injector.worker_faults(spec.content_hash(), attempt)
    ]


def run_grid(
    jobs: Iterable[JobSpec],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    trace_dir: Optional[Union[str, Path]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    manifest_path: Optional[Union[str, Path]] = None,
    stream_cache: Optional[EncodedStreamCache] = None,
    share_streams: Optional[bool] = None,
    rate: Optional[RateControlConfig] = None,
    scenario: Optional[ScenarioPack] = None,
    options: Optional[RunnerOptions] = None,
) -> list[Union[JobResult, JobFailure]]:
    """Run a grid of jobs, in parallel, with caching and error capture.

    Args:
        jobs: the grid cells; results come back in the same order.
        options: a :class:`RunnerOptions` bundle supplying defaults for
            every other argument; any argument passed explicitly still
            wins.  ``run_grid(jobs, options=opts)`` is the one-call form
            the CLI verbs and the service daemon share.
        max_workers: process count; ``None`` uses every core, ``1``
            (or a single uncached job, or a platform without a working
            process pool) runs serially in this process.
        cache: optional on-disk result cache.  Cached cells are
            returned immediately (``from_cache=True``) without touching
            the pool; fresh successes are written back.  Failures are
            never cached.
        timeout: per-job wall-clock limit in seconds, enforced while
            collecting pool results — a cell that exceeds it becomes a
            :class:`JobFailure` with ``error_type="TimeoutError"`` (or
            is retried, under a ``retry`` policy).  Best-effort: an
            already-running worker process is not killed, and the
            serial path cannot preempt a job at all.
        trace_dir: when given, every *executed* cell runs under a
            :class:`repro.obs.Tracer` and writes a per-job
            ``job-*.jsonl`` trace into this directory (workers cannot
            share one file); after the grid completes they are merged
            into ``trace_dir/trace.jsonl``.  Cache hits execute
            nothing, so they contribute no spans.  Tracing never
            changes results.
        retry: bounded-retry policy for failed cells.  A cell that
            fails (raises, times out, or takes its pool down) is re-run
            up to ``retry.max_attempts`` total times with the policy's
            jittered exponential backoff between attempts; a cell still
            failing with the budget spent comes back as a *quarantined*
            :class:`JobFailure`.  Default: one attempt, no retries.
        faults: run-level :class:`~repro.faults.FaultPlan` applied to
            every spec that does not already carry its own plan (a
            spec-level plan wins — it is part of the cache key).
        manifest_path: when given, a :class:`GridManifest` JSON file is
            written here after the grid completes — every submitted
            job, succeeded or failed, for machine consumption.  Written
            even when everything succeeded (``complete: true``).
        stream_cache: encoded-stream cache for encode-once execution.
            Defaults to one rooted at ``<cache dir>/streams`` when a
            result ``cache`` is given, else a memory-only cache per
            process.  Workers receive the cache *directory*, never a
            pickled stream.
        share_streams: set False to force every cell through the full
            encode+transmit pipeline (the A/B lever the equivalence
            tests and ``bench_grid_reuse`` pull).  Sharing never
            changes values — cells that differ only in channel
            conditions replay one byte-identical stream; cells whose
            fault plans corrupt the encode stage opt out on their own.
        rate: run-level :class:`~repro.codec.rate.RateControlConfig`
            applied to every spec that does not already carry its own
            (a spec-level config wins — it is part of the cache key).
            This is the matched-bitrate switch: one config, every
            scheme chases the same kbps target.
        scenario: run-level
            :class:`~repro.scenarios.pack.ScenarioPack` applied to
            every spec that does not already carry its own (a
            spec-level pack wins — it is part of the cache key): one
            channel timeline, every cell.

    Returns:
        One :class:`JobResult` or :class:`JobFailure` per input spec,
        order-aligned with ``jobs``.  Outcomes are deterministic: the
        worker count changes wall time, never values.

    Dispatch granularity: when no retries, timeouts or faults are
    configured (the common sweep), uncached jobs are shipped to the
    pool in coarse chunks — one round-trip per chunk instead of per
    job, with workers writing their own cache entries — which removes
    most of the fan-out overhead on small grids.  Retry/timeout/fault
    runs keep per-job futures, since those features need to observe
    individual cells in flight.
    """
    if options is not None:
        if max_workers is None:
            max_workers = options.max_workers
        if cache is None:
            cache = options.build_cache()
        if timeout is None:
            timeout = options.job_timeout
        if trace_dir is None:
            trace_dir = options.trace_dir
        if retry is None:
            retry = options.retry_policy
        if faults is None:
            faults = options.faults
        if manifest_path is None:
            manifest_path = options.manifest_path
        if share_streams is None:
            share_streams = options.share_streams
        if stream_cache is None:
            stream_cache = options.build_stream_cache(cache)
        if rate is None:
            rate = options.rate
        if scenario is None:
            scenario = options.scenario
    if share_streams is None:
        share_streams = True

    specs = list(jobs)
    if faults is not None and faults:
        specs = [
            spec if spec.faults is not None
            else dataclasses.replace(spec, faults=faults)
            for spec in specs
        ]
    if rate is not None:
        specs = [
            spec if spec.rate is not None
            else dataclasses.replace(spec, rate=rate)
            for spec in specs
        ]
    if scenario is not None:
        specs = [
            spec if spec.scenario is not None
            else dataclasses.replace(spec, scenario=scenario)
            for spec in specs
        ]
    retry = retry or RetryPolicy()
    outcomes: dict[int, Union[JobResult, JobFailure]] = {}

    trace_dir_arg: Optional[str] = None
    if trace_dir is not None:
        trace_path = Path(trace_dir)
        trace_path.mkdir(parents=True, exist_ok=True)
        trace_dir_arg = str(trace_path)

    stream_dir_arg: Optional[str] = None
    if share_streams:
        if stream_cache is None:
            stream_cache = EncodedStreamCache(
                cache.directory / "streams" if cache is not None else None
            )
        if stream_cache.directory is not None:
            stream_dir_arg = str(stream_cache.directory)
    else:
        stream_cache = None

    pending: list[int] = []
    labels: dict[int, list[str]] = {}
    for index, spec in enumerate(specs):
        labels[index] = _poison_cache_entries(spec, cache)
        if cache is not None:
            hit = cache.get(spec.content_hash())
            if hit is not None:
                outcomes[index] = JobResult(
                    spec=spec,
                    result=hit,
                    wall_time_s=0.0,
                    from_cache=True,
                    injected_faults=tuple(labels[index]),
                )
                continue
        pending.append(index)

    workers = min(resolve_workers(max_workers), max(len(pending), 1))
    attempts: dict[int, int] = {index: 1 for index in pending}

    def note_attempt(index: int) -> None:
        labels[index].extend(
            _attempt_labels(specs[index], attempts[index])
        )

    def finish(
        index: int,
        ok: bool,
        payload: object,
        elapsed: float,
        cache_written: bool = False,
    ) -> None:
        quarantined = (
            not ok
            and retry.max_attempts > 1
            and attempts[index] >= retry.max_attempts
        )
        outcome = _outcome(
            specs[index],
            ok,
            payload,
            elapsed,
            attempts=attempts[index],
            injected=labels[index],
            quarantined=quarantined,
        )
        if cache is not None and isinstance(outcome, JobResult) and not cache_written:
            cache.put(specs[index].content_hash(), outcome.result)
        outcomes[index] = outcome

    def should_retry(index: int, ok: bool) -> bool:
        if ok or attempts[index] >= retry.max_attempts:
            return False
        time.sleep(
            retry.delay_for(attempts[index], specs[index].content_hash())
        )
        attempts[index] += 1
        note_attempt(index)
        return True

    def collect() -> list[Union[JobResult, JobFailure]]:
        if trace_dir_arg is not None:
            merge_job_traces(trace_dir_arg)
        results = [outcomes[i] for i in range(len(specs))]
        if manifest_path is not None:
            grid_manifest(results).write(manifest_path)
        return results

    def run_serial() -> list[Union[JobResult, JobFailure]]:
        for index in pending:
            note_attempt(index)
            while True:
                ok, payload, elapsed = _execute_job(
                    specs[index],
                    trace_dir_arg,
                    attempts[index],
                    share_streams=share_streams,
                    stream_cache=stream_cache,
                )
                if not should_retry(index, ok):
                    break
            finish(index, ok, payload, elapsed)
        return collect()

    if workers <= 1:
        return run_serial()

    def make_executor() -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(max_workers=workers)

    try:
        executor = make_executor()
    except (NotImplementedError, OSError, PermissionError):
        # No usable process pool on this platform: same results, serially.
        return run_serial()

    def run_chunked() -> list[Union[JobResult, JobFailure]]:
        # Clean-path fan-out: no retries, timeouts or faults anywhere,
        # so nothing needs per-job futures.  Ship the grid in coarse
        # chunks (a few per worker keeps the pool load-balanced) and
        # let workers write their own cache entries; the pickle memo
        # shares the config objects across a chunk's specs, so the
        # per-job submit payload shrinks along with the dispatch count.
        chunksize = max(1, -(-len(pending) // (workers * 4)))
        # Encode-group-contiguous dispatch: cells sharing an encoded
        # stream land in the same chunk (hence the same worker's
        # stream cache) whenever the grid's own order interleaves
        # them.  Output order is unaffected — outcomes key on the
        # original index.
        dispatch = (
            sorted(pending, key=lambda i: (encode_content_hash(specs[i]), i))
            if share_streams
            else pending
        )
        chunks = [
            dispatch[i : i + chunksize]
            for i in range(0, len(dispatch), chunksize)
        ]
        cache_dir = str(cache.directory) if cache is not None else None
        try:
            chunk_futures = [
                executor.submit(
                    _execute_chunk,
                    [specs[i] for i in chunk],
                    trace_dir_arg,
                    cache_dir,
                    stream_dir_arg,
                    share_streams,
                )
                for chunk in chunks
            ]
            for chunk, future in zip(chunks, chunk_futures):
                for index in chunk:
                    note_attempt(index)
                try:
                    chunk_outcomes = future.result()
                except concurrent.futures.process.BrokenProcessPool as error:
                    # The pool died under this chunk; with no retry
                    # budget on the clean path the chunk's cells become
                    # failures (the error-capture contract), and later
                    # chunks report the same way as their futures fail.
                    for index in chunk:
                        finish(
                            index,
                            False,
                            ("BrokenProcessPool", str(error), ""),
                            0.0,
                        )
                    continue
                for index, (ok, payload, elapsed) in zip(
                    chunk, chunk_outcomes
                ):
                    finish(index, ok, payload, elapsed, cache_written=ok)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return collect()

    clean_path = (
        retry.max_attempts == 1
        and timeout is None
        and all(not specs[index].faults for index in pending)
    )
    if clean_path:
        return run_chunked()

    futures: dict[int, concurrent.futures.Future] = {}

    def submit(index: int) -> None:
        futures[index] = executor.submit(
            _execute_job,
            specs[index],
            trace_dir_arg,
            attempts[index],
            True,  # allow_process_exit: the pool absorbs a hard exit
            stream_dir_arg,
            share_streams,
        )

    def rebuild_and_resubmit() -> None:
        # A worker hard-died and took the pool's queues with it: every
        # in-flight future is lost.  Rebuild the pool and resubmit the
        # cells that have no outcome yet.  A cell whose *current*
        # attempt is itself scheduled to hard-exit spends that attempt
        # first (the plan is deterministic, so the parent knows without
        # hearing back) — resubmitting it unchanged would just kill the
        # fresh pool again and bleed the other cells' retry budgets.
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        executor = make_executor()
        for index in pending:
            if index in outcomes:
                continue
            while (
                attempts[index] < retry.max_attempts
                and f"worker_exit@{attempts[index]}" in labels[index]
            ):
                attempts[index] += 1
                note_attempt(index)
            submit(index)

    try:
        for index in pending:
            note_attempt(index)
            submit(index)
        for index in pending:
            while index not in outcomes:
                try:
                    ok, payload, elapsed = futures[index].result(
                        timeout=timeout
                    )
                except concurrent.futures.TimeoutError:
                    futures[index].cancel()
                    ok = False
                    payload = (
                        "TimeoutError",
                        f"job exceeded {timeout}s",
                        "",
                    )
                    elapsed = float(timeout or 0.0)
                except concurrent.futures.process.BrokenProcessPool as error:
                    ok = False
                    payload = ("BrokenProcessPool", str(error), "")
                    elapsed = 0.0
                    if should_retry(index, ok):
                        rebuild_and_resubmit()
                        continue
                    finish(index, ok, payload, elapsed)
                    rebuild_and_resubmit()
                    continue
                if should_retry(index, ok):
                    submit(index)
                    continue
                finish(index, ok, payload, elapsed)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    return collect()


# ---------------------------------------------------------------------------
# Lower-level parallel simulate (for already-built experiment objects)
# ---------------------------------------------------------------------------


def _execute_simulation(task: tuple) -> SimulationResult:
    sequence, strategy, loss_model, config = task
    return simulate(sequence, strategy, loss_model=loss_model, config=config)


def _execute_transmit(task: tuple) -> SimulationResult:
    """Replay one channel realization against a pre-encoded stream.

    The transmit-only sibling of :func:`_execute_simulation` for tasks
    whose encode phase was shared; opens the same ``simulate`` trace
    root so per-run span structure stays uniform either way.
    """
    stream, sequence, loss_model, config = task
    tracer = get_tracer()
    with tracer.span("simulate") as run_span:
        run_span.add(frames=stream.n_frames)
        tracer.metrics.gauge("sim.frames", stream.n_frames)
        return transmit_phase(
            stream, sequence, loss_model=loss_model, config=config
        )


def _simulation_signature(
    task: tuple, digests: dict[int, str]
) -> Optional[str]:
    """Encode-sharing key for one (sequence, strategy, loss, config) task.

    ``None`` (no sharing) when the strategy did not come from the spec
    registry — an unknown strategy type gives no grounds to assume two
    instances encode identically.  ``digests`` memoizes pixel digests
    by object identity so replication sweeps hash their clip once.
    """
    sequence, strategy, _, config = task
    try:
        spec_str, kwargs = strategy_to_spec(strategy)
    except (ValueError, AttributeError):
        return None
    key = id(sequence)
    if key not in digests:
        digests[key] = sequence_digest(sequence)
    try:
        return encode_stream_key(
            sequence=digests[key],
            scheme=spec_str,
            strategy_kwargs=kwargs,
            config=config or SimulationConfig(),
        )
    except TypeError:  # unhashable kwargs: skip sharing, never fail
        return None


def run_simulations(
    tasks: Sequence[tuple],
    max_workers: Optional[int] = 1,
    share_streams: bool = True,
) -> list[SimulationResult]:
    """Run ``simulate`` over (sequence, strategy, loss_model, config) tuples.

    The object-level counterpart of :func:`run_grid`, used by
    :func:`repro.sim.experiment.sweep` and
    :func:`~repro.sim.experiment.replicate`: strategies and loss models
    are instantiated by the *caller* (fresh per run — they are
    stateful), then shipped to workers as initial-state instances.

    With ``share_streams`` (the default), tasks whose strategies round-
    trip through the spec registry are grouped by encode key; each
    group with two or more members is encoded once in the parent and
    its members run only the transmit phase — a replication sweep over
    channel seeds pays for one encode instead of N.  Groups of one and
    non-registry strategies run the full pipeline unchanged, and the
    results are value-identical either way.

    Falls back to serial execution when ``max_workers`` is 1, when a
    task does not pickle (user-supplied objects are arbitrary), or when
    the platform has no working process pool.  Exceptions propagate to
    the caller unchanged, matching the serial semantics these helpers
    always had.
    """
    tasks = list(tasks)

    runs: list[tuple[Callable[[tuple], SimulationResult], tuple]] = []
    if share_streams:
        digests: dict[int, str] = {}
        signatures = [_simulation_signature(task, digests) for task in tasks]
        members: dict[str, int] = {}
        for signature in signatures:
            if signature is not None:
                members[signature] = members.get(signature, 0) + 1
        streams: dict[str, EncodedStream] = {}
        for task, signature in zip(tasks, signatures):
            if signature is None or members[signature] < 2:
                runs.append((_execute_simulation, task))
                continue
            if signature not in streams:
                sequence, strategy, _, config = task
                streams[signature] = encode_phase(
                    sequence, strategy, config=config
                )
            runs.append(
                (
                    _execute_transmit,
                    (streams[signature], task[0], task[2], task[3]),
                )
            )
    else:
        runs = [(_execute_simulation, task) for task in tasks]

    workers = min(resolve_workers(max_workers), max(len(tasks), 1))
    if workers > 1:
        try:
            for _, payload in runs:
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            workers = 1

    if workers <= 1:
        return [fn(payload) for fn, payload in runs]

    try:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    except (NotImplementedError, OSError, PermissionError):
        return [fn(payload) for fn, payload in runs]

    with executor:
        futures = [
            executor.submit(fn, payload) for fn, payload in runs
        ]
        return [future.result() for future in futures]
