"""Parallel experiment execution with on-disk result caching.

The paper's headline results (Figures 5-6) are grids of
``(scheme x PLR x channel seed x sequence)`` simulations.  Every cell is
independent and deterministic given its parameters, which makes the grid
embarrassingly parallel *and* cacheable — this module exploits both:

* :class:`JobSpec` is a *declarative*, picklable description of one
  grid cell: the scheme spec string (the figures' own vocabulary, see
  :mod:`repro.resilience.registry`), the channel parameters, the source
  sequence by name, and the codec/device configuration.  Everything a
  worker process needs to rebuild the experiment from scratch.
* :func:`run_grid` fans a list of specs across a
  :class:`concurrent.futures.ProcessPoolExecutor`, with per-job error
  capture (a crashed cell comes back as a :class:`JobFailure` record
  instead of killing the sweep) and an optional per-job timeout.
* :class:`ResultCache` stores each cell's
  :class:`~repro.sim.pipeline.SimulationResult` on disk under a stable
  content hash of its spec, so re-running a sweep only computes the
  cells whose parameters changed.

Determinism: a job's outcome depends only on its spec (synthetic
sequences, the channel and the codec are all explicitly seeded), so the
same grid produces bit-identical results at any worker count — the
serial path is the ``max_workers=1`` special case of the same code, not
a separate implementation.

Observability: passing ``trace_dir`` to :func:`run_grid` runs every
executed cell under a per-job :class:`repro.obs.Tracer`; workers write
``job-*.jsonl`` trace files (span records cannot ride the result pickle
without coupling results to tracing) and the parent merges them into
``trace_dir/trace.jsonl`` once the grid completes.

:func:`run_simulations` is the lower-level sibling used by
:func:`repro.sim.experiment.sweep` and
:func:`~repro.sim.experiment.replicate`: it parallelizes already-built
(sequence, strategy, loss model) triples, falling back to serial
execution when the objects cannot cross a process boundary (e.g. lambda
factories) or the platform has no working process pool.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.network.loss import UniformLoss
from repro.obs import Tracer, merge_job_traces, use_tracer, write_trace
from repro.resilience.registry import build_strategy
from repro.sim.pipeline import SimulationConfig, SimulationResult, simulate
from repro.video.frame import VideoSequence
from repro.video.synthetic import (
    SEQUENCE_GENERATORS,
    SyntheticConfig,
    generate_sequence,
)

#: Bumped whenever the simulation pipeline changes in a way that makes
#: previously cached results stale (new metrics, changed semantics).
CACHE_SCHEMA_VERSION = 1

#: Default on-disk cache location (overridable per call and via the CLI).
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


# ---------------------------------------------------------------------------
# Stable content hashing
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-serializable primitives, deterministically.

    Dataclasses become sorted dicts tagged with their class name (two
    configs of different types never collide), mappings are
    key-sorted, and tuples/sets become lists.  Floats pass through:
    ``json`` renders them with ``repr``, which round-trips exactly.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        tagged = {"__class__": type(value).__name__}
        for f in dataclasses.fields(value):
            tagged[f.name] = _canonical(getattr(value, f.name))
        return tagged
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for content hashing"
    )


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``payload``.

    Stable across processes and sessions (no ``PYTHONHASHSEED``
    dependence), which is what makes it usable as an on-disk cache key.
    """
    canonical = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def sequence_digest(sequence: VideoSequence) -> str:
    """Content hash of a sequence's pixel data (for non-declarative jobs).

    Used when the caller holds a :class:`VideoSequence` object rather
    than a (name, n_frames) description — e.g. the calibration loop of
    :func:`repro.sim.experiment.match_intra_th_to_size`.
    """
    digest = hashlib.sha256()
    digest.update(sequence.name.encode("utf-8"))
    for frame in sequence:
        digest.update(frame.pixels.tobytes())
        if frame.cb is not None:
            digest.update(frame.cb.tobytes())
        if frame.cr is not None:
            digest.update(frame.cr.tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One declarative cell of an experiment grid.

    Every field is plain data, so the spec pickles cheaply to worker
    processes and hashes stably for the result cache.  The worker
    rebuilds the whole experiment from it: sequence (by registry name,
    or from an explicit :class:`SyntheticConfig`), strategy (from the
    figure-style spec string), channel (uniform loss at ``plr`` with
    ``channel_seed``) and pipeline configuration.

    Attributes:
        scheme: figure-style strategy spec ("NO", "GOP-3", "AIR-24",
            "PGOP-3", "PBPAIR").
        plr: channel packet loss rate; also PBPAIR's assumed ``alpha``
            unless ``pbpair_kwargs`` overrides it.
        channel_seed: loss-pattern seed — the replication axis.
        sequence: synthetic clip name from
            :data:`repro.video.synthetic.SEQUENCE_GENERATORS`, or a
            free-form label when ``synthetic`` is given.
        n_frames: clip length (ignored when ``synthetic`` is given,
            which carries its own ``n_frames``).
        synthetic: explicit sequence parameters; takes precedence over
            the ``sequence``-name lookup.  This keeps the spec fully
            declarative for non-registry clips (tests use tiny frames).
        granularity: channel loss granularity, ``"frame"`` (paper) or
            ``"packet"``.
        config: pipeline configuration (codec, MTU, device profile).
        pbpair_kwargs: extra :class:`repro.core.pbpair.PBPAIRConfig`
            knobs for PBPAIR schemes (``intra_th``, ...).
    """

    scheme: str
    plr: float = 0.1
    channel_seed: int = 0
    sequence: str = "foreman"
    n_frames: int = 90
    synthetic: Optional[SyntheticConfig] = None
    granularity: str = "frame"
    config: SimulationConfig = field(default_factory=SimulationConfig)
    pbpair_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.plr <= 1.0:
            raise ValueError(f"plr must be in [0, 1], got {self.plr}")
        if self.n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {self.n_frames}")
        if self.synthetic is None and self.sequence not in SEQUENCE_GENERATORS:
            known = ", ".join(sorted(SEQUENCE_GENERATORS))
            raise ValueError(
                f"unknown sequence {self.sequence!r} (known: {known}); "
                "pass synthetic=SyntheticConfig(...) for custom clips"
            )
        # Normalize to a plain dict so equality and hashing see the same
        # content regardless of the mapping type the caller used.
        object.__setattr__(self, "pbpair_kwargs", dict(self.pbpair_kwargs))

    @property
    def is_pbpair(self) -> bool:
        return self.scheme.strip().upper() == "PBPAIR"

    def content_hash(self) -> str:
        """Stable cache key: every parameter that can change the result."""
        return stable_hash(
            {
                "kind": "simulate",
                "cache_schema": CACHE_SCHEMA_VERSION,
                "scheme": self.scheme.strip().upper(),
                "plr": self.plr,
                "channel_seed": self.channel_seed,
                "sequence": self.sequence,
                "n_frames": None if self.synthetic else self.n_frames,
                "synthetic": self.synthetic,
                "granularity": self.granularity,
                "config": self.config,
                "pbpair_kwargs": self.pbpair_kwargs,
            }
        )


@dataclass(frozen=True)
class JobResult:
    """A completed grid cell."""

    spec: JobSpec
    result: SimulationResult
    wall_time_s: float
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class JobFailure:
    """A grid cell that raised (or timed out) instead of finishing.

    Captured per cell so one bad parameter combination does not kill an
    hours-long sweep; the traceback text travels back from the worker
    as a string because live traceback objects do not pickle.
    """

    spec: JobSpec
    error_type: str
    message: str
    traceback_text: str = ""
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return False


def build_grid(
    schemes: Sequence[str],
    plrs: Sequence[float],
    channel_seeds: Sequence[int],
    sequences: Sequence[str] = ("foreman",),
    n_frames: int = 90,
    config: Optional[SimulationConfig] = None,
    pbpair_kwargs: Optional[Mapping[str, Any]] = None,
    granularity: str = "frame",
) -> list[JobSpec]:
    """Cartesian product of the paper's four grid axes, in a fixed order.

    Iteration order is sequence-major, then scheme, PLR, seed — stable,
    so result lists line up across runs and worker counts.
    """
    jobs = []
    for sequence in sequences:
        for scheme in schemes:
            for plr in plrs:
                for seed in channel_seeds:
                    jobs.append(
                        JobSpec(
                            scheme=scheme,
                            plr=plr,
                            channel_seed=seed,
                            sequence=sequence,
                            n_frames=n_frames,
                            config=config or SimulationConfig(),
                            pbpair_kwargs=dict(pbpair_kwargs or {}),
                        )
                    )
    return jobs


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Pickle-per-key cache directory for experiment results.

    Writes are atomic (tempfile + rename) so a killed run never leaves a
    truncated entry behind; unreadable entries are treated as misses and
    deleted.  Keys are the stable content hashes produced by
    :meth:`JobSpec.content_hash` / :func:`stable_hash`, so the cache is
    shared safely between sweeps: equal spec, equal key, equal result.
    """

    def __init__(self, directory: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[object]:
        """The cached object, or None (counts a hit/miss either way)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated/corrupt entry (e.g. a version-skewed pickle):
            # drop it and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Job execution
# ---------------------------------------------------------------------------


@lru_cache(maxsize=8)
def _sequence_for(
    sequence: str, n_frames: int, synthetic: Optional[SyntheticConfig]
) -> VideoSequence:
    """Build (and memoize per process) a job's source sequence.

    Workers typically run many cells of the same clip; regenerating it
    per job would dominate small-grid wall time.
    """
    if synthetic is not None:
        return generate_sequence(synthetic, name=sequence)
    return SEQUENCE_GENERATORS[sequence](n_frames)


def run_job(spec: JobSpec) -> SimulationResult:
    """Execute one grid cell from scratch, deterministically.

    Every random element (synthetic sequence, channel) is seeded from
    the spec, so equal specs produce equal results in any process.
    """
    sequence = _sequence_for(spec.sequence, spec.n_frames, spec.synthetic)
    if spec.is_pbpair:
        kwargs = {"plr": spec.plr, **spec.pbpair_kwargs}
        strategy = build_strategy("PBPAIR", **kwargs)
    else:
        strategy = build_strategy(spec.scheme)
    loss_model = UniformLoss(
        plr=spec.plr, seed=spec.channel_seed, granularity=spec.granularity
    )
    return simulate(sequence, strategy, loss_model=loss_model, config=spec.config)


def _job_trace_id(spec: JobSpec) -> str:
    """Human-readable trace label for one grid cell."""
    return (
        f"{spec.scheme} plr={spec.plr:g} seed={spec.channel_seed} "
        f"{spec.sequence}"
    )


def _execute_job(
    spec: JobSpec, trace_dir: Optional[str] = None
) -> tuple[bool, object, float]:
    """Worker entry point: never raises, returns a picklable outcome.

    With ``trace_dir``, the job runs under a fresh :class:`Tracer` and
    leaves its spans in ``trace_dir/job-<hash>.jsonl`` — a per-process
    file, because :class:`SpanRecord` streams cannot cross the pool
    boundary any other way without coupling results to tracing.  The
    parent merges the per-job files after the grid completes.  Tracing
    is observation-only: the returned result is bit-identical either
    way.
    """
    start = time.perf_counter()
    try:
        if trace_dir is not None:
            tracer = Tracer(trace_id=_job_trace_id(spec))
            with use_tracer(tracer):
                result = run_job(spec)
            write_trace(
                Path(trace_dir) / f"job-{spec.content_hash()[:16]}.jsonl",
                tracer,
            )
        else:
            result = run_job(spec)
        return True, result, time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 - error capture is the contract
        payload = (
            type(error).__name__,
            str(error),
            traceback.format_exc(),
        )
        return False, payload, time.perf_counter() - start


def _outcome(
    spec: JobSpec, ok: bool, payload: object, elapsed: float
) -> Union[JobResult, JobFailure]:
    if ok:
        return JobResult(spec=spec, result=payload, wall_time_s=elapsed)
    error_type, message, tb_text = payload
    return JobFailure(
        spec=spec,
        error_type=error_type,
        message=message,
        traceback_text=tb_text,
        wall_time_s=elapsed,
    )


def resolve_workers(max_workers: Optional[int]) -> int:
    """None -> all cores; values below 1 are a configuration error."""
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def run_grid(
    jobs: Iterable[JobSpec],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    trace_dir: Optional[Union[str, Path]] = None,
) -> list[Union[JobResult, JobFailure]]:
    """Run a grid of jobs, in parallel, with caching and error capture.

    Args:
        jobs: the grid cells; results come back in the same order.
        max_workers: process count; ``None`` uses every core, ``1``
            (or a single uncached job, or a platform without a working
            process pool) runs serially in this process.
        cache: optional on-disk result cache.  Cached cells are
            returned immediately (``from_cache=True``) without touching
            the pool; fresh successes are written back.
        timeout: per-job wall-clock limit in seconds, enforced while
            collecting pool results — a cell that exceeds it becomes a
            :class:`JobFailure` with ``error_type="TimeoutError"``.
            Best-effort: an already-running worker process is not
            killed, and the serial path cannot preempt a job at all.
        trace_dir: when given, every *executed* cell runs under a
            :class:`repro.obs.Tracer` and writes a per-job
            ``job-*.jsonl`` trace into this directory (workers cannot
            share one file); after the grid completes they are merged
            into ``trace_dir/trace.jsonl``.  Cache hits execute
            nothing, so they contribute no spans.  Tracing never
            changes results.

    Returns:
        One :class:`JobResult` or :class:`JobFailure` per input spec,
        order-aligned with ``jobs``.  Outcomes are deterministic: the
        worker count changes wall time, never values.
    """
    specs = list(jobs)
    outcomes: dict[int, Union[JobResult, JobFailure]] = {}

    trace_dir_arg: Optional[str] = None
    if trace_dir is not None:
        trace_path = Path(trace_dir)
        trace_path.mkdir(parents=True, exist_ok=True)
        trace_dir_arg = str(trace_path)

    pending: list[int] = []
    for index, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(spec.content_hash())
            if hit is not None:
                outcomes[index] = JobResult(
                    spec=spec, result=hit, wall_time_s=0.0, from_cache=True
                )
                continue
        pending.append(index)

    workers = min(resolve_workers(max_workers), max(len(pending), 1))

    def finish(index: int, ok: bool, payload: object, elapsed: float) -> None:
        outcome = _outcome(specs[index], ok, payload, elapsed)
        if cache is not None and isinstance(outcome, JobResult):
            cache.put(specs[index].content_hash(), outcome.result)
        outcomes[index] = outcome

    def collect() -> list[Union[JobResult, JobFailure]]:
        if trace_dir_arg is not None:
            merge_job_traces(trace_dir_arg)
        return [outcomes[i] for i in range(len(specs))]

    if workers <= 1:
        for index in pending:
            finish(index, *_execute_job(specs[index], trace_dir_arg))
        return collect()

    try:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    except (NotImplementedError, OSError, PermissionError):
        # No usable process pool on this platform: same results, serially.
        for index in pending:
            finish(index, *_execute_job(specs[index], trace_dir_arg))
        return collect()

    with executor:
        futures = {
            index: executor.submit(_execute_job, specs[index], trace_dir_arg)
            for index in pending
        }
        for index in pending:
            try:
                ok, payload, elapsed = futures[index].result(timeout=timeout)
            except concurrent.futures.TimeoutError:
                futures[index].cancel()
                outcomes[index] = JobFailure(
                    spec=specs[index],
                    error_type="TimeoutError",
                    message=f"job exceeded {timeout}s",
                    wall_time_s=float(timeout or 0.0),
                )
                continue
            except concurrent.futures.process.BrokenProcessPool as error:
                outcomes[index] = JobFailure(
                    spec=specs[index],
                    error_type="BrokenProcessPool",
                    message=str(error),
                )
                continue
            finish(index, ok, payload, elapsed)

    return collect()


# ---------------------------------------------------------------------------
# Lower-level parallel simulate (for already-built experiment objects)
# ---------------------------------------------------------------------------


def _execute_simulation(task: tuple) -> SimulationResult:
    sequence, strategy, loss_model, config = task
    return simulate(sequence, strategy, loss_model=loss_model, config=config)


def run_simulations(
    tasks: Sequence[tuple],
    max_workers: Optional[int] = 1,
) -> list[SimulationResult]:
    """Run ``simulate`` over (sequence, strategy, loss_model, config) tuples.

    The object-level counterpart of :func:`run_grid`, used by
    :func:`repro.sim.experiment.sweep` and
    :func:`~repro.sim.experiment.replicate`: strategies and loss models
    are instantiated by the *caller* (fresh per run — they are
    stateful), then shipped to workers as initial-state instances.

    Falls back to serial execution when ``max_workers`` is 1, when a
    task does not pickle (user-supplied objects are arbitrary), or when
    the platform has no working process pool.  Exceptions propagate to
    the caller unchanged, matching the serial semantics these helpers
    always had.
    """
    tasks = list(tasks)
    workers = min(resolve_workers(max_workers), max(len(tasks), 1))
    if workers > 1:
        try:
            for task in tasks:
                pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            workers = 1

    if workers <= 1:
        return [_execute_simulation(task) for task in tasks]

    try:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    except (NotImplementedError, OSError, PermissionError):
        return [_execute_simulation(task) for task in tasks]

    with executor:
        futures = [executor.submit(_execute_simulation, task) for task in tasks]
        return [future.result() for future in futures]
