"""Motion estimation: diamond, three-step and exhaustive searches.

All estimators are vectorized across the entire frame: the full search
computes, for each of the ``(2R+1)^2`` displacements, the SAD of *every*
macroblock at once via a shifted-difference image and a block-sum
reshape; the per-macroblock searches (three-step, diamond) track
per-macroblock centers and gather candidate blocks with advanced
indexing.

The estimators accept an optional *cost function* so that PBPAIR can
bias the search toward reference blocks with high probability of
correctness (Section 3.1.2 of the paper) without the codec knowing
anything about probabilities: the cost function maps
``(sad, dy, dx, mb_row, mb_col)`` arrays to a cost array, and the
estimator minimizes cost while still reporting the true SAD of the
winner (the SAD is what the inter/intra decision needs).

Every estimator reports how many candidate blocks it evaluated; the
energy model prices those evaluations, which is how "skipping ME"
becomes an energy saving.  The same count is also attached to the
enclosing trace span (``sad_blocks`` payload via
:meth:`repro.obs.Tracer.count`) when tracing is enabled, so per-stage
breakdowns can attribute ME work without re-deriving it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.codec.blocks import MB
from repro.obs import get_tracer

#: Cost-function signature: arrays broadcastable to a common shape; must
#: return a float cost of the same broadcast shape.  ``dy``/``dx`` may be
#: scalars (full search evaluates one displacement for all macroblocks at
#: a time) or per-macroblock arrays (three-step search).
MECostFunction = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray
]


@dataclass(frozen=True)
class MotionField:
    """Result of motion estimation over one frame.

    Attributes:
        mvs: ``(mb_rows, mb_cols, 2)`` integer motion vectors ``(dy, dx)``
            pointing into the reference frame.
        sads: ``(mb_rows, mb_cols)`` SAD of each chosen reference block.
        candidates_evaluated: total candidate blocks whose SAD was
            computed (the energy-relevant operation count).
        candidates_per_mb: optional ``(mb_rows, mb_cols)`` breakdown of
            ``candidates_evaluated`` (zero for skipped macroblocks).
            Fixed-cost searches fill it uniformly; the diamond search
            records each macroblock's actual path length.
    """

    mvs: np.ndarray
    sads: np.ndarray
    candidates_evaluated: int
    candidates_per_mb: Optional[np.ndarray] = None

    def mv(self, row: int, col: int) -> tuple[int, int]:
        dy, dx = self.mvs[row, col]
        return int(dy), int(dx)


def _check_pair(current: np.ndarray, reference: np.ndarray) -> None:
    if current.shape != reference.shape:
        raise ValueError(
            f"current {current.shape} and reference {reference.shape} differ"
        )
    if current.ndim != 2 or current.shape[0] % MB or current.shape[1] % MB:
        raise ValueError(f"bad frame shape {current.shape}")


def _block_sums(diff: np.ndarray) -> np.ndarray:
    """Sum a per-pixel array over each 16x16 macroblock."""
    height, width = diff.shape
    return (
        diff.reshape(height // MB, MB, width // MB, MB)
        .sum(axis=(1, 3))
    )


class MotionEstimator(abc.ABC):
    """Interface shared by the search strategies."""

    @abc.abstractmethod
    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        """Find a motion vector for every macroblock of ``current``.

        Args:
            current: luma frame being encoded.
            reference: previous reconstructed luma frame.
            cost_function: optional re-weighting of SAD (PBPAIR).
            active: optional ``(mb_rows, mb_cols)`` bool mask; inactive
                macroblocks are skipped entirely (their ME was pre-empted
                by an intra decision) and contribute no candidate
                evaluations.  Their reported MV is ``(0, 0)`` and SAD 0.
        """


class FullSearchMotionEstimator(MotionEstimator):
    """Exhaustive integer-pel search over a ``+/-search_range`` window."""

    def __init__(self, search_range: int = 7) -> None:
        if not 1 <= search_range < MB:
            raise ValueError(
                f"search_range must be in [1, {MB - 1}], got {search_range}"
            )
        self.search_range = search_range

    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        _check_pair(current, reference)
        srange = self.search_range
        height, width = current.shape
        mb_rows, mb_cols = height // MB, width // MB
        current_i = current.astype(np.int64)
        padded = np.pad(reference.astype(np.int64), srange, mode="edge")

        if active is None:
            active = np.ones((mb_rows, mb_cols), dtype=bool)
        n_active = int(active.sum())

        row_grid, col_grid = np.meshgrid(
            np.arange(mb_rows), np.arange(mb_cols), indexing="ij"
        )

        best_cost = np.full((mb_rows, mb_cols), np.inf)
        best_sad = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        best_mv = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)

        for dy in range(-srange, srange + 1):
            for dx in range(-srange, srange + 1):
                window = padded[
                    srange + dy : srange + dy + height,
                    srange + dx : srange + dx + width,
                ]
                sad_map = _block_sums(np.abs(current_i - window))
                if cost_function is None:
                    cost_map = sad_map.astype(np.float64)
                else:
                    cost_map = cost_function(
                        sad_map,
                        np.int64(dy),
                        np.int64(dx),
                        row_grid,
                        col_grid,
                    )
                better = active & (cost_map < best_cost)
                best_cost = np.where(better, cost_map, best_cost)
                best_sad = np.where(better, sad_map, best_sad)
                best_mv[better] = (dy, dx)

        n_displacements = (2 * srange + 1) ** 2
        per_mb = np.where(active, n_displacements, 0).astype(np.int64)
        get_tracer().count(sad_blocks=n_displacements * n_active)
        return MotionField(
            mvs=best_mv,
            sads=best_sad,
            candidates_evaluated=n_displacements * n_active,
            candidates_per_mb=per_mb,
        )


class ThreeStepMotionEstimator(MotionEstimator):
    """Classic three-step (logarithmic) search.

    Evaluates 9 candidates around a per-macroblock center, halving the
    step each round.  Roughly ``9 * ceil(log2 R)`` candidates per
    macroblock instead of ``(2R+1)^2`` — the low-energy search option.
    """

    def __init__(self, search_range: int = 7) -> None:
        if not 1 <= search_range < MB:
            raise ValueError(
                f"search_range must be in [1, {MB - 1}], got {search_range}"
            )
        self.search_range = search_range

    def _gather_sads(
        self,
        current_mbs: np.ndarray,
        padded: np.ndarray,
        origins_y: np.ndarray,
        origins_x: np.ndarray,
        cand_y: np.ndarray,
        cand_x: np.ndarray,
    ) -> np.ndarray:
        """SAD of each active macroblock against one candidate position.

        ``cand_y``/``cand_x`` are absolute padded-frame origins of the
        candidate blocks, one per active macroblock.
        """
        offsets = np.arange(MB)
        rows = cand_y[:, None, None] + offsets[None, :, None]
        cols = cand_x[:, None, None] + offsets[None, None, :]
        candidates = padded[rows, cols]
        return np.abs(current_mbs - candidates).sum(axis=(1, 2))

    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        _check_pair(current, reference)
        srange = self.search_range
        height, width = current.shape
        mb_rows, mb_cols = height // MB, width // MB
        if active is None:
            active = np.ones((mb_rows, mb_cols), dtype=bool)

        mvs = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
        sads = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        rows_idx, cols_idx = np.nonzero(active)
        if rows_idx.size == 0:
            return MotionField(
                mvs, sads, 0, np.zeros((mb_rows, mb_cols), dtype=np.int64)
            )

        padded = np.pad(reference.astype(np.int64), srange, mode="edge")
        current_i = current.astype(np.int64)
        current_mbs = np.stack(
            [
                current_i[r * MB : (r + 1) * MB, c * MB : (c + 1) * MB]
                for r, c in zip(rows_idx, cols_idx)
            ]
        )
        origins_y = rows_idx * MB + srange
        origins_x = cols_idx * MB + srange

        center_dy = np.zeros(rows_idx.size, dtype=np.int64)
        center_dx = np.zeros(rows_idx.size, dtype=np.int64)
        best_cost = np.full(rows_idx.size, np.inf)
        best_sad = np.zeros(rows_idx.size, dtype=np.int64)
        best_dy = np.zeros(rows_idx.size, dtype=np.int64)
        best_dx = np.zeros(rows_idx.size, dtype=np.int64)
        evaluated = 0

        step = 1 << max(srange.bit_length() - 1, 0)
        seeded = False
        while step >= 1:
            for oy in (-step, 0, step):
                for ox in (-step, 0, step):
                    if seeded and oy == 0 and ox == 0:
                        continue  # center already scored in a prior round
                    dy = np.clip(center_dy + oy, -srange, srange)
                    dx = np.clip(center_dx + ox, -srange, srange)
                    sad = self._gather_sads(
                        current_mbs,
                        padded,
                        origins_y,
                        origins_x,
                        origins_y + dy,
                        origins_x + dx,
                    )
                    evaluated += rows_idx.size
                    if cost_function is None:
                        cost = sad.astype(np.float64)
                    else:
                        cost = cost_function(sad, dy, dx, rows_idx, cols_idx)
                    better = cost < best_cost
                    best_cost = np.where(better, cost, best_cost)
                    best_sad = np.where(better, sad, best_sad)
                    best_dy = np.where(better, dy, best_dy)
                    best_dx = np.where(better, dx, best_dx)
            center_dy, center_dx = best_dy.copy(), best_dx.copy()
            seeded = True
            step //= 2

        mvs[rows_idx, cols_idx, 0] = best_dy
        mvs[rows_idx, cols_idx, 1] = best_dx
        sads[rows_idx, cols_idx] = best_sad
        per_mb = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        per_mb[rows_idx, cols_idx] = evaluated // rows_idx.size
        get_tracer().count(sad_blocks=evaluated)
        return MotionField(mvs, sads, evaluated, per_mb)


class DiamondSearchMotionEstimator(MotionEstimator):
    """Diamond search with early termination — the adaptive-cost search.

    Real encoders (TMN H.263, MPEG-4 VM, x264) do not pay a fixed price
    per macroblock: an easy macroblock (static content, good predictor)
    terminates after a handful of SAD evaluations while a hard one
    (fast or complex motion) walks a long search path.  That cost
    asymmetry is what makes *which* macroblocks a scheme intra-codes
    matter for energy, not just how many: skipping the searches that
    would have been expensive (PBPAIR's content-driven refresh) saves
    far more than skipping average ones (PGOP's columns).

    Algorithm: evaluate the center; accept immediately if SAD is below
    ``early_exit_sad`` (zero-motion shortcut).  Otherwise iterate the
    large diamond (8 points, step 2) until the best stays at the
    center, then refine with the small diamond (4 points, step 1).
    """

    _LARGE_DIAMOND = (
        (-2, 0), (-1, -1), (-1, 1), (0, -2), (0, 2), (1, -1), (1, 1), (2, 0),
    )
    _SMALL_DIAMOND = ((-1, 0), (0, -1), (0, 1), (1, 0))

    def __init__(self, search_range: int = 15, early_exit_sad: int = 1600) -> None:
        if search_range < 1:
            raise ValueError(f"search_range must be >= 1, got {search_range}")
        if early_exit_sad < 0:
            raise ValueError("early_exit_sad must be >= 0")
        self.search_range = search_range
        self.early_exit_sad = early_exit_sad

    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        _check_pair(current, reference)
        srange = self.search_range
        height, width = current.shape
        mb_rows, mb_cols = height // MB, width // MB
        if active is None:
            active = np.ones((mb_rows, mb_cols), dtype=bool)

        mvs = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
        sads = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        rows_idx, cols_idx = np.nonzero(active)
        n = rows_idx.size
        if n == 0:
            return MotionField(
                mvs, sads, 0, np.zeros((mb_rows, mb_cols), dtype=np.int64)
            )

        padded = np.pad(reference.astype(np.int64), srange, mode="edge")
        current_i = current.astype(np.int64)
        current_mbs = np.stack(
            [
                current_i[r * MB : (r + 1) * MB, c * MB : (c + 1) * MB]
                for r, c in zip(rows_idx, cols_idx)
            ]
        )
        origins_y = rows_idx * MB + srange
        origins_x = cols_idx * MB + srange
        windows = np.lib.stride_tricks.sliding_window_view(padded, (MB, MB))

        def gather(
            cur: np.ndarray,
            oy: np.ndarray,
            ox: np.ndarray,
            dy: np.ndarray,
            dx: np.ndarray,
        ) -> np.ndarray:
            candidates = windows[oy + dy, ox + dx]
            return np.abs(cur - candidates).sum(axis=(1, 2))

        def score(
            sel: np.ndarray, sad: np.ndarray, dy: np.ndarray, dx: np.ndarray
        ) -> np.ndarray:
            if cost_function is None:
                return sad.astype(np.float64)
            return cost_function(sad, dy, dx, rows_idx[sel], cols_idx[sel])

        best_dy = np.zeros(n, dtype=np.int64)
        best_dx = np.zeros(n, dtype=np.int64)
        everyone = np.ones(n, dtype=bool)
        best_sad = gather(current_mbs, origins_y, origins_x, best_dy, best_dx)
        best_cost = score(everyone, best_sad, best_dy, best_dx)
        evaluated = n
        evals_per_mb = np.ones(n, dtype=np.int64)

        searching = best_sad >= self.early_exit_sad  # zero-motion shortcut
        # Large-diamond walk: each round moves every still-searching
        # macroblock's center to its best neighbour; a macroblock whose
        # center survives the round graduates to the small-diamond pass.
        for _ in range(2 * srange):
            if not searching.any():
                break
            improved = np.zeros(n, dtype=bool)
            sel = np.nonzero(searching)[0]
            cur = current_mbs[sel]
            oy_sel = origins_y[sel]
            ox_sel = origins_x[sel]
            for oy, ox in self._LARGE_DIAMOND:
                dy = np.clip(best_dy[sel] + oy, -srange, srange)
                dx = np.clip(best_dx[sel] + ox, -srange, srange)
                sad = gather(cur, oy_sel, ox_sel, dy, dx)
                cost = score(searching, sad, dy, dx)
                evaluated += sel.size
                evals_per_mb[sel] += 1
                better = cost < best_cost[sel]
                idx = sel[better]
                best_cost[idx] = cost[better]
                best_sad[idx] = sad[better]
                best_dy[idx] = dy[better]
                best_dx[idx] = dx[better]
                improved[idx] = True
            searching &= improved

        # Small-diamond refinement for everything that actually searched.
        refine = best_sad >= self.early_exit_sad
        if refine.any():
            sel = np.nonzero(refine)[0]
            cur = current_mbs[sel]
            oy_sel = origins_y[sel]
            ox_sel = origins_x[sel]
            for oy, ox in self._SMALL_DIAMOND:
                dy = np.clip(best_dy[sel] + oy, -srange, srange)
                dx = np.clip(best_dx[sel] + ox, -srange, srange)
                sad = gather(cur, oy_sel, ox_sel, dy, dx)
                cost = score(refine, sad, dy, dx)
                evaluated += sel.size
                evals_per_mb[sel] += 1
                better = cost < best_cost[sel]
                idx = sel[better]
                best_cost[idx] = cost[better]
                best_sad[idx] = sad[better]
                best_dy[idx] = dy[better]
                best_dx[idx] = dx[better]

        mvs[rows_idx, cols_idx, 0] = best_dy
        mvs[rows_idx, cols_idx, 1] = best_dx
        sads[rows_idx, cols_idx] = best_sad
        per_mb = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        per_mb[rows_idx, cols_idx] = evals_per_mb
        get_tracer().count(sad_blocks=evaluated)
        return MotionField(mvs, sads, evaluated, per_mb)


def build_motion_estimator(
    kind: str, search_range: int, early_exit_sad: int = 1600
) -> MotionEstimator:
    """Factory used by the encoder: ``"full"``, ``"three-step"`` or
    ``"diamond"``."""
    if kind == "full":
        return FullSearchMotionEstimator(search_range)
    if kind == "three-step":
        return ThreeStepMotionEstimator(search_range)
    if kind == "diamond":
        return DiamondSearchMotionEstimator(search_range, early_exit_sad)
    raise ValueError(f"unknown motion search kind {kind!r}")


def motion_compensate_chroma(
    reference_plane: np.ndarray, mvs: np.ndarray
) -> np.ndarray:
    """4:2:0 chroma prediction: one 8x8 fetch per macroblock.

    ``mvs`` is the *luma* motion field; each component is halved with
    :func:`repro.codec.blocks.chroma_vector` (round half away from
    zero), the same mapping the decoder applies.
    """
    from repro.codec.blocks import BLK, chroma_vector

    height, width = reference_plane.shape
    mb_rows, mb_cols = height // BLK, width // BLK
    if mvs.shape != (mb_rows, mb_cols, 2):
        raise ValueError(f"motion field shape {mvs.shape} mismatches plane")
    pad = 8
    padded = np.pad(reference_plane, pad, mode="edge")
    prediction = np.empty_like(reference_plane)
    for row in range(mb_rows):
        for col in range(mb_cols):
            cdy = chroma_vector(int(mvs[row, col, 0]))
            cdx = chroma_vector(int(mvs[row, col, 1]))
            y = row * BLK + pad + cdy
            x = col * BLK + pad + cdx
            prediction[row * BLK : (row + 1) * BLK, col * BLK : (col + 1) * BLK] = (
                padded[y : y + BLK, x : x + BLK]
            )
    return prediction


def motion_compensate(reference: np.ndarray, mvs: np.ndarray) -> np.ndarray:
    """Build the per-macroblock motion-compensated prediction frame.

    ``mvs`` is an ``(mb_rows, mb_cols, 2)`` integer field; out-of-frame
    references use edge padding, matching the estimators.
    """
    height, width = reference.shape
    mb_rows, mb_cols = height // MB, width // MB
    if mvs.shape != (mb_rows, mb_cols, 2):
        raise ValueError(f"motion field shape {mvs.shape} mismatches frame")
    max_mag = int(np.abs(mvs).max()) if mvs.size else 0
    pad = max(max_mag, 1)
    padded = np.pad(reference, pad, mode="edge")
    prediction = np.empty_like(reference)
    for row in range(mb_rows):
        for col in range(mb_cols):
            dy, dx = int(mvs[row, col, 0]), int(mvs[row, col, 1])
            y = row * MB + pad + dy
            x = col * MB + pad + dx
            prediction[row * MB : (row + 1) * MB, col * MB : (col + 1) * MB] = (
                padded[y : y + MB, x : x + MB]
            )
    return prediction
