"""Motion estimation: diamond, three-step and exhaustive searches.

All estimators are vectorized across the entire frame: the full search
computes, for each of the ``(2R+1)^2`` displacements, the SAD of *every*
macroblock at once via a shifted-difference image and a block-sum
reshape; the per-macroblock searches (three-step, diamond) track
per-macroblock centers and score whole search rounds through
:func:`candidate_sads`, one strided-window gather and one
absolute-difference reduction per round rather than one per candidate
offset.  The batching never changes a decision: round winners are
recovered with a first-minimum ``argmin`` that reproduces the
sequential visit order, and the diamond walk re-plays its (rare)
within-round center moves exactly — streams stay byte-for-byte
identical to the scalar search.

The estimators accept an optional *cost function* so that PBPAIR can
bias the search toward reference blocks with high probability of
correctness (Section 3.1.2 of the paper) without the codec knowing
anything about probabilities: the cost function maps
``(sad, dy, dx, mb_row, mb_col)`` arrays to a cost array, and the
estimator minimizes cost while still reporting the true SAD of the
winner (the SAD is what the inter/intra decision needs).

Every estimator reports how many candidate blocks it evaluated; the
energy model prices those evaluations, which is how "skipping ME"
becomes an energy saving.  The same count is also attached to the
enclosing trace span (``sad_blocks`` payload via
:meth:`repro.obs.Tracer.count`) when tracing is enabled, so per-stage
breakdowns can attribute ME work without re-deriving it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.codec.blocks import MB
from repro.obs import get_tracer

#: Cost-function signature: arrays broadcastable to a common shape; must
#: return a float cost of the same broadcast shape.  ``dy``/``dx`` may be
#: scalars (full search evaluates one displacement for all macroblocks at
#: a time), per-macroblock ``(k,)`` arrays, or whole batched rounds of
#: shape ``(n_offsets, k)`` against ``(k,)`` ``mb_row``/``mb_col`` (the
#: three-step and diamond searches score every candidate of a round in
#: one call).
MECostFunction = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray
]


@dataclass(frozen=True)
class MotionField:
    """Result of motion estimation over one frame.

    Attributes:
        mvs: ``(mb_rows, mb_cols, 2)`` integer motion vectors ``(dy, dx)``
            pointing into the reference frame.
        sads: ``(mb_rows, mb_cols)`` SAD of each chosen reference block.
        candidates_evaluated: total candidate blocks whose SAD was
            computed (the energy-relevant operation count).
        candidates_per_mb: optional ``(mb_rows, mb_cols)`` breakdown of
            ``candidates_evaluated`` (zero for skipped macroblocks).
            Fixed-cost searches fill it uniformly; the diamond search
            records each macroblock's actual path length.
    """

    mvs: np.ndarray
    sads: np.ndarray
    candidates_evaluated: int
    candidates_per_mb: Optional[np.ndarray] = None

    def mv(self, row: int, col: int) -> tuple[int, int]:
        dy, dx = self.mvs[row, col]
        return int(dy), int(dx)


def _check_pair(current: np.ndarray, reference: np.ndarray) -> None:
    if current.shape != reference.shape:
        raise ValueError(
            f"current {current.shape} and reference {reference.shape} differ"
        )
    if current.ndim != 2 or current.shape[0] % MB or current.shape[1] % MB:
        raise ValueError(f"bad frame shape {current.shape}")


def _block_sums(diff: np.ndarray) -> np.ndarray:
    """Sum a per-pixel array over each 16x16 macroblock."""
    height, width = diff.shape
    return (
        diff.reshape(height // MB, MB, width // MB, MB)
        .sum(axis=(1, 3))
    )


def candidate_sads(
    current_mbs: np.ndarray,
    windows: np.ndarray,
    origin_y: np.ndarray,
    origin_x: np.ndarray,
    dy: np.ndarray,
    dx: np.ndarray,
) -> np.ndarray:
    """Batched SAD evaluator: every candidate of every macroblock at once.

    The workhorse of the per-macroblock searches.  ``windows`` is a
    ``sliding_window_view`` of the padded reference exposing every 16x16
    block as ``windows[y, x]`` without copying; ``origin_y``/``origin_x``
    are the ``(k,)`` padded-frame origins of the macroblocks being
    searched, and ``dy``/``dx`` are displacement arrays of shape ``(k,)``
    (one candidate per macroblock) or ``(n_offsets, k)`` (a whole search
    round — e.g. all 8 large-diamond neighbours of every macroblock).
    One advanced-indexing gather plus one absolute-difference reduction
    scores the entire round; returns int64 SADs shaped like ``dy``.

    The gather already copies, so the difference and absolute value are
    computed in place inside that copy: allocating two further
    round-sized temporaries per call makes the allocator the bottleneck
    on whole-round ``(n_offsets, k, 16, 16)`` stacks.
    """
    candidates = windows[origin_y + dy, origin_x + dx]
    np.subtract(current_mbs, candidates, out=candidates)
    np.abs(candidates, out=candidates)
    return candidates.sum(axis=(-2, -1))


class MotionEstimator(abc.ABC):
    """Interface shared by the search strategies."""

    @abc.abstractmethod
    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        """Find a motion vector for every macroblock of ``current``.

        Args:
            current: luma frame being encoded.
            reference: previous reconstructed luma frame.
            cost_function: optional re-weighting of SAD (PBPAIR).
            active: optional ``(mb_rows, mb_cols)`` bool mask; inactive
                macroblocks are skipped entirely (their ME was pre-empted
                by an intra decision) and contribute no candidate
                evaluations.  Their reported MV is ``(0, 0)`` and SAD 0.
        """


class FullSearchMotionEstimator(MotionEstimator):
    """Exhaustive integer-pel search over a ``+/-search_range`` window."""

    def __init__(self, search_range: int = 7) -> None:
        if not 1 <= search_range < MB:
            raise ValueError(
                f"search_range must be in [1, {MB - 1}], got {search_range}"
            )
        self.search_range = search_range

    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        _check_pair(current, reference)
        srange = self.search_range
        height, width = current.shape
        mb_rows, mb_cols = height // MB, width // MB
        current_i = current.astype(np.int64)
        padded = np.pad(reference.astype(np.int64), srange, mode="edge")

        if active is None:
            active = np.ones((mb_rows, mb_cols), dtype=bool)
        n_active = int(active.sum())

        row_grid, col_grid = np.meshgrid(
            np.arange(mb_rows), np.arange(mb_cols), indexing="ij"
        )

        best_cost = np.full((mb_rows, mb_cols), np.inf)
        best_sad = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        best_mv = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)

        for dy in range(-srange, srange + 1):
            for dx in range(-srange, srange + 1):
                window = padded[
                    srange + dy : srange + dy + height,
                    srange + dx : srange + dx + width,
                ]
                sad_map = _block_sums(np.abs(current_i - window))
                if cost_function is None:
                    cost_map = sad_map.astype(np.float64)
                else:
                    cost_map = cost_function(
                        sad_map,
                        np.int64(dy),
                        np.int64(dx),
                        row_grid,
                        col_grid,
                    )
                better = active & (cost_map < best_cost)
                best_cost = np.where(better, cost_map, best_cost)
                best_sad = np.where(better, sad_map, best_sad)
                best_mv[better] = (dy, dx)

        n_displacements = (2 * srange + 1) ** 2
        per_mb = np.where(active, n_displacements, 0).astype(np.int64)
        get_tracer().count(sad_blocks=n_displacements * n_active)
        return MotionField(
            mvs=best_mv,
            sads=best_sad,
            candidates_evaluated=n_displacements * n_active,
            candidates_per_mb=per_mb,
        )


class ThreeStepMotionEstimator(MotionEstimator):
    """Classic three-step (logarithmic) search.

    Evaluates 9 candidates around a per-macroblock center, halving the
    step each round.  Roughly ``9 * ceil(log2 R)`` candidates per
    macroblock instead of ``(2R+1)^2`` — the low-energy search option.
    """

    def __init__(self, search_range: int = 7) -> None:
        if not 1 <= search_range < MB:
            raise ValueError(
                f"search_range must be in [1, {MB - 1}], got {search_range}"
            )
        self.search_range = search_range

    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        _check_pair(current, reference)
        srange = self.search_range
        height, width = current.shape
        mb_rows, mb_cols = height // MB, width // MB
        if active is None:
            active = np.ones((mb_rows, mb_cols), dtype=bool)

        mvs = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
        sads = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        rows_idx, cols_idx = np.nonzero(active)
        if rows_idx.size == 0:
            return MotionField(
                mvs, sads, 0, np.zeros((mb_rows, mb_cols), dtype=np.int64)
            )

        padded = np.pad(reference.astype(np.int64), srange, mode="edge")
        current_i = current.astype(np.int64)
        current_mbs = np.stack(
            [
                current_i[r * MB : (r + 1) * MB, c * MB : (c + 1) * MB]
                for r, c in zip(rows_idx, cols_idx)
            ]
        )
        origins_y = rows_idx * MB + srange
        origins_x = cols_idx * MB + srange
        windows = np.lib.stride_tricks.sliding_window_view(padded, (MB, MB))

        center_dy = np.zeros(rows_idx.size, dtype=np.int64)
        center_dx = np.zeros(rows_idx.size, dtype=np.int64)
        best_cost = np.full(rows_idx.size, np.inf)
        best_sad = np.zeros(rows_idx.size, dtype=np.int64)
        best_dy = np.zeros(rows_idx.size, dtype=np.int64)
        best_dx = np.zeros(rows_idx.size, dtype=np.int64)
        lanes = np.arange(rows_idx.size)
        evaluated = 0

        step = 1 << max(srange.bit_length() - 1, 0)
        seeded = False
        while step >= 1:
            # The whole 9-point (8 once seeded) round is scored with one
            # batched gather; taking the *first* minimum per macroblock
            # (np.argmin) reproduces the sequential visit order exactly,
            # because under strict-< updates the first offset attaining
            # the round minimum is the one that ends up winning.
            offsets = np.array(
                [
                    (oy, ox)
                    for oy in (-step, 0, step)
                    for ox in (-step, 0, step)
                    if not (seeded and oy == 0 and ox == 0)
                ],
                dtype=np.int64,
            )
            dy = np.clip(center_dy + offsets[:, :1], -srange, srange)
            dx = np.clip(center_dx + offsets[:, 1:], -srange, srange)
            sad = candidate_sads(
                current_mbs, windows, origins_y, origins_x, dy, dx
            )
            evaluated += offsets.shape[0] * rows_idx.size
            if cost_function is None:
                cost = sad.astype(np.float64)
            else:
                cost = cost_function(sad, dy, dx, rows_idx, cols_idx)
            pick = np.argmin(cost, axis=0)
            round_cost = cost[pick, lanes]
            better = round_cost < best_cost
            best_cost = np.where(better, round_cost, best_cost)
            best_sad = np.where(better, sad[pick, lanes], best_sad)
            best_dy = np.where(better, dy[pick, lanes], best_dy)
            best_dx = np.where(better, dx[pick, lanes], best_dx)
            center_dy, center_dx = best_dy.copy(), best_dx.copy()
            seeded = True
            step //= 2

        mvs[rows_idx, cols_idx, 0] = best_dy
        mvs[rows_idx, cols_idx, 1] = best_dx
        sads[rows_idx, cols_idx] = best_sad
        per_mb = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        per_mb[rows_idx, cols_idx] = evaluated // rows_idx.size
        get_tracer().count(sad_blocks=evaluated)
        return MotionField(mvs, sads, evaluated, per_mb)


class DiamondSearchMotionEstimator(MotionEstimator):
    """Diamond search with early termination — the adaptive-cost search.

    Real encoders (TMN H.263, MPEG-4 VM, x264) do not pay a fixed price
    per macroblock: an easy macroblock (static content, good predictor)
    terminates after a handful of SAD evaluations while a hard one
    (fast or complex motion) walks a long search path.  That cost
    asymmetry is what makes *which* macroblocks a scheme intra-codes
    matter for energy, not just how many: skipping the searches that
    would have been expensive (PBPAIR's content-driven refresh) saves
    far more than skipping average ones (PGOP's columns).

    Algorithm: evaluate the center; accept immediately if SAD is below
    ``early_exit_sad`` (zero-motion shortcut).  Otherwise iterate the
    large diamond (8 points, step 2) until the best stays at the
    center, then refine with the small diamond (4 points, step 1).
    """

    _LARGE_DIAMOND = (
        (-2, 0), (-1, -1), (-1, 1), (0, -2), (0, 2), (1, -1), (1, 1), (2, 0),
    )
    _SMALL_DIAMOND = ((-1, 0), (0, -1), (0, 1), (1, 0))

    def __init__(self, search_range: int = 15, early_exit_sad: int = 1600) -> None:
        if search_range < 1:
            raise ValueError(f"search_range must be >= 1, got {search_range}")
        if early_exit_sad < 0:
            raise ValueError("early_exit_sad must be >= 0")
        self.search_range = search_range
        self.early_exit_sad = early_exit_sad

    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        cost_function: Optional[MECostFunction] = None,
        active: Optional[np.ndarray] = None,
    ) -> MotionField:
        _check_pair(current, reference)
        srange = self.search_range
        height, width = current.shape
        mb_rows, mb_cols = height // MB, width // MB
        if active is None:
            active = np.ones((mb_rows, mb_cols), dtype=bool)

        mvs = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
        sads = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        rows_idx, cols_idx = np.nonzero(active)
        n = rows_idx.size
        if n == 0:
            return MotionField(
                mvs, sads, 0, np.zeros((mb_rows, mb_cols), dtype=np.int64)
            )

        padded = np.pad(reference.astype(np.int64), srange, mode="edge")
        current_i = current.astype(np.int64)
        current_mbs = np.stack(
            [
                current_i[r * MB : (r + 1) * MB, c * MB : (c + 1) * MB]
                for r, c in zip(rows_idx, cols_idx)
            ]
        )
        origins_y = rows_idx * MB + srange
        origins_x = cols_idx * MB + srange
        windows = np.lib.stride_tricks.sliding_window_view(padded, (MB, MB))

        def score(
            sel: np.ndarray, sad: np.ndarray, dy: np.ndarray, dx: np.ndarray
        ) -> np.ndarray:
            if cost_function is None:
                return sad.astype(np.float64)
            return cost_function(sad, dy, dx, rows_idx[sel], cols_idx[sel])

        best_dy = np.zeros(n, dtype=np.int64)
        best_dx = np.zeros(n, dtype=np.int64)
        everyone = np.ones(n, dtype=bool)
        best_sad = candidate_sads(
            current_mbs, windows, origins_y, origins_x, best_dy, best_dx
        )
        best_cost = score(everyone, best_sad, best_dy, best_dx)
        evaluated = n
        evals_per_mb = np.ones(n, dtype=np.int64)

        def walk_round(offsets: np.ndarray, sel: np.ndarray) -> np.ndarray:
            """One drift-exact diamond round; returns the improved lanes.

            The sequential walk visits the round's offsets in order and
            *moves the center as soon as one improves*, so later offsets
            are relative to the already-updated position.  Phase 1 below
            scores the entire round against the fixed incoming center in
            one batched reduction — which is exact up to and including
            the first improving offset of each macroblock (nothing moved
            before it).  Macroblocks with no improving offset are fully
            decided by that single reduction; only the (typically few)
            movers re-play their remaining offsets in phase 2, one
            batched step per offset rank, reproducing the drift bit for
            bit.
            """
            n_off = offsets.shape[0]
            dy = np.clip(best_dy[sel] + offsets[:, :1], -srange, srange)
            dx = np.clip(best_dx[sel] + offsets[:, 1:], -srange, srange)
            sad = candidate_sads(
                current_mbs[sel], windows, origins_y[sel], origins_x[sel],
                dy, dx,
            )
            cost = score(sel, sad, dy, dx)
            improves = cost < best_cost[sel]
            lanes = np.nonzero(improves.any(axis=0))[0]
            if lanes.size == 0:
                return sel[:0]
            first = np.argmax(improves[:, lanes], axis=0)
            idx = sel[lanes]
            best_cost[idx] = cost[first, lanes]
            best_sad[idx] = sad[first, lanes]
            best_dy[idx] = dy[first, lanes]
            best_dx[idx] = dx[first, lanes]
            improved = idx
            # Phase 2: drifted lanes continue from the offset after their
            # first improvement, centers now live.
            ptr = first + 1
            live = ptr < n_off
            idx, ptr = idx[live], ptr[live]
            while idx.size:
                off = offsets[ptr]
                dy_c = np.clip(best_dy[idx] + off[:, 0], -srange, srange)
                dx_c = np.clip(best_dx[idx] + off[:, 1], -srange, srange)
                sad_c = candidate_sads(
                    current_mbs[idx], windows,
                    origins_y[idx], origins_x[idx], dy_c, dx_c,
                )
                cost_c = score(idx, sad_c, dy_c, dx_c)
                better = cost_c < best_cost[idx]
                moved = idx[better]
                best_cost[moved] = cost_c[better]
                best_sad[moved] = sad_c[better]
                best_dy[moved] = dy_c[better]
                best_dx[moved] = dx_c[better]
                ptr = ptr + 1
                live = ptr < n_off
                idx, ptr = idx[live], ptr[live]
            return improved

        large = np.asarray(self._LARGE_DIAMOND, dtype=np.int64)
        small = np.asarray(self._SMALL_DIAMOND, dtype=np.int64)

        searching = best_sad >= self.early_exit_sad  # zero-motion shortcut
        # Large-diamond walk: each round moves every still-searching
        # macroblock's center to its best neighbour; a macroblock whose
        # center survives the round graduates to the small-diamond pass.
        for _ in range(2 * srange):
            if not searching.any():
                break
            sel = np.nonzero(searching)[0]
            improved = walk_round(large, sel)
            evaluated += large.shape[0] * sel.size
            evals_per_mb[sel] += large.shape[0]
            searching = np.zeros(n, dtype=bool)
            searching[improved] = True

        # Small-diamond refinement for everything that actually searched.
        refine = best_sad >= self.early_exit_sad
        if refine.any():
            sel = np.nonzero(refine)[0]
            walk_round(small, sel)
            evaluated += small.shape[0] * sel.size
            evals_per_mb[sel] += small.shape[0]

        mvs[rows_idx, cols_idx, 0] = best_dy
        mvs[rows_idx, cols_idx, 1] = best_dx
        sads[rows_idx, cols_idx] = best_sad
        per_mb = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        per_mb[rows_idx, cols_idx] = evals_per_mb
        get_tracer().count(sad_blocks=evaluated)
        return MotionField(mvs, sads, evaluated, per_mb)


def build_motion_estimator(
    kind: str, search_range: int, early_exit_sad: int = 1600
) -> MotionEstimator:
    """Factory used by the encoder: ``"full"``, ``"three-step"`` or
    ``"diamond"``."""
    if kind == "full":
        return FullSearchMotionEstimator(search_range)
    if kind == "three-step":
        return ThreeStepMotionEstimator(search_range)
    if kind == "diamond":
        return DiamondSearchMotionEstimator(search_range, early_exit_sad)
    raise ValueError(f"unknown motion search kind {kind!r}")


def motion_compensate_chroma(
    reference_plane: np.ndarray, mvs: np.ndarray
) -> np.ndarray:
    """4:2:0 chroma prediction: one 8x8 fetch per macroblock.

    ``mvs`` is the *luma* motion field; each component is halved with
    :func:`repro.codec.blocks.chroma_vector` (round half away from
    zero), the same mapping the decoder applies.
    """
    from repro.codec.blocks import BLK, chroma_vector

    height, width = reference_plane.shape
    mb_rows, mb_cols = height // BLK, width // BLK
    if mvs.shape != (mb_rows, mb_cols, 2):
        raise ValueError(f"motion field shape {mvs.shape} mismatches plane")
    pad = 8
    padded = np.pad(reference_plane, pad, mode="edge")
    prediction = np.empty_like(reference_plane)
    for row in range(mb_rows):
        for col in range(mb_cols):
            cdy = chroma_vector(int(mvs[row, col, 0]))
            cdx = chroma_vector(int(mvs[row, col, 1]))
            y = row * BLK + pad + cdy
            x = col * BLK + pad + cdx
            prediction[row * BLK : (row + 1) * BLK, col * BLK : (col + 1) * BLK] = (
                padded[y : y + BLK, x : x + BLK]
            )
    return prediction


def motion_compensate(reference: np.ndarray, mvs: np.ndarray) -> np.ndarray:
    """Build the per-macroblock motion-compensated prediction frame.

    ``mvs`` is an ``(mb_rows, mb_cols, 2)`` integer field; out-of-frame
    references use edge padding, matching the estimators.
    """
    height, width = reference.shape
    mb_rows, mb_cols = height // MB, width // MB
    if mvs.shape != (mb_rows, mb_cols, 2):
        raise ValueError(f"motion field shape {mvs.shape} mismatches frame")
    max_mag = int(np.abs(mvs).max()) if mvs.size else 0
    pad = max(max_mag, 1)
    padded = np.pad(reference, pad, mode="edge")
    prediction = np.empty_like(reference)
    for row in range(mb_rows):
        for col in range(mb_cols):
            dy, dx = int(mvs[row, col, 0]), int(mvs[row, col, 1])
            y = row * MB + pad + dy
            x = col * MB + pad + dx
            prediction[row * MB : (row + 1) * MB, col * MB : (col + 1) * MB] = (
                padded[y : y + MB, x : x + MB]
            )
    return prediction
