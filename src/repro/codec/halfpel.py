"""Half-pel motion compensation and search refinement (opt-in).

H.263's motion vectors have half-pixel precision: the predictor may sit
between reference pixels, computed by bilinear averaging with H.263's
rounding (``(a + b + 1) >> 1`` on one axis, ``(a + b + c + d + 2) >> 2``
diagonally).  Sub-pixel prediction is where a large share of real
codecs' coding gain on smooth motion comes from.

This module is enabled with ``CodecConfig(half_pel=True)``.  Motion
vector *units* then change from integer pixels to half-pixels
everywhere they are coded or compensated (``EncodedMacroblock.mv``,
``MacroblockDecision.mv``, the bitstream); strategy feedback stays in
pixel units (``repro.core.correctness`` reasons about macroblock
overlap, a pixel-domain notion).

The search strategy is the classic two-stage one: the integer-pel
estimators find the best whole-pixel vector, then
:func:`refine_half_pel` scores the eight half-pel neighbours around it
(8 extra SAD candidates per searched macroblock, charged to the
counters like any other candidates).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codec.blocks import MB


def halfpel_to_pixels(mvs_half: np.ndarray) -> np.ndarray:
    """Half-pel motion field -> integer-pixel field (truncate to zero).

    Used for strategy feedback and chroma derivation; truncation keeps
    the overlap reasoning (which macroblocks a reference touches)
    conservative and within the +/-15 range the correctness update
    assumes.
    """
    return np.fix(np.asarray(mvs_half) / 2.0).astype(np.int64)


def _average_window(window: np.ndarray, fy: int, fx: int) -> np.ndarray:
    """H.263 bilinear from a ``(..., 16+fy, 16+fx)`` integer window."""
    if fy == 0 and fx == 0:
        return window
    if fy == 0:
        return (window[..., :, :-1] + window[..., :, 1:] + 1) >> 1
    if fx == 0:
        return (window[..., :-1, :] + window[..., 1:, :] + 1) >> 1
    return (
        window[..., :-1, :-1]
        + window[..., :-1, 1:]
        + window[..., 1:, :-1]
        + window[..., 1:, 1:]
        + 2
    ) >> 2


def fetch_block_half(
    padded: np.ndarray, pad: int, origin_y: int, origin_x: int, mv: tuple[int, int]
) -> np.ndarray:
    """Fetch one 16x16 prediction at a half-pel vector.

    ``padded`` is the edge-padded int64 reference; ``origin_y/x`` are the
    macroblock's pixel origin in the unpadded frame; ``mv`` is
    ``(dy, dx)`` in half-pel units.
    """
    iy, fy = divmod(int(mv[0]), 2)
    ix, fx = divmod(int(mv[1]), 2)
    y = origin_y + pad + iy
    x = origin_x + pad + ix
    window = padded[y : y + MB + fy, x : x + MB + fx]
    return _average_window(window, fy, fx)


def motion_compensate_half(
    reference: np.ndarray, mvs_half: np.ndarray
) -> np.ndarray:
    """Full-frame prediction from a half-pel motion field."""
    height, width = reference.shape
    mb_rows, mb_cols = height // MB, width // MB
    if mvs_half.shape != (mb_rows, mb_cols, 2):
        raise ValueError(f"motion field shape {mvs_half.shape} mismatches frame")
    pad = int(np.abs(mvs_half).max() // 2 + 2) if mvs_half.size else 2
    padded = np.pad(reference.astype(np.int64), pad, mode="edge")
    prediction = np.empty((height, width), dtype=np.int64)
    for row in range(mb_rows):
        for col in range(mb_cols):
            block = fetch_block_half(
                padded,
                pad,
                row * MB,
                col * MB,
                (int(mvs_half[row, col, 0]), int(mvs_half[row, col, 1])),
            )
            prediction[row * MB : (row + 1) * MB, col * MB : (col + 1) * MB] = (
                block
            )
    return prediction


def refine_half_pel(
    current: np.ndarray,
    reference: np.ndarray,
    mvs_int: np.ndarray,
    sads_int: np.ndarray,
    active: np.ndarray,
    search_range: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Refine an integer-pel field by scoring 8 half-pel neighbours.

    Args:
        current: frame being encoded.
        reference: reconstruction being predicted from.
        mvs_int: ``(rows, cols, 2)`` integer-pel field.
        sads_int: SADs of the integer-pel winners.
        active: macroblocks that were actually searched (skipped ones
            keep a zero vector and are not refined).
        search_range: integer-pel range; half-pel components are kept
            within ``2 * search_range`` so the decoder's bound check is
            a single comparison.

    Returns:
        ``(mvs_half, sads, candidates_evaluated)`` — the field in
        half-pel units (inactive macroblocks stay zero), refined SADs,
        and the number of extra SAD evaluations performed.
    """
    mb_rows, mb_cols = sads_int.shape
    rows_idx, cols_idx = np.nonzero(active)
    n = rows_idx.size
    mvs_half = 2 * mvs_int.astype(np.int64)
    sads = sads_int.astype(np.int64).copy()
    if n == 0:
        return mvs_half, sads, 0

    pad = search_range + 2
    padded = np.pad(reference.astype(np.int64), pad, mode="edge")
    current_i = current.astype(np.int64)
    current_mbs = np.stack(
        [
            current_i[r * MB : (r + 1) * MB, c * MB : (c + 1) * MB]
            for r, c in zip(rows_idx, cols_idx)
        ]
    )
    base_y = rows_idx * MB + pad
    base_x = cols_idx * MB + pad
    int_dy = mvs_int[rows_idx, cols_idx, 0].astype(np.int64)
    int_dx = mvs_int[rows_idx, cols_idx, 1].astype(np.int64)

    best_dy = 2 * int_dy
    best_dx = 2 * int_dx
    best_sad = sads[rows_idx, cols_idx].copy()
    limit = 2 * search_range
    evaluated = 0

    for oy in (-1, 0, 1):
        for ox in (-1, 0, 1):
            if oy == 0 and ox == 0:
                continue
            dyh = 2 * int_dy + oy
            dxh = 2 * int_dx + ox
            # Neighbours that would leave the coded range are scored
            # but never selected (the gather is safe: the padding
            # covers one half-pel beyond the range).
            valid = (np.abs(dyh) <= limit) & (np.abs(dxh) <= limit)
            # For a fixed neighbour offset the half-pel phase is the
            # same for every macroblock (2*int is even), so one
            # vectorized gather with one averaging pattern covers all.
            fy = oy & 1
            fx = ox & 1
            iy = (dyh - fy) // 2
            ix = (dxh - fx) // 2
            span_y = np.arange(MB + fy)
            span_x = np.arange(MB + fx)
            rows = (base_y + iy)[:, None, None] + span_y[None, :, None]
            cols = (base_x + ix)[:, None, None] + span_x[None, None, :]
            candidates = _average_window(padded[rows, cols], fy, fx)
            sad = np.abs(current_mbs - candidates).sum(axis=(1, 2))
            evaluated += n
            better = (sad < best_sad) & valid
            best_sad = np.where(better, sad, best_sad)
            best_dy = np.where(better, dyh, best_dy)
            best_dx = np.where(better, dxh, best_dx)

    mvs_half[rows_idx, cols_idx, 0] = best_dy
    mvs_half[rows_idx, cols_idx, 1] = best_dx
    sads[rows_idx, cols_idx] = best_sad
    return mvs_half, sads, evaluated
