"""Bitstream syntax: macroblock layer and fragment headers.

The coded representation of a frame is its *macroblock layer*: the
macroblocks in raster order, each carrying a mode bit (P-frames), a
motion vector (inter macroblocks) and four entropy-coded 8x8 luma
blocks.  Frame-level parameters travel in a *fragment header* written by
the packetizer, so every packet is independently decodable (RTP
H.263-payload style): losing one fragment of a frame costs only the
macroblocks it carried.

Layout of one fragment payload::

    magic(8) frame_index(16) frame_type(1) qp(5) first_mb ue(v)
    mb_count ue(v) <macroblock layer bits for those macroblocks>
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter, BitstreamError
from repro.codec.entropy import (
    decode_blocks,
    encode_blocks,
    read_se,
    read_ue,
    write_se,
    write_ue,
)
from repro.codec.types import FrameType, MacroblockMode, EncodedMacroblock

#: Sanity byte opening every fragment.
FRAGMENT_MAGIC = 0xD5
#: Fixed fragment-header widths.
_FRAME_INDEX_BITS = 16
_QP_BITS = 5


@dataclass(frozen=True)
class FragmentHeader:
    """Self-describing header of one packet payload."""

    frame_index: int
    frame_type: FrameType
    qp: int
    first_mb: int
    mb_count: int

    def __post_init__(self) -> None:
        if not 0 <= self.frame_index < (1 << _FRAME_INDEX_BITS):
            raise ValueError(f"frame_index {self.frame_index} out of range")
        if not 1 <= self.qp <= 31:
            raise ValueError(f"qp {self.qp} out of range")
        if self.first_mb < 0 or self.mb_count < 1:
            raise ValueError("fragment must cover at least one macroblock")


def write_fragment_header(writer: BitWriter, header: FragmentHeader) -> None:
    writer.write_bits(FRAGMENT_MAGIC, 8)
    writer.write_bits(header.frame_index, _FRAME_INDEX_BITS)
    writer.write_bit(0 if header.frame_type is FrameType.I else 1)
    writer.write_bits(header.qp, _QP_BITS)
    write_ue(writer, header.first_mb)
    write_ue(writer, header.mb_count - 1)


def read_fragment_header(reader: BitReader) -> FragmentHeader:
    magic = reader.read_bits(8)
    if magic != FRAGMENT_MAGIC:
        raise BitstreamError(f"bad fragment magic 0x{magic:02x}")
    frame_index = reader.read_bits(_FRAME_INDEX_BITS)
    frame_type = FrameType.P if reader.read_bit() else FrameType.I
    qp = reader.read_bits(_QP_BITS)
    first_mb = read_ue(reader)
    mb_count = read_ue(reader) + 1
    try:
        return FragmentHeader(frame_index, frame_type, qp, first_mb, mb_count)
    except ValueError as error:
        # Corrupt bytes can pass the magic check yet carry impossible
        # field values (qp=0, ...); to the decoder that is a damaged
        # fragment, not a programming error.
        raise BitstreamError(f"corrupt fragment header: {error}") from error


def encode_macroblock(
    writer: BitWriter,
    frame_type: FrameType,
    mode: MacroblockMode,
    mv: tuple[int, int],
    blocks: np.ndarray,
) -> None:
    """Write one macroblock's syntax elements.

    ``blocks`` is the macroblock's quantized level array: ``(4, 8, 8)``
    luma-only or ``(6, 8, 8)`` with 4:2:0 chroma (Y Y Y Y Cb Cr, the
    H.263 block order).  I-frames carry no mode bit (every macroblock
    is intra) and no motion vector; P-frame inter macroblocks carry the
    motion vector as two signed Exp-Golomb codes.
    """
    if frame_type is FrameType.I and mode is not MacroblockMode.INTRA:
        raise ValueError("I-frames may only contain intra macroblocks")
    if frame_type is FrameType.P:
        writer.write_bit(1 if mode is MacroblockMode.INTRA else 0)
        if mode is MacroblockMode.INTER:
            write_se(writer, mv[0])
            write_se(writer, mv[1])
    encode_blocks(writer, blocks)


def encode_macroblock_skippable(
    writer: BitWriter,
    frame_type: FrameType,
    mode: MacroblockMode,
    mv: tuple[int, int],
    blocks: np.ndarray,
) -> None:
    """Macroblock syntax with H.263's COD bit (``allow_skip`` codecs).

    P-frame macroblocks lead with one bit: 1 = skipped (zero motion,
    zero residual, nothing else coded), 0 = coded, followed by the
    plain macroblock syntax.  I-frames never skip.
    """
    if frame_type is FrameType.P:
        skippable = (
            mode is MacroblockMode.INTER
            and mv == (0, 0)
            and not blocks.any()
        )
        writer.write_bit(1 if skippable else 0)
        if skippable:
            return
    encode_macroblock(writer, frame_type, mode, mv, blocks)


def decode_macroblock(
    reader: BitReader, frame_type: FrameType, blocks_per_mb: int = 4
) -> EncodedMacroblock:
    """Read one macroblock's syntax elements (inverse of encode).

    ``blocks_per_mb`` is 4 for luma-only streams, 6 with 4:2:0 chroma;
    it comes from the codec configuration shared out of band (like the
    picture dimensions).
    """
    if blocks_per_mb not in (4, 6):
        raise ValueError(f"blocks_per_mb must be 4 or 6, got {blocks_per_mb}")
    if frame_type is FrameType.I:
        mode = MacroblockMode.INTRA
        mv = (0, 0)
    else:
        mode = MacroblockMode.INTRA if reader.read_bit() else MacroblockMode.INTER
        if mode is MacroblockMode.INTER:
            mv = (read_se(reader), read_se(reader))
        else:
            mv = (0, 0)
    coefficients = decode_blocks(reader, blocks_per_mb)
    return EncodedMacroblock(mode=mode, mv=mv, coefficients=coefficients)


def decode_macroblock_skippable(
    reader: BitReader, frame_type: FrameType, blocks_per_mb: int = 4
) -> EncodedMacroblock:
    """Inverse of :func:`encode_macroblock_skippable`.

    A skipped macroblock comes back as INTER with zero motion and an
    all-zero coefficient array — semantically identical to decoding a
    fully coded-but-empty macroblock, just one bit on the wire.
    """
    if frame_type is FrameType.P and reader.read_bit():
        return EncodedMacroblock(
            mode=MacroblockMode.INTER,
            mv=(0, 0),
            coefficients=np.zeros((blocks_per_mb, 8, 8), dtype=np.int32),
        )
    return decode_macroblock(reader, frame_type, blocks_per_mb)
