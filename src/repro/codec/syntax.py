"""Bitstream syntax: macroblock layer and fragment headers.

The coded representation of a frame is its *macroblock layer*: the
macroblocks in raster order, each carrying a mode bit (P-frames), a
motion vector (inter macroblocks) and four entropy-coded 8x8 luma
blocks.  Frame-level parameters travel in a *fragment header* written by
the packetizer, so every packet is independently decodable (RTP
H.263-payload style): losing one fragment of a frame costs only the
macroblocks it carried.

Layout of one fragment payload::

    magic(8) frame_index(16) frame_type(1) qp(5) first_mb ue(v)
    mb_count ue(v) <macroblock layer bits for those macroblocks>
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.bitstream import (
    BitReader,
    BitWriter,
    BitstreamError,
    build_word_index,
)
from repro.codec.entropy import (
    block_codewords,
    decode_blocks,
    encode_blocks,
    read_se,
    read_ue,
    se_codewords,
    write_se,
    write_ue,
)
from repro.codec.types import FrameType, MacroblockMode, EncodedMacroblock
from repro.codec.zigzag import inverse_zigzag_order

#: Sanity byte opening every fragment.
FRAGMENT_MAGIC = 0xD5
#: Fixed fragment-header widths.
_FRAME_INDEX_BITS = 16
_QP_BITS = 5


@dataclass(frozen=True)
class FragmentHeader:
    """Self-describing header of one packet payload."""

    frame_index: int
    frame_type: FrameType
    qp: int
    first_mb: int
    mb_count: int

    def __post_init__(self) -> None:
        if not 0 <= self.frame_index < (1 << _FRAME_INDEX_BITS):
            raise ValueError(f"frame_index {self.frame_index} out of range")
        if not 1 <= self.qp <= 31:
            raise ValueError(f"qp {self.qp} out of range")
        if self.first_mb < 0 or self.mb_count < 1:
            raise ValueError("fragment must cover at least one macroblock")


def write_fragment_header(writer: BitWriter, header: FragmentHeader) -> None:
    writer.write_bits(FRAGMENT_MAGIC, 8)
    writer.write_bits(header.frame_index, _FRAME_INDEX_BITS)
    writer.write_bit(0 if header.frame_type is FrameType.I else 1)
    writer.write_bits(header.qp, _QP_BITS)
    write_ue(writer, header.first_mb)
    write_ue(writer, header.mb_count - 1)


def read_fragment_header(reader: BitReader) -> FragmentHeader:
    magic = reader.read_bits(8)
    if magic != FRAGMENT_MAGIC:
        raise BitstreamError(f"bad fragment magic 0x{magic:02x}")
    frame_index = reader.read_bits(_FRAME_INDEX_BITS)
    frame_type = FrameType.P if reader.read_bit() else FrameType.I
    qp = reader.read_bits(_QP_BITS)
    first_mb = read_ue(reader)
    mb_count = read_ue(reader) + 1
    try:
        return FragmentHeader(frame_index, frame_type, qp, first_mb, mb_count)
    except ValueError as error:
        # Corrupt bytes can pass the magic check yet carry impossible
        # field values (qp=0, ...); to the decoder that is a damaged
        # fragment, not a programming error.
        raise BitstreamError(f"corrupt fragment header: {error}") from error


def encode_macroblock(
    writer: BitWriter,
    frame_type: FrameType,
    mode: MacroblockMode,
    mv: tuple[int, int],
    blocks: np.ndarray,
) -> None:
    """Write one macroblock's syntax elements.

    ``blocks`` is the macroblock's quantized level array: ``(4, 8, 8)``
    luma-only or ``(6, 8, 8)`` with 4:2:0 chroma (Y Y Y Y Cb Cr, the
    H.263 block order).  I-frames carry no mode bit (every macroblock
    is intra) and no motion vector; P-frame inter macroblocks carry the
    motion vector as two signed Exp-Golomb codes.
    """
    if frame_type is FrameType.I and mode is not MacroblockMode.INTRA:
        raise ValueError("I-frames may only contain intra macroblocks")
    if frame_type is FrameType.P:
        writer.write_bit(1 if mode is MacroblockMode.INTRA else 0)
        if mode is MacroblockMode.INTER:
            write_se(writer, mv[0])
            write_se(writer, mv[1])
    encode_blocks(writer, blocks)


def encode_macroblock_skippable(
    writer: BitWriter,
    frame_type: FrameType,
    mode: MacroblockMode,
    mv: tuple[int, int],
    blocks: np.ndarray,
) -> None:
    """Macroblock syntax with H.263's COD bit (``allow_skip`` codecs).

    P-frame macroblocks lead with one bit: 1 = skipped (zero motion,
    zero residual, nothing else coded), 0 = coded, followed by the
    plain macroblock syntax.  I-frames never skip.
    """
    if frame_type is FrameType.P:
        skippable = (
            mode is MacroblockMode.INTER
            and mv == (0, 0)
            and not blocks.any()
        )
        writer.write_bit(1 if skippable else 0)
        if skippable:
            return
    encode_macroblock(writer, frame_type, mode, mv, blocks)


def encode_macroblock_layer(
    writer: BitWriter,
    frame_type: FrameType,
    intra: np.ndarray,
    mvs: np.ndarray,
    levels: np.ndarray,
    *,
    allow_skip: bool = False,
) -> tuple[list[int], int]:
    """Write one frame's whole macroblock layer as a single codeword batch.

    The per-macroblock syntax is identical to chaining
    :func:`encode_macroblock` (or the skippable variant) over the grid
    in raster order, but the entire frame — mode bits, motion vectors,
    COD bits and all coefficient events — is assembled as ``(value,
    width)`` arrays in numpy and packed by the writer in one operation.

    Args:
        intra: ``(mb_rows, mb_cols)`` bool grid of intra decisions.
        mvs: ``(mb_rows, mb_cols, 2)`` motion vectors as coded.
        levels: ``(mb_rows, mb_cols, n, 8, 8)`` quantized levels in
            H.263 block order (``n`` is 4 luma-only, 6 with chroma).

    Returns:
        ``(offsets, n_codewords)`` where ``offsets`` has one bit offset
        per macroblock plus a final entry for the total bit length
        (absolute, i.e. including whatever the writer already held) —
        the packetizer's split points — and ``n_codewords`` counts the
        VLC codewords emitted (observability).
    """
    base = writer.bit_length
    intra_flat = np.asarray(intra, dtype=bool).reshape(-1)
    mb_count = intra_flat.size
    mvs_flat = np.asarray(mvs, dtype=np.int64).reshape(mb_count, 2)
    levels = np.asarray(levels)
    blocks_per_mb = levels.shape[2]
    blocks = levels.reshape(mb_count, blocks_per_mb, 8, 8)

    if frame_type is FrameType.I and not intra_flat.all():
        raise ValueError("I-frames may only contain intra macroblocks")

    skipped = np.zeros(mb_count, dtype=bool)
    if allow_skip and frame_type is FrameType.P:
        residual_zero = ~blocks.reshape(mb_count, -1).any(axis=1)
        skipped = (
            ~intra_flat & (mvs_flat == 0).all(axis=1) & residual_zero
        )

    # Coefficient codewords for every non-skipped macroblock, in order.
    active = ~skipped
    block_values, block_widths, bits_per_block, cw_per_block = (
        block_codewords(blocks[active].reshape(-1, 8, 8))
    )
    block_cw_per_mb = np.zeros(mb_count, dtype=np.int64)
    block_cw_per_mb[active] = cw_per_block.reshape(-1, blocks_per_mb).sum(
        axis=1
    )
    block_bits_per_mb = np.zeros(mb_count, dtype=np.int64)
    block_bits_per_mb[active] = bits_per_block.reshape(
        -1, blocks_per_mb
    ).sum(axis=1)

    # Per-macroblock header codewords (mode / COD bits, motion vectors)
    # as an (mb_count, 4) matrix whose first ``header_count`` columns
    # are real; the rest is masked off per macroblock.
    header_values = np.zeros((mb_count, 4), dtype=np.int64)
    header_widths = np.zeros((mb_count, 4), dtype=np.int64)
    header_count = np.zeros(mb_count, dtype=np.int64)
    if frame_type is FrameType.P:
        inter_flat = ~intra_flat
        mv_col = 0
        if allow_skip:
            header_values[:, 0] = skipped  # COD bit
            header_widths[:, 0] = 1
            header_values[:, 1] = intra_flat  # mode bit (coded MBs)
            header_widths[:, 1] = 1
            header_count = np.where(skipped, 1, np.where(inter_flat, 4, 2))
            mv_col = 2
        else:
            header_values[:, 0] = intra_flat  # mode bit
            header_widths[:, 0] = 1
            header_count = np.where(inter_flat, 3, 1)
            mv_col = 1
        carries_mv = inter_flat & active
        if carries_mv.any():
            mv_values_0, mv_widths_0 = se_codewords(mvs_flat[:, 0])
            mv_values_1, mv_widths_1 = se_codewords(mvs_flat[:, 1])
            header_values[carries_mv, mv_col] = mv_values_0[carries_mv]
            header_widths[carries_mv, mv_col] = mv_widths_0[carries_mv]
            header_values[carries_mv, mv_col + 1] = mv_values_1[carries_mv]
            header_widths[carries_mv, mv_col + 1] = mv_widths_1[carries_mv]
    header_mask = np.arange(4)[None, :] < header_count[:, None]
    header_bits_per_mb = np.where(header_mask, header_widths, 0).sum(axis=1)

    # Interleave: each macroblock's header codewords, then its block
    # codewords.  Both sub-streams are already in macroblock order, so
    # scattering the headers into their slots leaves exactly the block
    # positions for the coefficient stream.
    cw_per_mb = header_count + block_cw_per_mb
    n_codewords = int(cw_per_mb.sum())
    values = np.empty(n_codewords, dtype=np.int64)
    widths = np.empty(n_codewords, dtype=np.int64)
    mb_starts = np.concatenate([[0], np.cumsum(cw_per_mb)[:-1]])
    header_starts = np.concatenate([[0], np.cumsum(header_count)[:-1]])
    n_header = int(header_count.sum())
    if n_header:
        header_positions = (
            np.repeat(mb_starts, header_count)
            + np.arange(n_header)
            - np.repeat(header_starts, header_count)
        )
        is_header = np.zeros(n_codewords, dtype=bool)
        is_header[header_positions] = True
        values[header_positions] = header_values[header_mask]
        widths[header_positions] = header_widths[header_mask]
        values[~is_header] = block_values
        widths[~is_header] = block_widths
    else:
        values[:] = block_values
        widths[:] = block_widths

    writer.write_codewords(values, widths)

    bits_per_mb = header_bits_per_mb + block_bits_per_mb
    offsets = np.empty(mb_count + 1, dtype=np.int64)
    offsets[0] = base
    np.cumsum(bits_per_mb, out=offsets[1:])
    offsets[1:] += base
    return [int(offset) for offset in offsets], n_codewords


def decode_macroblock(
    reader: BitReader, frame_type: FrameType, blocks_per_mb: int = 4
) -> EncodedMacroblock:
    """Read one macroblock's syntax elements (inverse of encode).

    ``blocks_per_mb`` is 4 for luma-only streams, 6 with 4:2:0 chroma;
    it comes from the codec configuration shared out of band (like the
    picture dimensions).
    """
    if blocks_per_mb not in (4, 6):
        raise ValueError(f"blocks_per_mb must be 4 or 6, got {blocks_per_mb}")
    if frame_type is FrameType.I:
        mode = MacroblockMode.INTRA
        mv = (0, 0)
    else:
        mode = MacroblockMode.INTRA if reader.read_bit() else MacroblockMode.INTER
        if mode is MacroblockMode.INTER:
            mv = (read_se(reader), read_se(reader))
        else:
            mv = (0, 0)
    coefficients = decode_blocks(reader, blocks_per_mb)
    return EncodedMacroblock(mode=mode, mv=mv, coefficients=coefficients)


_MASK64 = (1 << 64) - 1


def _parse_macroblock_fast(
    words: list,
    total: int,
    p: int,
    is_p: bool,
    read_cod: bool,
    blocks_per_mb: int,
    block_base: int,
    block_ids: list,
    block_counts: list,
    ev_positions: list,
    ev_levels: list,
) -> tuple[int, bool, int, int]:
    """Parse one macroblock's syntax off a 64-bit word index.

    Pure-integer transliteration of :func:`decode_macroblock` /
    :func:`decode_macroblock_skippable`: raises :class:`BitstreamError`
    at exactly the bit positions the sequential reader would, so the
    decoder's salvage prefix is unchanged.  Coefficient events append
    (zigzag position, level) to the shared accumulators; each coded
    block contributes one ``(global block index, event count)`` pair so
    the caller can scatter everything in one batch.

    Returns ``(next_bit_position, intra, mv_y, mv_x)``.
    """
    if read_cod:
        if p >= total:
            raise BitstreamError("bitstream exhausted")
        if (words[p >> 3] >> (63 - (p & 7))) & 1:
            return p + 1, False, 0, 0  # COD: skipped macroblock
        p += 1
    if is_p:
        if p >= total:
            raise BitstreamError("bitstream exhausted")
        intra = (words[p >> 3] >> (63 - (p & 7))) & 1 == 1
        p += 1
    else:
        intra = True
    mv_y = mv_x = 0
    if is_p and not intra:
        for which in (0, 1):
            if p >= total:
                raise BitstreamError("bitstream exhausted")
            window = (words[p >> 3] << (p & 7)) & _MASK64
            zeros = 64 - window.bit_length()
            if zeros > 32:
                raise BitstreamError(
                    "Exp-Golomb prefix too long (corrupt stream)"
                )
            if p + 2 * zeros + 1 > total:
                raise BitstreamError("bitstream exhausted")
            if zeros <= 28:
                # The whole codeword (zeros + 1 + zeros payload bits)
                # fits in the window's >= 57 visible bits: its top
                # 2*zeros+1 bits ARE (1 << zeros) | payload.
                mapped = (window >> (63 - 2 * zeros)) - 1
                p += 2 * zeros + 1
            else:
                q = p + zeros + 1
                mapped = (
                    (1 << zeros)
                    | (
                        (words[q >> 3] >> (64 - (q & 7) - zeros))
                        & ((1 << zeros) - 1)
                    )
                ) - 1
                p = q + zeros
            magnitude = (mapped + 1) >> 1
            value = magnitude if mapped & 1 else -magnitude
            if which:
                mv_x = value
            else:
                mv_y = value
    append_position = ev_positions.append
    append_level = ev_levels.append
    for block in range(blocks_per_mb):
        if p >= total:
            raise BitstreamError("bitstream exhausted")
        coded = (words[p >> 3] >> (63 - (p & 7))) & 1
        p += 1
        if not coded:
            continue
        n_events = 0
        position = -1
        while True:
            # run: ue(v)
            if p >= total:
                raise BitstreamError("bitstream exhausted")
            window = (words[p >> 3] << (p & 7)) & _MASK64
            zeros = 64 - window.bit_length()
            if zeros > 32:
                raise BitstreamError(
                    "Exp-Golomb prefix too long (corrupt stream)"
                )
            if p + 2 * zeros + 1 > total:
                raise BitstreamError("bitstream exhausted")
            if zeros <= 28:
                run = (window >> (63 - 2 * zeros)) - 1
                p += 2 * zeros + 1
            else:
                q = p + zeros + 1
                run = (
                    (1 << zeros)
                    | (
                        (words[q >> 3] >> (64 - (q & 7) - zeros))
                        & ((1 << zeros) - 1)
                    )
                ) - 1
                p = q + zeros
            # level: se(v), with the trailing LAST bit folded into the
            # same window fetch when both fit in its visible bits
            if p >= total:
                raise BitstreamError("bitstream exhausted")
            window = (words[p >> 3] << (p & 7)) & _MASK64
            zeros = 64 - window.bit_length()
            if zeros > 32:
                raise BitstreamError(
                    "Exp-Golomb prefix too long (corrupt stream)"
                )
            if p + 2 * zeros + 1 > total:
                raise BitstreamError("bitstream exhausted")
            if zeros <= 27 and p + 2 * zeros + 2 <= total:
                mapped = (window >> (63 - 2 * zeros)) - 1
                last = (window >> (62 - 2 * zeros)) & 1
                p += 2 * zeros + 2
                if mapped == 0:
                    raise BitstreamError("run-level event with zero level")
            else:
                q = p + zeros + 1
                if zeros:
                    mapped = (
                        (1 << zeros)
                        | (
                            (words[q >> 3] >> (64 - (q & 7) - zeros))
                            & ((1 << zeros) - 1)
                        )
                    ) - 1
                    q += zeros
                else:
                    mapped = 0
                p = q
                if mapped == 0:
                    raise BitstreamError("run-level event with zero level")
                # LAST bit
                if p >= total:
                    raise BitstreamError("bitstream exhausted")
                last = (words[p >> 3] >> (63 - (p & 7))) & 1
                p += 1
            magnitude = (mapped + 1) >> 1
            level = magnitude if mapped & 1 else -magnitude
            position += run + 1
            if position >= 64:
                raise BitstreamError(
                    f"run-level overrun: position {position} >= 64"
                )
            append_position(position)
            append_level(level)
            n_events += 1
            if last:
                break
        block_ids.append(block_base + block)
        block_counts.append(n_events)
    return p, intra, mv_y, mv_x


def decode_macroblock_layer(
    reader: BitReader,
    frame_type: FrameType,
    mb_count: int,
    blocks_per_mb: int = 4,
    *,
    allow_skip: bool = False,
    allow_inter: bool = True,
    mv_limit: int | None = None,
) -> list[EncodedMacroblock]:
    """Batch VLD of up to ``mb_count`` macroblocks (the decoder fast path).

    Bit-identical to looping :func:`decode_macroblock` (or the skippable
    variant), but the grammar runs over a precomputed 64-bit word index
    of the payload with plain integer arithmetic — no per-codeword
    method dispatch — and all coefficient events scatter into the
    output arrays in one batch per fragment.

    Decoding stops at the first corrupt codeword, or — when the
    validation arguments say so — at the first macroblock that cannot
    be predicted (``allow_inter=False`` with an inter macroblock, or a
    motion vector beyond ``mv_limit``).  Either way the decoded prefix
    is returned and the reader is left positioned after the last
    macroblock whose bits were consumed, matching the sequential
    decoder's salvage semantics and bit accounting.
    """
    if blocks_per_mb not in (4, 6):
        raise ValueError(f"blocks_per_mb must be 4 or 6, got {blocks_per_mb}")
    data = reader.data
    total = len(data) * 8
    words = build_word_index(data)
    p = reader.bits_consumed
    is_p = frame_type is FrameType.P
    read_cod = allow_skip and is_p
    meta: list[tuple[bool, int, int]] = []
    block_ids: list[int] = []
    block_counts: list[int] = []
    ev_positions: list[int] = []
    ev_levels: list[int] = []
    for _ in range(mb_count):
        n_events = len(ev_levels)
        n_blocks = len(block_ids)
        try:
            p_next, intra, mv_y, mv_x = _parse_macroblock_fast(
                words,
                total,
                p,
                is_p,
                read_cod,
                blocks_per_mb,
                len(meta) * blocks_per_mb,
                block_ids,
                block_counts,
                ev_positions,
                ev_levels,
            )
        except BitstreamError:
            # VLC desync: drop the partial macroblock, bits before it
            # stay consumed.
            del block_ids[n_blocks:]
            del block_counts[n_blocks:]
            del ev_positions[n_events:]
            del ev_levels[n_events:]
            break
        p = p_next
        if not intra and (
            not allow_inter
            or (
                mv_limit is not None
                and (
                    mv_y > mv_limit
                    or mv_y < -mv_limit
                    or mv_x > mv_limit
                    or mv_x < -mv_limit
                )
            )
        ):
            # Unpredictable macroblock: its bits were consumed (like the
            # sequential decoder, which parses before validating) but it
            # is not part of the salvaged prefix.
            del block_ids[n_blocks:]
            del block_counts[n_blocks:]
            del ev_positions[n_events:]
            del ev_levels[n_events:]
            break
        meta.append((intra, mv_y, mv_x))
    reader.skip_bits(p - reader.bits_consumed)

    count = len(meta)
    coefficients = np.zeros((count * blocks_per_mb, 64), dtype=np.int32)
    if ev_levels:
        ev_blocks = np.repeat(
            np.asarray(block_ids, dtype=np.int64),
            np.asarray(block_counts, dtype=np.int64),
        )
        coefficients[ev_blocks, ev_positions] = ev_levels
    coefficients = coefficients[:, inverse_zigzag_order()].reshape(
        count, blocks_per_mb, 8, 8
    )
    return [
        EncodedMacroblock(
            mode=MacroblockMode.INTRA if intra else MacroblockMode.INTER,
            mv=(mv_y, mv_x),
            coefficients=coefficients[index],
        )
        for index, (intra, mv_y, mv_x) in enumerate(meta)
    ]


def decode_macroblock_skippable(
    reader: BitReader, frame_type: FrameType, blocks_per_mb: int = 4
) -> EncodedMacroblock:
    """Inverse of :func:`encode_macroblock_skippable`.

    A skipped macroblock comes back as INTER with zero motion and an
    all-zero coefficient array — semantically identical to decoding a
    fully coded-but-empty macroblock, just one bit on the wire.
    """
    if frame_type is FrameType.P and reader.read_bit():
        return EncodedMacroblock(
            mode=MacroblockMode.INTER,
            mv=(0, 0),
            coefficients=np.zeros((blocks_per_mb, 8, 8), dtype=np.int32),
        )
    return decode_macroblock(reader, frame_type, blocks_per_mb)
