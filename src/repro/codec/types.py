"""Shared codec types: configuration, frame/MB descriptors, statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class FrameType(enum.Enum):
    """Coded frame type."""

    I = "I"  # noqa: E741 - the standard video-coding name
    P = "P"

    @property
    def is_intra(self) -> bool:
        return self is FrameType.I


class MacroblockMode(enum.Enum):
    """Coding mode of a single 16x16 macroblock."""

    INTRA = "intra"
    INTER = "inter"


@dataclass(frozen=True)
class CodecConfig:
    """Static configuration shared by encoder and decoder.

    Attributes:
        width, height: luma dimensions, multiples of 16.
        quantizer: H.263-style QP in [1, 31]; quant step is ``2 * QP``.
        search_range: ME search range in integer pixels, at most 15
            (the H.263 motion-vector range; the PBPAIR correctness
            update also assumes a reference block overlaps at most four
            macroblocks, i.e. displacements below 16).
        sad_threshold: the ``SAD_Th`` of the paper's Figure 4 pseudo code:
            a macroblock is inter coded only when
            ``SAD_mv - SAD_Th <= SAD_self``.
        use_fixed_point_dct: use the integer (fixed-point) DCT, matching
            the paper's FPU-less PDA implementation; the float DCT is the
            reference used in tests.
        motion_search: ``"diamond"`` (adaptive cost with early
            termination, the realistic default), ``"full"`` (exhaustive,
            fixed cost) or ``"three-step"`` (logarithmic, fixed cost).
        me_early_exit_sad: diamond search's zero-motion shortcut: a
            macroblock whose colocated SAD is below this accepts the
            zero vector after a single evaluation (what makes static
            content cheap to search).
        chroma: code 4:2:0 chroma (two extra 8x8 blocks per
            macroblock, H.263 block order Y Y Y Y Cb Cr).  Off by
            default: the paper's metrics and experiments are luma.
        half_pel: half-pixel motion precision (H.263).  Motion vectors
            are then coded and compensated in half-pel units; the
            integer search is refined with 8 extra candidates per
            macroblock.  Off by default to keep the paper experiments'
            integer-pel cost model.
        allow_skip: H.263's COD bit — a P-frame macroblock whose motion
            vector is zero and whose quantized residual is entirely zero
            costs a single bit (the decoder copies the colocated
            reference block).  Off by default to keep the paper
            experiments' rate model.
    """

    width: int = 176
    height: int = 144
    quantizer: int = 6
    search_range: int = 15
    sad_threshold: int = 500
    use_fixed_point_dct: bool = True
    motion_search: str = "diamond"
    me_early_exit_sad: int = 1600
    chroma: bool = False
    half_pel: bool = False
    allow_skip: bool = False

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ValueError("codec dimensions must be multiples of 16")
        if not 1 <= self.quantizer <= 31:
            raise ValueError(f"quantizer must be in [1, 31], got {self.quantizer}")
        if not 1 <= self.search_range <= 15:
            raise ValueError("search_range must be in [1, 15]")
        if self.sad_threshold < 0:
            raise ValueError("sad_threshold must be >= 0")
        if self.me_early_exit_sad < 0:
            raise ValueError("me_early_exit_sad must be >= 0")
        if self.motion_search not in ("full", "three-step", "diamond"):
            raise ValueError(
                "motion_search must be 'diamond', 'full' or 'three-step', "
                f"got {self.motion_search!r}"
            )

    @property
    def mb_rows(self) -> int:
        return self.height // 16

    @property
    def mb_cols(self) -> int:
        return self.width // 16

    @property
    def mb_count(self) -> int:
        return self.mb_rows * self.mb_cols

    @property
    def blocks_per_mb(self) -> int:
        """Transform blocks per macroblock: 4 luma (+2 chroma)."""
        return 6 if self.chroma else 4


@dataclass(frozen=True)
class MacroblockDecision:
    """Final per-macroblock coding decision made by the encoder.

    Attributes:
        mode: intra or inter.
        mv: motion vector ``(dy, dx)`` as coded — integer-pel units, or
            half-pel units when the codec runs with ``half_pel``;
            ``(0, 0)`` for intra.
        sad_mv: SAD of the chosen reference block (inter only; 0 for
            intra decided before ME).
        sad_self: deviation of the macroblock from its own mean (the
            paper's ``SAD_self``), used in the inter/intra test.
        me_skipped: True when the resilience strategy forced intra mode
            *before* motion estimation, i.e. no search was performed —
            this is PBPAIR's energy lever.
        forced_by: name of the strategy rule that forced intra mode
            (``"pre-me"``, ``"air"``, ``"stride-back"``, ``"sad-test"``,
            ``"i-frame"``) or None for a natural inter decision.
    """

    mode: MacroblockMode
    mv: tuple[int, int] = (0, 0)
    sad_mv: int = 0
    sad_self: int = 0
    me_skipped: bool = False
    forced_by: Optional[str] = None


@dataclass(frozen=True)
class EncodedMacroblock:
    """Decoded-side view of one macroblock's syntax elements."""

    mode: MacroblockMode
    mv: tuple[int, int]
    coefficients: np.ndarray  # (4 or 6, 8, 8) int32 quantized levels


@dataclass(frozen=True)
class FrameEncodeStats:
    """Per-frame statistics produced by the encoder.

    ``intra_mbs``/``inter_mbs`` count final modes; ``me_skipped_mbs``
    counts macroblocks whose motion search was skipped entirely (the
    quantity the energy model rewards); ``psnr_reconstructed`` is the
    encoder-side (loss-free) reconstruction quality.
    """

    frame_index: int
    frame_type: FrameType
    bits: int
    intra_mbs: int
    inter_mbs: int
    me_skipped_mbs: int
    psnr_reconstructed: float

    @property
    def bytes(self) -> int:
        return (self.bits + 7) // 8


@dataclass(frozen=True)
class EncodedFrame:
    """An encoded frame: the bitstream payload plus encoder-side metadata.

    ``payload`` is the exact bitstream (decodable by ``Decoder``);
    ``decisions`` and ``stats`` are encoder-side observability that never
    travels over the network.
    """

    frame_index: int
    frame_type: FrameType
    payload: bytes
    decisions: tuple[MacroblockDecision, ...]
    stats: FrameEncodeStats
    reconstruction: np.ndarray  # encoder-side reconstructed luma (uint8)
    #: Quantizer the frame was coded with (rate control may vary it per
    #: frame; the packetizer copies it into every fragment header).
    qp: int = 6
    #: Encoder-side reconstructed chroma ``(cb, cr)`` when the codec
    #: runs with 4:2:0 chroma; None for luma-only streams.
    reconstruction_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None
    #: Bit offset of each macroblock within ``payload`` plus a final
    #: entry for the total bit length, so that
    #: ``mb_bit_offsets[i + 1] - mb_bit_offsets[i]`` is macroblock i's
    #: coded size and the packetizer can split at macroblock boundaries.
    mb_bit_offsets: tuple[int, ...] = ()

    @property
    def size_bytes(self) -> int:
        return len(self.payload)
