"""H.263-style scalar quantization of DCT coefficients.

H.263 quantizes with a uniform step of ``2 * QP`` (QP in [1, 31]) and a
dead zone for inter blocks, and reconstructs mid-rise:
``|rec| = QP * (2 |level| + 1)`` (minus one when QP is even, to keep the
value odd — the standard's oddification).  The intra DC coefficient is
special-cased with a fixed step of 8, as in the standard.

All functions are vectorized over ``(n, 8, 8)`` coefficient batches.
"""

from __future__ import annotations

import numpy as np

#: Coefficient clamp range (H.263 reconstruction levels are 12-bit).
COEFF_MIN, COEFF_MAX = -2048, 2047
#: Quantized level clamp (H.263 levels are signed 8-bit, +/-127).
LEVEL_MIN, LEVEL_MAX = -127, 127
#: Fixed quantizer step for the intra DC coefficient.
INTRA_DC_STEP = 8


def _check_qp(qp: int) -> None:
    if not 1 <= qp <= 31:
        raise ValueError(f"QP must be in [1, 31], got {qp}")


def quantize(coefficients: np.ndarray, qp: int, intra: bool) -> np.ndarray:
    """Quantize a batch of 8x8 DCT coefficient blocks to integer levels.

    Intra blocks use ``level = coeff / (2 QP)``; inter blocks subtract a
    half-step dead zone first, which suppresses small residual noise.
    The intra DC term uses the fixed step :data:`INTRA_DC_STEP` and is
    kept strictly positive (H.263 codes it as an unsigned byte).
    """
    _check_qp(qp)
    coefficients = np.clip(np.asarray(coefficients), COEFF_MIN, COEFF_MAX)
    magnitude = np.abs(coefficients.astype(np.int64))
    step = 2 * qp
    if intra:
        levels = magnitude // step
    else:
        levels = np.maximum(magnitude - qp // 2, 0) // step
    levels = np.clip(levels, 0, LEVEL_MAX)
    levels = (np.sign(coefficients) * levels).astype(np.int32)
    if intra:
        dc = np.rint(coefficients[..., 0, 0] / INTRA_DC_STEP).astype(np.int32)
        levels[..., 0, 0] = np.clip(dc, 1, 254)
    return levels


def dequantize(levels: np.ndarray, qp: int, intra: bool) -> np.ndarray:
    """Reconstruct DCT coefficients from quantized levels.

    Inverse of :func:`quantize` up to quantization error:
    ``|rec| = QP (2|level| + 1)`` for nonzero levels, oddified for even
    QP, clamped to the 12-bit coefficient range.
    """
    _check_qp(qp)
    levels = np.asarray(levels, dtype=np.int64)
    magnitude = np.abs(levels)
    reconstructed = qp * (2 * magnitude + 1)
    if qp % 2 == 0:
        reconstructed -= 1
    reconstructed = np.where(magnitude == 0, 0, reconstructed)
    reconstructed = np.sign(levels) * reconstructed
    if intra:
        reconstructed = reconstructed.copy()
        reconstructed[..., 0, 0] = levels[..., 0, 0] * INTRA_DC_STEP
    return np.clip(reconstructed, COEFF_MIN, COEFF_MAX).astype(np.int32)
