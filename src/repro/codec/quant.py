"""H.263-style scalar quantization of DCT coefficients.

H.263 quantizes with a uniform step of ``2 * QP`` (QP in [1, 31]) and a
dead zone for inter blocks, and reconstructs mid-rise:
``|rec| = QP * (2 |level| + 1)`` (minus one when QP is even, to keep the
value odd — the standard's oddification).  The intra DC coefficient is
special-cased with a fixed step of 8, as in the standard.

Two call shapes are supported:

* :func:`quantize` / :func:`dequantize` take a uniform coding mode for
  the whole batch — the historical interface, kept for callers that
  already grouped their blocks by mode.
* :func:`quantize_blocks` / :func:`dequantize_blocks` take a *per-block*
  intra mask and process a mixed intra/inter ``(..., 8, 8)`` stack in a
  single vectorized pass (the dead zone and the DC special case are
  selected per block with ``np.where``), which is how the encoder and
  decoder feed a whole frame at once without boolean-mask gather/scatter
  round trips.  Both paths compute the same per-element arithmetic, so
  they are bit-identical.
"""

from __future__ import annotations

import numpy as np

#: Coefficient clamp range (H.263 reconstruction levels are 12-bit).
COEFF_MIN, COEFF_MAX = -2048, 2047
#: Quantized level clamp (H.263 levels are signed 8-bit, +/-127).
LEVEL_MIN, LEVEL_MAX = -127, 127
#: Fixed quantizer step for the intra DC coefficient.
INTRA_DC_STEP = 8


def _check_qp(qp: int) -> None:
    if not 1 <= qp <= 31:
        raise ValueError(f"QP must be in [1, 31], got {qp}")


def _block_mask(intra, lead_shape: tuple[int, ...]) -> np.ndarray:
    """Broadcast a per-block intra flag to the batch's leading axes."""
    return np.broadcast_to(np.asarray(intra, dtype=bool), lead_shape)


def quantize_blocks(
    coefficients: np.ndarray, intra, qp: int
) -> np.ndarray:
    """Quantize a mixed intra/inter ``(..., 8, 8)`` stack in one pass.

    ``intra`` is a bool array broadcastable to the stack's leading axes
    (one flag per block).  Intra blocks use ``level = coeff / (2 QP)``;
    inter blocks subtract a half-step dead zone first, which suppresses
    small residual noise.  The intra DC term uses the fixed step
    :data:`INTRA_DC_STEP` and is kept strictly positive (H.263 codes it
    as an unsigned byte).
    """
    _check_qp(qp)
    coefficients = np.clip(np.asarray(coefficients), COEFF_MIN, COEFF_MAX)
    intra = _block_mask(intra, coefficients.shape[:-2])
    magnitude = np.abs(coefficients.astype(np.int64))
    step = 2 * qp
    # The dead zone is the only per-mode difference off the DC path, so
    # a per-block offset keeps the whole stack in one reduction.
    dead_zone = np.where(intra[..., None, None], 0, qp // 2)
    levels = np.maximum(magnitude - dead_zone, 0) // step
    levels = np.clip(levels, 0, LEVEL_MAX)
    levels = (np.sign(coefficients) * levels).astype(np.int32)
    dc = np.rint(coefficients[..., 0, 0] / INTRA_DC_STEP).astype(np.int32)
    levels[..., 0, 0] = np.where(
        intra, np.clip(dc, 1, 254), levels[..., 0, 0]
    )
    return levels


def dequantize_blocks(levels: np.ndarray, intra, qp: int) -> np.ndarray:
    """Reconstruct a mixed intra/inter stack of quantized levels.

    Inverse of :func:`quantize_blocks` up to quantization error:
    ``|rec| = QP (2|level| + 1)`` for nonzero levels, oddified for even
    QP, clamped to the 12-bit coefficient range; the intra DC term is
    rebuilt with its fixed step.
    """
    _check_qp(qp)
    levels = np.asarray(levels, dtype=np.int64)
    intra = _block_mask(intra, levels.shape[:-2])
    magnitude = np.abs(levels)
    reconstructed = qp * (2 * magnitude + 1)
    if qp % 2 == 0:
        reconstructed -= 1
    reconstructed = np.where(magnitude == 0, 0, reconstructed)
    reconstructed = np.sign(levels) * reconstructed
    reconstructed[..., 0, 0] = np.where(
        intra, levels[..., 0, 0] * INTRA_DC_STEP, reconstructed[..., 0, 0]
    )
    return np.clip(reconstructed, COEFF_MIN, COEFF_MAX).astype(np.int32)


def quantize(coefficients: np.ndarray, qp: int, intra: bool) -> np.ndarray:
    """Quantize a batch of 8x8 blocks that share one coding mode."""
    return quantize_blocks(coefficients, bool(intra), qp)


def dequantize(levels: np.ndarray, qp: int, intra: bool) -> np.ndarray:
    """Reconstruct DCT coefficients from same-mode quantized levels."""
    return dequantize_blocks(levels, bool(intra), qp)
