"""8x8 DCT and IDCT, in float and fixed-point integer variants.

The paper implemented its codec "using fixed-point arithmetic since the
PDAs that we used do not have a floating point unit".  The fixed-point
transform here mirrors that: the orthonormal DCT-II basis is scaled to
13-bit integers and all arithmetic is integer with rounding shifts.  The
float transform is the mathematical reference; tests bound the integer
transform's round-trip error to +/-3 grey levels (the forward output
is rounded to whole coefficients, which alone costs up to ~2 grey
levels on adversarial blocks, plus the basis quantization).

Both variants are vectorized over a batch axis: inputs are
``(n, 8, 8)`` arrays and the whole batch is transformed with two matrix
multiplications.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Fixed-point fractional bits for the integer DCT basis.
FIXED_POINT_BITS = 13


@lru_cache(maxsize=1)
def dct_basis() -> np.ndarray:
    """The orthonormal 8x8 DCT-II basis matrix ``D``.

    Row ``k`` holds ``c(k) * cos((2n + 1) k pi / 16)`` so that the forward
    transform of block ``B`` is ``D @ B @ D.T``.
    """
    k = np.arange(8)[:, None].astype(np.float64)
    n = np.arange(8)[None, :].astype(np.float64)
    basis = np.cos((2 * n + 1) * k * np.pi / 16.0)
    basis[0, :] *= np.sqrt(1.0 / 2.0)
    basis *= np.sqrt(2.0 / 8.0)
    basis.setflags(write=False)
    return basis


@lru_cache(maxsize=1)
def _int_basis() -> np.ndarray:
    scaled = np.round(dct_basis() * (1 << FIXED_POINT_BITS)).astype(np.int64)
    scaled.setflags(write=False)
    return scaled


@lru_cache(maxsize=1)
def _int_basis_float() -> np.ndarray:
    scaled = _int_basis().astype(np.float64)
    scaled.setflags(write=False)
    return scaled


#: Inputs below this magnitude keep every product and partial sum of the
#: two transform stages under 2**53, so the float64 matmul path is exact
#: (integers in, the same integers out) and BLAS replaces the much
#: slower int64 einsum.  Quantizer output is clamped to 12 bits, so real
#: streams are always far below the limit.
_EXACT_FLOAT_LIMIT = 1 << 33


def _as_batch(blocks: np.ndarray) -> np.ndarray:
    if blocks.ndim == 2:
        blocks = blocks[None]
    if blocks.ndim != 3 or blocks.shape[1:] != (8, 8):
        raise ValueError(f"expected (n, 8, 8) blocks, got shape {blocks.shape}")
    return blocks


def forward_dct_float(blocks: np.ndarray) -> np.ndarray:
    """Float forward DCT of a batch of 8x8 blocks."""
    blocks = _as_batch(blocks).astype(np.float64)
    basis = dct_basis()
    return np.einsum("ij,njk,lk->nil", basis, blocks, basis, optimize=True)


def inverse_dct_float(coefficients: np.ndarray) -> np.ndarray:
    """Float inverse DCT of a batch of 8x8 coefficient blocks."""
    coefficients = _as_batch(coefficients).astype(np.float64)
    basis = dct_basis()
    return np.einsum("ji,njk,kl->nil", basis, coefficients, basis, optimize=True)


def _rounded_shift(values: np.ndarray, bits: int) -> np.ndarray:
    """Arithmetic right shift with round-to-nearest (ties away from zero)."""
    half = 1 << (bits - 1)
    return np.where(
        values >= 0,
        (values + half) >> bits,
        -((-values + half) >> bits),
    )


def _rounded_shift_exact_float(values: np.ndarray, bits: int) -> np.ndarray:
    """:func:`_rounded_shift` on a float64 array of exact integers.

    ``|values| + half`` must stay below 2**53 so every intermediate is
    exactly representable; then abs, add, scaling by a power of two,
    floor and sign transfer are all exact and the result equals the
    integer shift bit for bit.
    """
    half = float(1 << (bits - 1))
    scale = 2.0 ** -bits
    return np.copysign(np.floor((np.abs(values) + half) * scale), values)


def forward_dct_int(blocks: np.ndarray) -> np.ndarray:
    """Fixed-point forward DCT; integer in, integer out.

    Computes ``(Dq @ B @ Dq.T) >> 2s`` with a rounding shift after each
    multiplication stage, where ``Dq = round(D * 2^s)``.
    """
    blocks = _as_batch(blocks).astype(np.int64)
    if blocks.size and int(np.abs(blocks).max()) < _EXACT_FLOAT_LIMIT:
        basis = _int_basis_float()
        stage1 = _rounded_shift_exact_float(
            basis @ blocks.astype(np.float64), FIXED_POINT_BITS
        )
        return _rounded_shift_exact_float(
            stage1 @ basis.T, FIXED_POINT_BITS
        ).astype(np.int64)
    basis = _int_basis()
    stage1 = _rounded_shift(np.einsum("ij,njk->nik", basis, blocks), FIXED_POINT_BITS)
    stage2 = _rounded_shift(np.einsum("nik,lk->nil", stage1, basis), FIXED_POINT_BITS)
    return stage2


def inverse_dct_int(coefficients: np.ndarray) -> np.ndarray:
    """Fixed-point inverse DCT; integer in, integer out."""
    coefficients = _as_batch(coefficients).astype(np.int64)
    if coefficients.size and int(np.abs(coefficients).max()) < _EXACT_FLOAT_LIMIT:
        basis = _int_basis_float()
        stage1 = _rounded_shift_exact_float(
            basis.T @ coefficients.astype(np.float64), FIXED_POINT_BITS
        )
        return _rounded_shift_exact_float(
            stage1 @ basis, FIXED_POINT_BITS
        ).astype(np.int64)
    basis = _int_basis()
    stage1 = _rounded_shift(
        np.einsum("ji,njk->nik", basis, coefficients), FIXED_POINT_BITS
    )
    stage2 = _rounded_shift(np.einsum("nik,kl->nil", stage1, basis), FIXED_POINT_BITS)
    return stage2


def forward_dct(blocks: np.ndarray, fixed_point: bool = True) -> np.ndarray:
    """Forward DCT, dispatching on arithmetic variant."""
    if fixed_point:
        return forward_dct_int(np.rint(blocks).astype(np.int64))
    return forward_dct_float(blocks)


def inverse_dct(coefficients: np.ndarray, fixed_point: bool = True) -> np.ndarray:
    """Inverse DCT, dispatching on arithmetic variant."""
    if fixed_point:
        return inverse_dct_int(np.rint(coefficients).astype(np.int64))
    return inverse_dct_float(coefficients)


def forward_dct_blocks(
    blocks: np.ndarray, fixed_point: bool = True
) -> np.ndarray:
    """Forward-transform a whole ``(n, 8, 8)`` stack in one call.

    The canonical batched entry point: the encoder gathers every
    residual block of a frame (luma and chroma) into one stack and
    transforms it with two matrix multiplications against the
    precomputed basis (``C @ X @ C.T`` over the stacked axis) — no
    per-block Python loop anywhere on the hot path.  Bit-identical to
    transforming each block alone (the batch axis only changes the
    matmul shape, never the per-element arithmetic).
    """
    return forward_dct(blocks, fixed_point)


def inverse_dct_blocks(
    coefficients: np.ndarray, fixed_point: bool = True
) -> np.ndarray:
    """Inverse-transform a whole ``(n, 8, 8)`` stack in one call."""
    return inverse_dct(coefficients, fixed_point)
