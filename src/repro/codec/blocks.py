"""Reshaping helpers between frames, 16x16 macroblocks and 8x8 blocks.

All routines are pure reshape/transpose operations so the whole frame can
be processed as one numpy batch; nothing here copies per macroblock in a
Python loop.
"""

from __future__ import annotations

import numpy as np

MB = 16  # macroblock edge
BLK = 8  # transform block edge


def frame_to_macroblocks(frame: np.ndarray) -> np.ndarray:
    """``(H, W)`` frame -> ``(mb_rows, mb_cols, 16, 16)`` macroblock grid."""
    height, width = frame.shape
    if height % MB or width % MB:
        raise ValueError(f"frame {width}x{height} not divisible by {MB}")
    return (
        frame.reshape(height // MB, MB, width // MB, MB)
        .transpose(0, 2, 1, 3)
        .copy()
    )


def macroblocks_to_frame(macroblocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`frame_to_macroblocks`."""
    mb_rows, mb_cols = macroblocks.shape[:2]
    return (
        macroblocks.transpose(0, 2, 1, 3)
        .reshape(mb_rows * MB, mb_cols * MB)
        .copy()
    )


def macroblocks_to_blocks(macroblocks: np.ndarray) -> np.ndarray:
    """``(..., 16, 16)`` macroblocks -> ``(..., 4, 8, 8)`` transform blocks.

    Block order within a macroblock is top-left, top-right, bottom-left,
    bottom-right (H.263 luma block order).
    """
    lead = macroblocks.shape[:-2]
    reshaped = macroblocks.reshape(*lead, 2, BLK, 2, BLK)
    axes = tuple(range(len(lead))) + (
        len(lead),
        len(lead) + 2,
        len(lead) + 1,
        len(lead) + 3,
    )
    return reshaped.transpose(axes).reshape(*lead, 4, BLK, BLK).copy()


def blocks_to_macroblocks(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`macroblocks_to_blocks`."""
    lead = blocks.shape[:-3]
    reshaped = blocks.reshape(*lead, 2, 2, BLK, BLK)
    axes = tuple(range(len(lead))) + (
        len(lead),
        len(lead) + 2,
        len(lead) + 1,
        len(lead) + 3,
    )
    return reshaped.transpose(axes).reshape(*lead, MB, MB).copy()


def plane_to_blocks(plane: np.ndarray) -> np.ndarray:
    """``(H, W)`` plane -> ``(H/8, W/8, 8, 8)`` grid of transform blocks.

    For a 4:2:0 chroma plane this grid aligns one block per luma
    macroblock.
    """
    height, width = plane.shape
    if height % BLK or width % BLK:
        raise ValueError(f"plane {width}x{height} not divisible by {BLK}")
    return (
        plane.reshape(height // BLK, BLK, width // BLK, BLK)
        .transpose(0, 2, 1, 3)
        .copy()
    )


def blocks_to_plane(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`plane_to_blocks`."""
    rows, cols = blocks.shape[:2]
    return blocks.transpose(0, 2, 1, 3).reshape(rows * BLK, cols * BLK).copy()


def chroma_vector(component: int) -> int:
    """Map a luma motion-vector component to 4:2:0 chroma (divide by
    two, rounding half away from zero) — used identically by encoder
    and decoder so their predictions match exactly."""
    magnitude = (abs(int(component)) + 1) // 2
    return magnitude if component >= 0 else -magnitude


def sad_self(frame: np.ndarray) -> np.ndarray:
    """The paper's ``SAD_self`` for every macroblock of a frame.

    ``SAD_self`` is the deviation of a macroblock from its own mean — the
    cost proxy for intra-coding it.  The inter/intra decision of Figure 4
    compares it against the motion-compensated SAD.
    Returns an ``(mb_rows, mb_cols)`` int64 array.
    """
    macroblocks = frame_to_macroblocks(frame.astype(np.int64))
    means = macroblocks.mean(axis=(2, 3), keepdims=True)
    return np.abs(macroblocks - np.rint(means)).sum(axis=(2, 3)).astype(np.int64)


def colocated_sad(current: np.ndarray, previous: np.ndarray) -> np.ndarray:
    """Per-macroblock SAD between colocated blocks of two frames.

    This is the zero-motion SAD — the content-activity signal that both
    AIR's ranking and PBPAIR's similarity factor are built on.
    """
    if current.shape != previous.shape:
        raise ValueError("frames must share dimensions")
    diff = np.abs(current.astype(np.int64) - previous.astype(np.int64))
    return frame_to_macroblocks(diff).sum(axis=(2, 3)).astype(np.int64)
