"""Scalar per-block reference implementations of the codec kernels.

The production kernels in :mod:`repro.codec.dct`, :mod:`repro.codec.quant`
and :mod:`repro.codec.motion` are batched: whole ``(n, 8, 8)`` stacks per
transform call, whole search rounds per SAD reduction.  This module keeps
the obvious one-block-at-a-time formulation of the same arithmetic —
a Python loop over blocks (or macroblocks), each processed alone.

It exists for two reasons:

* **Differential oracle.**  ``tests/test_block_kernels.py`` checks the
  batched kernels against these functions over random stacks and full
  synthetic sequences: identical coefficients, identical motion vectors
  and identical operation counts.  The reference deliberately re-derives
  its own fixed-point basis from :func:`repro.codec.dct.dct_basis` and
  re-implements the rounding shift, so a bug in the production fast
  paths (e.g. the float64-exact BLAS route) cannot hide in a shared
  helper.
* **Benchmark baseline.**  ``benchmarks/bench_block_kernels.py`` times
  these loops as the "before" of the batched kernels; the ratio is what
  ``BENCH_blocks.json`` records and the CI perf gate guards.

Nothing here counts operations into the observability tracer: the
reference reports its counts in return values only, so differential
tests can compare them against what the batched kernels *did* record.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codec.blocks import MB
from repro.codec.dct import FIXED_POINT_BITS, dct_basis
from repro.codec.motion import MECostFunction, MotionField
from repro.codec.quant import (
    COEFF_MAX,
    COEFF_MIN,
    INTRA_DC_STEP,
    LEVEL_MAX,
)

_LARGE_DIAMOND = (
    (-2, 0), (-1, -1), (-1, 1), (0, -2), (0, 2), (1, -1), (1, 1), (2, 0),
)
_SMALL_DIAMOND = ((-1, 0), (0, -1), (0, 1), (1, 0))


def _int_basis() -> np.ndarray:
    """13-bit fixed-point DCT basis, re-derived from the float basis."""
    return np.round(dct_basis() * (1 << FIXED_POINT_BITS)).astype(np.int64)


def _rounded_shift(values: np.ndarray, bits: int) -> np.ndarray:
    """Arithmetic right shift, round to nearest, ties away from zero."""
    half = 1 << (bits - 1)
    return np.where(
        values >= 0,
        (values + half) >> bits,
        -((-values + half) >> bits),
    )


def forward_dct_block(block: np.ndarray, fixed_point: bool = True) -> np.ndarray:
    """Forward DCT of a single 8x8 block."""
    if not fixed_point:
        basis = dct_basis()
        return basis @ np.asarray(block, dtype=np.float64) @ basis.T
    basis = _int_basis()
    block = np.rint(np.asarray(block)).astype(np.int64)
    stage1 = _rounded_shift(basis @ block, FIXED_POINT_BITS)
    return _rounded_shift(stage1 @ basis.T, FIXED_POINT_BITS)


def inverse_dct_block(
    coefficients: np.ndarray, fixed_point: bool = True
) -> np.ndarray:
    """Inverse DCT of a single 8x8 coefficient block."""
    if not fixed_point:
        basis = dct_basis()
        return basis.T @ np.asarray(coefficients, dtype=np.float64) @ basis
    basis = _int_basis()
    coefficients = np.rint(np.asarray(coefficients)).astype(np.int64)
    stage1 = _rounded_shift(basis.T @ coefficients, FIXED_POINT_BITS)
    return _rounded_shift(stage1 @ basis, FIXED_POINT_BITS)


def forward_dct_scalar(
    blocks: np.ndarray, fixed_point: bool = True
) -> np.ndarray:
    """One-block-at-a-time forward DCT of an ``(n, 8, 8)`` stack."""
    blocks = np.asarray(blocks)
    return np.stack(
        [forward_dct_block(block, fixed_point) for block in blocks]
    )


def inverse_dct_scalar(
    coefficients: np.ndarray, fixed_point: bool = True
) -> np.ndarray:
    """One-block-at-a-time inverse DCT of an ``(n, 8, 8)`` stack."""
    coefficients = np.asarray(coefficients)
    return np.stack(
        [inverse_dct_block(block, fixed_point) for block in coefficients]
    )


def quantize_block(block: np.ndarray, intra: bool, qp: int) -> np.ndarray:
    """H.263 quantization of a single 8x8 coefficient block."""
    if not 1 <= qp <= 31:
        raise ValueError(f"QP must be in [1, 31], got {qp}")
    block = np.clip(np.asarray(block), COEFF_MIN, COEFF_MAX)
    magnitude = np.abs(block.astype(np.int64))
    dead_zone = 0 if intra else qp // 2
    levels = np.maximum(magnitude - dead_zone, 0) // (2 * qp)
    levels = np.clip(levels, 0, LEVEL_MAX)
    levels = (np.sign(block) * levels).astype(np.int32)
    if intra:
        dc = int(np.rint(block[0, 0] / INTRA_DC_STEP))
        levels[0, 0] = min(max(dc, 1), 254)
    return levels


def dequantize_block(levels: np.ndarray, intra: bool, qp: int) -> np.ndarray:
    """H.263 reconstruction of a single quantized 8x8 block."""
    if not 1 <= qp <= 31:
        raise ValueError(f"QP must be in [1, 31], got {qp}")
    levels = np.asarray(levels, dtype=np.int64)
    magnitude = np.abs(levels)
    reconstructed = qp * (2 * magnitude + 1)
    if qp % 2 == 0:
        reconstructed -= 1
    reconstructed = np.where(magnitude == 0, 0, reconstructed)
    reconstructed = np.sign(levels) * reconstructed
    if intra:
        reconstructed[0, 0] = levels[0, 0] * INTRA_DC_STEP
    return np.clip(reconstructed, COEFF_MIN, COEFF_MAX).astype(np.int32)


def quantize_scalar(coefficients: np.ndarray, intra, qp: int) -> np.ndarray:
    """One-block-at-a-time quantization of an ``(n, 8, 8)`` stack.

    ``intra`` is a bool or a per-block boolean sequence.
    """
    coefficients = np.asarray(coefficients)
    lead = coefficients.shape[:-2]
    flags = np.broadcast_to(np.asarray(intra, dtype=bool), lead).reshape(-1)
    flat = coefficients.reshape(-1, 8, 8)
    out = np.stack(
        [
            quantize_block(block, bool(flag), qp)
            for block, flag in zip(flat, flags)
        ]
    )
    return out.reshape(lead + (8, 8))


def dequantize_scalar(levels: np.ndarray, intra, qp: int) -> np.ndarray:
    """One-block-at-a-time reconstruction of an ``(n, 8, 8)`` stack."""
    levels = np.asarray(levels)
    lead = levels.shape[:-2]
    flags = np.broadcast_to(np.asarray(intra, dtype=bool), lead).reshape(-1)
    flat = levels.reshape(-1, 8, 8)
    out = np.stack(
        [
            dequantize_block(block, bool(flag), qp)
            for block, flag in zip(flat, flags)
        ]
    )
    return out.reshape(lead + (8, 8))


def block_sad(current_mb: np.ndarray, candidate_mb: np.ndarray) -> int:
    """SAD of one 16x16 macroblock against one candidate block."""
    return int(
        np.abs(
            current_mb.astype(np.int64) - candidate_mb.astype(np.int64)
        ).sum()
    )


def _scalar_cost(
    cost_function: Optional[MECostFunction],
    sad: int,
    dy: int,
    dx: int,
    row: int,
    col: int,
) -> float:
    if cost_function is None:
        return float(sad)
    return float(
        cost_function(
            np.int64(sad), np.int64(dy), np.int64(dx),
            np.int64(row), np.int64(col),
        )
    )


def diamond_search_scalar(
    current: np.ndarray,
    reference: np.ndarray,
    search_range: int = 15,
    early_exit_sad: int = 1600,
    cost_function: Optional[MECostFunction] = None,
    active: Optional[np.ndarray] = None,
) -> MotionField:
    """Sequential per-macroblock diamond search.

    The plain-Python transliteration of
    :class:`repro.codec.motion.DiamondSearchMotionEstimator`: evaluate
    the center, early-exit below the SAD threshold, iterate the large
    diamond with the center moving *as soon as* an offset improves (the
    within-round drift the batched walk re-plays), then refine with the
    small diamond.  Counts are identical: every visited offset of every
    round is one evaluation, including the final non-improving round.
    """
    srange = search_range
    height, width = current.shape
    mb_rows, mb_cols = height // MB, width // MB
    if active is None:
        active = np.ones((mb_rows, mb_cols), dtype=bool)

    padded = np.pad(reference.astype(np.int64), srange, mode="edge")
    current_i = current.astype(np.int64)
    mvs = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
    sads = np.zeros((mb_rows, mb_cols), dtype=np.int64)
    per_mb = np.zeros((mb_rows, mb_cols), dtype=np.int64)
    evaluated = 0

    for row in range(mb_rows):
        for col in range(mb_cols):
            if not active[row, col]:
                continue
            cur = current_i[row * MB : (row + 1) * MB, col * MB : (col + 1) * MB]
            oy = row * MB + srange
            ox = col * MB + srange

            def sad_at(dy: int, dx: int) -> int:
                cand = padded[oy + dy : oy + dy + MB, ox + dx : ox + dx + MB]
                return block_sad(cur, cand)

            best_dy, best_dx = 0, 0
            best_sad = sad_at(0, 0)
            best_cost = _scalar_cost(cost_function, best_sad, 0, 0, row, col)
            evals = 1

            if best_sad >= early_exit_sad:
                for _ in range(2 * srange):
                    improved = False
                    for off_y, off_x in _LARGE_DIAMOND:
                        dy = int(np.clip(best_dy + off_y, -srange, srange))
                        dx = int(np.clip(best_dx + off_x, -srange, srange))
                        sad = sad_at(dy, dx)
                        cost = _scalar_cost(
                            cost_function, sad, dy, dx, row, col
                        )
                        evals += 1
                        if cost < best_cost:
                            best_cost, best_sad = cost, sad
                            best_dy, best_dx = dy, dx
                            improved = True
                    if not improved:
                        break

            if best_sad >= early_exit_sad:
                for off_y, off_x in _SMALL_DIAMOND:
                    dy = int(np.clip(best_dy + off_y, -srange, srange))
                    dx = int(np.clip(best_dx + off_x, -srange, srange))
                    sad = sad_at(dy, dx)
                    cost = _scalar_cost(cost_function, sad, dy, dx, row, col)
                    evals += 1
                    if cost < best_cost:
                        best_cost, best_sad = cost, sad
                        best_dy, best_dx = dy, dx

            mvs[row, col] = (best_dy, best_dx)
            sads[row, col] = best_sad
            per_mb[row, col] = evals
            evaluated += evals

    return MotionField(mvs, sads, evaluated, per_mb)


def three_step_search_scalar(
    current: np.ndarray,
    reference: np.ndarray,
    search_range: int = 7,
    cost_function: Optional[MECostFunction] = None,
    active: Optional[np.ndarray] = None,
) -> MotionField:
    """Sequential per-macroblock three-step (logarithmic) search.

    Mirrors :class:`repro.codec.motion.ThreeStepMotionEstimator`: each
    round scores the 9-point (8 once seeded) neighbourhood of a fixed
    center under strict-< updates, then the center jumps to the round's
    best and the step halves.
    """
    srange = search_range
    height, width = current.shape
    mb_rows, mb_cols = height // MB, width // MB
    if active is None:
        active = np.ones((mb_rows, mb_cols), dtype=bool)

    padded = np.pad(reference.astype(np.int64), srange, mode="edge")
    current_i = current.astype(np.int64)
    mvs = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
    sads = np.zeros((mb_rows, mb_cols), dtype=np.int64)
    per_mb = np.zeros((mb_rows, mb_cols), dtype=np.int64)
    evaluated = 0

    for row in range(mb_rows):
        for col in range(mb_cols):
            if not active[row, col]:
                continue
            cur = current_i[row * MB : (row + 1) * MB, col * MB : (col + 1) * MB]
            oy = row * MB + srange
            ox = col * MB + srange

            center_dy, center_dx = 0, 0
            best_cost = np.inf
            best_sad, best_dy, best_dx = 0, 0, 0
            evals = 0

            step = 1 << max(srange.bit_length() - 1, 0)
            seeded = False
            while step >= 1:
                for off_y in (-step, 0, step):
                    for off_x in (-step, 0, step):
                        if seeded and off_y == 0 and off_x == 0:
                            continue
                        dy = int(np.clip(center_dy + off_y, -srange, srange))
                        dx = int(np.clip(center_dx + off_x, -srange, srange))
                        cand = padded[
                            oy + dy : oy + dy + MB, ox + dx : ox + dx + MB
                        ]
                        sad = block_sad(cur, cand)
                        cost = _scalar_cost(
                            cost_function, sad, dy, dx, row, col
                        )
                        evals += 1
                        if cost < best_cost:
                            best_cost, best_sad = cost, sad
                            best_dy, best_dx = dy, dx
                center_dy, center_dx = best_dy, best_dx
                seeded = True
                step //= 2

            mvs[row, col] = (best_dy, best_dx)
            sads[row, col] = best_sad
            per_mb[row, col] = evals
            evaluated += evals

    return MotionField(mvs, sads, evaluated, per_mb)
