"""The H.263-style encoder with pluggable error-resilience strategies.

Per P-frame macroblock the encoder follows the decision pipeline of the
paper's Figures 2 and 4:

1. ask the strategy which macroblocks to intra-code *before* motion
   estimation (those skip the search entirely — the energy lever);
2. run motion estimation for the rest, optionally under the strategy's
   cost function (PBPAIR's probability-aware ME);
3. apply the generic inter/intra test
   ``(SAD_mv - SAD_Th) > SAD_self  =>  intra``;
4. let the strategy force further intra macroblocks with the motion
   field in hand (AIR's SAD ranking, PGOP's stride-back);
5. transform, quantize, entropy-code, and reconstruct (the encoder
   predicts from its own decoded output, never from source frames).

All work is tallied into an :class:`OperationCounters`, which the energy
model prices per device.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.codec.bitstream import BitWriter
from repro.codec.blocks import (
    blocks_to_macroblocks,
    blocks_to_plane,
    frame_to_macroblocks,
    macroblocks_to_blocks,
    macroblocks_to_frame,
    plane_to_blocks,
    sad_self,
)
from repro.codec.dct import forward_dct_blocks, inverse_dct_blocks
from repro.codec.halfpel import (
    halfpel_to_pixels,
    motion_compensate_half,
    refine_half_pel,
)
from repro.codec.motion import (
    MotionField,
    build_motion_estimator,
    motion_compensate,
    motion_compensate_chroma,
)
from repro.codec.quant import dequantize_blocks, quantize_blocks
from repro.codec.syntax import encode_macroblock_layer
from repro.codec.types import (
    CodecConfig,
    EncodedFrame,
    FrameEncodeStats,
    FrameType,
    MacroblockDecision,
    MacroblockMode,
)
from repro.energy.counters import OperationCounters
from repro.obs import get_tracer
from repro.video.frame import Frame

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.resilience
    from repro.resilience.base import ResilienceStrategy


def _psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    mse = np.mean(
        (original.astype(np.float64) - reconstructed.astype(np.float64)) ** 2
    )
    if mse == 0:
        return float("inf")
    return float(10.0 * np.log10(255.0**2 / mse))


class Encoder:
    """Stateful sequence encoder.

    Args:
        config: codec parameters shared with the decoder.
        strategy: error-resilience scheme; defaults to
            :class:`repro.resilience.none.NoResilience` (the paper's
            "NO" baseline).
        counters: external work tally to accumulate into; a fresh one is
            created when omitted (exposed as :attr:`counters`).
    """

    def __init__(
        self,
        config: CodecConfig,
        strategy: Optional["ResilienceStrategy"] = None,
        counters: Optional[OperationCounters] = None,
    ) -> None:
        if strategy is None:
            from repro.resilience.none import NoResilience

            strategy = NoResilience()
        self.config = config
        self.strategy = strategy
        #: Active quantizer; starts at the config's value and may be
        #: changed between frames (e.g. by a rate controller).  The
        #: value used for each frame travels in
        #: :attr:`repro.codec.types.EncodedFrame.qp`.
        self.quantizer = config.quantizer
        self.counters = counters if counters is not None else OperationCounters()
        self._estimator = build_motion_estimator(
            config.motion_search, config.search_range, config.me_early_exit_sad
        )
        self._previous_reconstruction: Optional[np.ndarray] = None
        self._previous_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None
        self.strategy.reset()

    @property
    def previous_reconstruction(self) -> Optional[np.ndarray]:
        """The encoder-side reconstruction of the last encoded frame."""
        return self._previous_reconstruction

    def reset(self) -> None:
        """Forget all sequence state (reference frame, strategy state)."""
        self._previous_reconstruction = None
        self._previous_chroma = None
        self.quantizer = self.config.quantizer
        self.strategy.reset()

    def encode_sequence(self, frames) -> list[EncodedFrame]:
        """Encode an iterable of :class:`Frame` objects in order."""
        return [self.encode_frame(frame) for frame in frames]

    def encode_frame(self, frame: Frame) -> EncodedFrame:
        """Encode one frame and advance the prediction loop."""
        config = self.config
        if frame.width != config.width or frame.height != config.height:
            raise ValueError(
                f"frame {frame.width}x{frame.height} does not match codec "
                f"config {config.width}x{config.height}"
            )
        if config.chroma and not frame.has_chroma:
            raise ValueError(
                "codec is configured for 4:2:0 chroma but the frame "
                "carries no chroma planes"
            )
        current = frame.pixels
        mb_rows, mb_cols = config.mb_rows, config.mb_cols
        mb_count = config.mb_count
        self.counters.mode_decisions += mb_count

        frame_type = self.strategy.begin_frame(frame.index)
        if self._previous_reconstruction is None:
            frame_type = FrameType.I  # nothing to predict from

        if frame_type is FrameType.I:
            modes = np.full((mb_rows, mb_cols), MacroblockMode.INTRA, dtype=object)
            mvs = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
            sads = np.zeros((mb_rows, mb_cols), dtype=np.int64)
            sad_self_map = np.zeros((mb_rows, mb_cols), dtype=np.int64)
            forced_by = np.full((mb_rows, mb_cols), "i-frame", dtype=object)
            me_skipped = np.ones((mb_rows, mb_cols), dtype=bool)
        else:
            (
                modes,
                mvs,
                sads,
                sad_self_map,
                forced_by,
                me_skipped,
            ) = self._decide_p_frame(frame.index, current, mb_rows, mb_cols)

        qp_used = self.quantizer
        if not 1 <= qp_used <= 31:
            raise ValueError(f"quantizer must be in [1, 31], got {qp_used}")
        payload, offsets, reconstruction, chroma_recon = (
            self._encode_macroblocks(frame_type, frame, modes, mvs, qp_used)
        )

        decisions = tuple(
            MacroblockDecision(
                mode=mode,
                mv=(mv[0], mv[1]),
                sad_mv=sad_mv,
                sad_self=sad_self,
                me_skipped=skipped,
                forced_by=forced,
            )
            for mode, mv, sad_mv, sad_self, skipped, forced in zip(
                modes.ravel().tolist(),
                mvs.reshape(-1, 2).tolist(),
                sads.ravel().tolist(),
                sad_self_map.ravel().tolist(),
                me_skipped.ravel().tolist(),
                forced_by.ravel().tolist(),
            )
        )

        bits = offsets[-1]
        intra = int(np.sum(modes == MacroblockMode.INTRA))
        stats = FrameEncodeStats(
            frame_index=frame.index,
            frame_type=frame_type,
            bits=bits,
            intra_mbs=intra,
            inter_mbs=mb_count - intra,
            me_skipped_mbs=int(me_skipped.sum()),
            psnr_reconstructed=_psnr(current, reconstruction),
        )

        from repro.resilience.base import FrameFeedback

        feedback_mvs = halfpel_to_pixels(mvs) if config.half_pel else mvs
        self.strategy.frame_done(
            FrameFeedback(
                frame_index=frame.index,
                frame_type=frame_type,
                modes=modes,
                mvs=feedback_mvs,
                current=current,
                previous_reconstruction=self._previous_reconstruction,
                bits=bits,
                counters=self.counters,
            )
        )
        self._previous_reconstruction = reconstruction
        self._previous_chroma = chroma_recon

        return EncodedFrame(
            frame_index=frame.index,
            frame_type=frame_type,
            payload=payload,
            decisions=decisions,
            stats=stats,
            reconstruction=reconstruction,
            mb_bit_offsets=tuple(offsets),
            qp=qp_used,
            reconstruction_chroma=chroma_recon,
        )

    def _decide_p_frame(
        self, frame_index: int, current: np.ndarray, mb_rows: int, mb_cols: int
    ):
        """Run the four-stage mode decision pipeline for a P-frame."""
        from repro.resilience.base import PostMEContext, PreMEContext

        reference = self._previous_reconstruction
        assert reference is not None

        pre_context = PreMEContext(
            frame_index=frame_index,
            current=current,
            previous_reconstruction=reference,
            mb_rows=mb_rows,
            mb_cols=mb_cols,
            counters=self.counters,
        )
        pre_mask = self.strategy.pre_me_intra(pre_context)
        if pre_mask.shape != (mb_rows, mb_cols):
            raise ValueError("strategy pre-ME mask has wrong shape")

        with get_tracer().span("motion_estimation") as me_span:
            motion = self._estimator.estimate(
                current,
                reference,
                cost_function=self.strategy.me_cost_function(),
                active=~pre_mask,
            )
            self.counters.sad_blocks += motion.candidates_evaluated

            if self.config.half_pel:
                mvs_half, refined_sads, extra = refine_half_pel(
                    current,
                    reference,
                    motion.mvs,
                    motion.sads,
                    ~pre_mask,
                    self.config.search_range,
                )
                self.counters.sad_blocks += extra
                motion = MotionField(
                    mvs=mvs_half,
                    sads=refined_sads,
                    candidates_evaluated=motion.candidates_evaluated + extra,
                    candidates_per_mb=motion.candidates_per_mb,
                )
                me_span.add(sad_blocks=extra)

            sad_self_map = sad_self(current)
            self.counters.sad_blocks += mb_rows * mb_cols  # one pass per MB
            me_span.add(sad_blocks=mb_rows * mb_cols)

        # The generic inter/intra test from the paper's Figure 4:
        # "if (SAD_mv - SAD_Th) > SAD_self then encode as INTRA".
        sad_test = (~pre_mask) & (
            (motion.sads - self.config.sad_threshold) > sad_self_map
        )
        intra_mask = pre_mask | sad_test

        post_context = PostMEContext(
            frame_index=frame_index,
            current=current,
            previous_reconstruction=reference,
            mb_rows=mb_rows,
            mb_cols=mb_cols,
            counters=self.counters,
            motion=motion,
            sad_self=sad_self_map,
            intra_mask=intra_mask,
        )
        post_mask = self.strategy.post_me_intra(post_context)
        if post_mask.shape != (mb_rows, mb_cols):
            raise ValueError("strategy post-ME mask has wrong shape")
        post_mask = post_mask & ~intra_mask

        final_intra = intra_mask | post_mask
        modes = np.where(
            final_intra,
            np.full((mb_rows, mb_cols), MacroblockMode.INTRA, dtype=object),
            np.full((mb_rows, mb_cols), MacroblockMode.INTER, dtype=object),
        )

        forced_by = np.full((mb_rows, mb_cols), None, dtype=object)
        forced_by[pre_mask] = "pre-me"
        forced_by[sad_test] = "sad-test"
        forced_by[post_mask] = self.strategy.post_label

        mvs = motion.mvs.copy()
        mvs[final_intra] = 0
        sads = motion.sads.copy()
        sads[pre_mask] = 0

        return modes, mvs, sads, sad_self_map, forced_by, pre_mask.copy()

    def _quantize_blocks(
        self, coefficients: np.ndarray, intra_grid: np.ndarray, qp: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantize a ``(rows, cols, n, 8, 8)`` batch by per-MB mode.

        One single-pass call per direction: the per-block intra mask is
        the MB grid broadcast across each macroblock's blocks, so mixed
        frames never split into per-mode gather/scatter passes.
        Returns ``(levels, reconstructed_coefficients)``.
        """
        intra_blocks = intra_grid[:, :, None]
        levels = quantize_blocks(coefficients, intra_blocks, qp)
        recon = dequantize_blocks(levels, intra_blocks, qp)
        return levels, recon

    def _encode_chroma_plane(
        self,
        plane: np.ndarray,
        previous_plane: Optional[np.ndarray],
        intra_grid: np.ndarray,
        mvs: np.ndarray,
        qp: int,
        n_inter: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Transform/quantize one 4:2:0 chroma plane.

        Returns ``(levels, reconstruction)`` where levels are
        ``(rows, cols, 1, 8, 8)`` and reconstruction is the plane.
        """
        config = self.config
        mb_rows, mb_cols = config.mb_rows, config.mb_cols
        if n_inter and previous_plane is not None:
            prediction = motion_compensate_chroma(previous_plane, mvs)
        else:
            prediction = np.zeros_like(plane)
        plane_i = plane.astype(np.int64)
        intra_px = np.repeat(np.repeat(intra_grid, 8, axis=0), 8, axis=1)
        residual = np.where(
            intra_px, plane_i, plane_i - prediction.astype(np.int64)
        )
        blocks = plane_to_blocks(residual).reshape(-1, 8, 8)
        coefficients = forward_dct_blocks(blocks, config.use_fixed_point_dct)
        self.counters.dct_blocks += blocks.shape[0]
        coefficients = coefficients.reshape(mb_rows, mb_cols, 1, 8, 8)
        levels, recon_coeffs = self._quantize_blocks(coefficients, intra_grid, qp)
        self.counters.quant_blocks += mb_rows * mb_cols
        self.counters.dequant_blocks += mb_rows * mb_cols
        decoded = inverse_dct_blocks(
            recon_coeffs.reshape(-1, 8, 8), config.use_fixed_point_dct
        )
        self.counters.idct_blocks += mb_rows * mb_cols
        get_tracer().count(
            dct_blocks=blocks.shape[0],
            quant_blocks=mb_rows * mb_cols,
            dequant_blocks=mb_rows * mb_cols,
            idct_blocks=mb_rows * mb_cols,
        )
        decoded_plane = blocks_to_plane(decoded.reshape(mb_rows, mb_cols, 8, 8))
        reconstruction = np.where(
            intra_px,
            decoded_plane,
            decoded_plane + prediction.astype(np.int64),
        )
        return levels, np.clip(reconstruction, 0, 255).astype(np.uint8)

    def _encode_macroblocks(
        self,
        frame_type: FrameType,
        frame: Frame,
        modes: np.ndarray,
        mvs: np.ndarray,
        qp: int,
    ) -> tuple[
        bytes,
        list[int],
        np.ndarray,
        Optional[tuple[np.ndarray, np.ndarray]],
    ]:
        """Transform, quantize, entropy-code and reconstruct one frame."""
        config = self.config
        current = frame.pixels
        mb_rows, mb_cols = config.mb_rows, config.mb_cols
        intra_grid = modes == MacroblockMode.INTRA
        n_inter = int((~intra_grid).sum())
        tracer = get_tracer()

        with tracer.span("quantize") as quant_span:
            if n_inter:
                if config.half_pel:
                    prediction = motion_compensate_half(
                        self._previous_reconstruction, mvs
                    )
                else:
                    prediction = motion_compensate(
                        self._previous_reconstruction, mvs
                    )
                self.counters.mc_blocks += n_inter
                quant_span.add(mc_blocks=n_inter)
            else:
                prediction = np.zeros_like(current)

            current_i = current.astype(np.int64)
            residual = np.where(
                np.repeat(np.repeat(intra_grid, 16, axis=0), 16, axis=1),
                current_i,
                current_i - prediction.astype(np.int64),
            )

            # Batch transform: (rows, cols, 4, 8, 8) -> flat block batch.
            mb_pixels = frame_to_macroblocks(residual)
            block_batch = macroblocks_to_blocks(mb_pixels).reshape(-1, 8, 8)
            coefficients = forward_dct_blocks(
                block_batch, config.use_fixed_point_dct
            )
            self.counters.dct_blocks += block_batch.shape[0]

            coefficients = coefficients.reshape(mb_rows, mb_cols, 4, 8, 8)
            levels, recon_coeffs = self._quantize_blocks(
                coefficients, intra_grid, qp
            )
            self.counters.quant_blocks += 4 * mb_rows * mb_cols
            self.counters.dequant_blocks += 4 * mb_rows * mb_cols

            decoded_blocks = inverse_dct_blocks(
                recon_coeffs.reshape(-1, 8, 8), config.use_fixed_point_dct
            )
            self.counters.idct_blocks += 4 * mb_rows * mb_cols
            decoded_mbs = blocks_to_macroblocks(
                decoded_blocks.reshape(mb_rows, mb_cols, 4, 8, 8)
            )
            decoded_frame = macroblocks_to_frame(decoded_mbs)
            reconstruction = np.where(
                np.repeat(np.repeat(intra_grid, 16, axis=0), 16, axis=1),
                decoded_frame,
                decoded_frame + prediction.astype(np.int64),
            )
            reconstruction = np.clip(reconstruction, 0, 255).astype(np.uint8)

            chroma_recon: Optional[tuple[np.ndarray, np.ndarray]] = None
            chroma_levels = None
            if config.chroma:
                previous = self._previous_chroma or (None, None)
                chroma_mvs = halfpel_to_pixels(mvs) if config.half_pel else mvs
                cb_levels, cb_recon = self._encode_chroma_plane(
                    frame.cb, previous[0], intra_grid, chroma_mvs, qp, n_inter
                )
                cr_levels, cr_recon = self._encode_chroma_plane(
                    frame.cr, previous[1], intra_grid, chroma_mvs, qp, n_inter
                )
                chroma_levels = np.concatenate([cb_levels, cr_levels], axis=2)
                chroma_recon = (cb_recon, cr_recon)
            quant_span.add(
                dct_blocks=block_batch.shape[0],
                quant_blocks=4 * mb_rows * mb_cols,
                dequant_blocks=4 * mb_rows * mb_cols,
                idct_blocks=4 * mb_rows * mb_cols,
            )

        with tracer.span("entropy_code") as entropy_span:
            writer = BitWriter()
            all_levels = (
                levels
                if chroma_levels is None
                else np.concatenate([levels, chroma_levels], axis=2)
            )
            offsets, n_codewords = encode_macroblock_layer(
                writer,
                frame_type,
                intra_grid,
                mvs,
                all_levels,
                allow_skip=config.allow_skip,
            )
            self.counters.entropy_bits += writer.bit_length
            entropy_span.add(
                entropy_bits=writer.bit_length, vlc_codewords=n_codewords
            )

        return writer.getvalue(), offsets, reconstruction, chroma_recon
