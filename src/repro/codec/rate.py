"""Frame-level rate control (extension; see the paper's conclusions).

The paper notes PBPAIR "is independent from any other encoder and/or
decoder side control mechanisms (i.e. rate control, channel coding,
etc.)" and leaves their cooperation as future work.  This module
provides the classic virtual-buffer rate controller those H.263
encoders shipped with, so the independence claim can actually be
exercised: the controller steers the quantizer toward a target
bits-per-frame while any resilience strategy runs unchanged (the
per-frame QP travels in each fragment header, so the decoder needs no
side channel).

Control law: a leaky-bucket virtual buffer integrates the overshoot
``bits - target`` each frame, and the quantizer is the base QP plus a
term proportional to buffer fullness::

    qp_k = clip(round(base_qp + sensitivity * buffer / target), 1, 31)

Larger buffers (sustained overshoot) coarsen the quantizer; sustained
undershoot drives the buffer negative (bounded at three target frames
of savings) and refines it.
"""

from __future__ import annotations


class RateController:
    """Virtual-buffer quantizer controller targeting bits per frame.

    Args:
        target_bits_per_frame: the rate budget.
        base_qp: quantizer when the buffer is empty.
        sensitivity: QP steps added per target-frame of buffered
            overshoot.
        min_qp, max_qp: quantizer clamp range.
    """

    def __init__(
        self,
        target_bits_per_frame: int,
        base_qp: int = 6,
        sensitivity: float = 2.0,
        min_qp: int = 1,
        max_qp: int = 31,
    ) -> None:
        if target_bits_per_frame <= 0:
            raise ValueError("target_bits_per_frame must be positive")
        if not 1 <= min_qp <= base_qp <= max_qp <= 31:
            raise ValueError("require 1 <= min_qp <= base_qp <= max_qp <= 31")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self.target_bits_per_frame = target_bits_per_frame
        self.base_qp = base_qp
        self.sensitivity = sensitivity
        self.min_qp = min_qp
        self.max_qp = max_qp
        self._buffer_bits = 0.0

    @property
    def buffer_bits(self) -> float:
        """Current virtual-buffer fullness (bits of accumulated overshoot)."""
        return self._buffer_bits

    @property
    def quantizer(self) -> int:
        """The QP the next frame should be encoded with."""
        fullness = self._buffer_bits / self.target_bits_per_frame
        qp = round(self.base_qp + self.sensitivity * fullness)
        return int(min(max(qp, self.min_qp), self.max_qp))

    #: How many target frames of savings the buffer may bank; bounds
    #: how far sustained undershoot can refine the quantizer and how
    #: large a burst the encoder may spend afterwards.
    MAX_BANKED_FRAMES = 3.0

    def observe(self, bits: int) -> int:
        """Account one encoded frame's size; returns the next frame's QP."""
        if bits < 0:
            raise ValueError("bits must be >= 0")
        floor = -self.MAX_BANKED_FRAMES * self.target_bits_per_frame
        self._buffer_bits = max(
            floor, self._buffer_bits + bits - self.target_bits_per_frame
        )
        return self.quantizer

    def reset(self) -> None:
        self._buffer_bits = 0.0
