"""Frame-level rate control (extension; see the paper's conclusions).

The paper notes PBPAIR "is independent from any other encoder and/or
decoder side control mechanisms (i.e. rate control, channel coding,
etc.)" and leaves their cooperation as future work.  This module
provides both halves of that cooperation:

* :class:`RateController` — the classic open-loop virtual-buffer
  controller those H.263 encoders shipped with, kept unchanged for
  callers that want the textbook law.
* :class:`ClosedLoopRateController` — the closed-loop controller the
  grid runner wires through :func:`~repro.sim.pipeline.encode_phase`:
  a per-frame bit budget with carry-over repayment, a QP<->bits table
  learned online from observed frame sizes, per-macroblock-row budget
  accounting from the bitstream's MB offsets, and joint steering of
  PBPAIR's ``Intra_Th`` so refresh intensity and quantizer chase one
  target bitrate together.  Its declarative twin,
  :class:`RateControlConfig`, is what travels in
  :class:`~repro.sim.runner.JobSpec` and over the service wire.

Both controllers drive the encoder the same way (the per-frame QP
travels in each fragment header, so the decoder needs no side channel)
and any resilience strategy runs unchanged underneath.

Virtual-buffer control law (:class:`RateController`): a leaky bucket
integrates the overshoot ``bits - target`` each frame, and the
quantizer is the base QP plus a term proportional to buffer fullness::

    qp_k = clip(round(base_qp + sensitivity * buffer / target), 1, 31)

Closed-loop control law (:class:`ClosedLoopRateController`): each
frame's budget is the target minus a fraction of the accumulated debt
(``budget_k = target - sensitivity * debt / recovery_frames``), and the
quantizer is the *smallest* QP whose predicted size fits that budget,
read off an online table of observed (QP, bits) pairs interpolated by
the first-order ``bits ~ C / QP`` model, then clamped to move at most
``max_qp_step`` per frame (the TMN-style smoothness constraint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.codec.types import EncodedFrame


class RateController:
    """Virtual-buffer quantizer controller targeting bits per frame.

    Args:
        target_bits_per_frame: the rate budget.
        base_qp: quantizer when the buffer is empty.
        sensitivity: QP steps added per target-frame of buffered
            overshoot.
        min_qp, max_qp: quantizer clamp range.
    """

    def __init__(
        self,
        target_bits_per_frame: int,
        base_qp: int = 6,
        sensitivity: float = 2.0,
        min_qp: int = 1,
        max_qp: int = 31,
    ) -> None:
        if target_bits_per_frame <= 0:
            raise ValueError("target_bits_per_frame must be positive")
        if not 1 <= min_qp <= base_qp <= max_qp <= 31:
            raise ValueError("require 1 <= min_qp <= base_qp <= max_qp <= 31")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self.target_bits_per_frame = target_bits_per_frame
        self.base_qp = base_qp
        self.sensitivity = sensitivity
        self.min_qp = min_qp
        self.max_qp = max_qp
        self._buffer_bits = 0.0

    @property
    def buffer_bits(self) -> float:
        """Current virtual-buffer fullness (bits of accumulated overshoot)."""
        return self._buffer_bits

    @property
    def quantizer(self) -> int:
        """The QP the next frame should be encoded with."""
        fullness = self._buffer_bits / self.target_bits_per_frame
        qp = round(self.base_qp + self.sensitivity * fullness)
        return int(min(max(qp, self.min_qp), self.max_qp))

    #: How many target frames of savings the buffer may bank; bounds
    #: how far sustained undershoot can refine the quantizer and how
    #: large a burst the encoder may spend afterwards.
    MAX_BANKED_FRAMES = 3.0

    def observe(self, bits: int) -> int:
        """Account one encoded frame's size; returns the next frame's QP."""
        if bits < 0:
            raise ValueError("bits must be >= 0")
        floor = -self.MAX_BANKED_FRAMES * self.target_bits_per_frame
        self._buffer_bits = max(
            floor, self._buffer_bits + bits - self.target_bits_per_frame
        )
        return self.quantizer

    def reset(self) -> None:
        self._buffer_bits = 0.0


@dataclass(frozen=True)
class RateControlConfig:
    """Declarative closed-loop rate control parameters.

    Flat (primitives-only) on purpose: the config hashes stably into
    the runner's cache keys, pickles to pool workers, and crosses the
    service wire through the same ``_flat_to_json`` helpers every
    other flat dataclass uses.

    Attributes:
        target_kbps: the bitrate the encoded stream should deliver.
        fps: frame rate the kbps target is divided by (the paper's
            clips are 30 fps).
        base_qp: quantizer of the first frame, before any observation
            exists to learn from.
        min_qp, max_qp: quantizer clamp range.
        sensitivity: fraction of the repayment term applied per frame;
            1.0 repays the accumulated debt over ``recovery_frames``,
            smaller values trade convergence speed for steadiness.
        recovery_frames: horizon (in frames) over which accumulated
            over/undershoot is paid back.  Short horizons chase the
            target hard (bursty QP); long horizons smooth QP but leave
            more residual bitrate error at the end of a clip.
        max_qp_step: largest per-frame QP change (TMN-style smoothness;
            also what keeps one outlier frame from derailing the
            QP<->bits table).
        model_smoothing: EMA weight of the newest observation in the
            QP<->bits table (1.0 = trust only the last frame).
        steer_intra: jointly steer PBPAIR's ``Intra_Th`` with the
            quantizer — over budget lowers the refresh threshold
            (fewer intra macroblocks), under budget raises it (spend
            the spare bits on resilience).  Ignored for schemes
            without a live PBPAIR controller.
        intra_gain: fractional ``Intra_Th`` swing at full budget
            pressure (0.25 = up to a quarter off/onto the configured
            threshold).
    """

    target_kbps: float
    fps: float = 30.0
    base_qp: int = 6
    min_qp: int = 1
    max_qp: int = 31
    sensitivity: float = 1.0
    recovery_frames: int = 6
    max_qp_step: int = 2
    model_smoothing: float = 0.5
    steer_intra: bool = True
    intra_gain: float = 0.25

    def __post_init__(self) -> None:
        if self.target_kbps <= 0:
            raise ValueError(
                f"target_kbps must be positive, got {self.target_kbps}"
            )
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        if not 1 <= self.min_qp <= self.base_qp <= self.max_qp <= 31:
            raise ValueError("require 1 <= min_qp <= base_qp <= max_qp <= 31")
        if self.sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        if self.recovery_frames < 1:
            raise ValueError(
                f"recovery_frames must be >= 1, got {self.recovery_frames}"
            )
        if self.max_qp_step < 1:
            raise ValueError(
                f"max_qp_step must be >= 1, got {self.max_qp_step}"
            )
        if not 0.0 < self.model_smoothing <= 1.0:
            raise ValueError("model_smoothing must be in (0, 1]")
        if not 0.0 <= self.intra_gain <= 1.0:
            raise ValueError("intra_gain must be in [0, 1]")

    @property
    def target_bits_per_frame(self) -> float:
        """The per-frame bit budget the kbps target resolves to."""
        return self.target_kbps * 1000.0 / self.fps


class QPBitsModel:
    """Online QP<->bits model for one frame class.

    Predicts through the classic first-order law ``bits ~ C / QP``
    (quant step is ``2 * QP``, so frame size falls roughly inversely
    with the quantizer) where the complexity ``C`` is a recency-
    weighted mean of observed ``bits * qp`` products.  Predicting from
    a single fresh complexity — rather than interpolating between raw
    per-QP table entries — keeps the predicted curve monotone in QP
    and lets the model track content-complexity shifts immediately;
    a per-QP table of raw EMA observations is kept alongside for
    introspection (:attr:`observed_qps`, :meth:`observed_bits_at`).
    :meth:`select_qp` reads the smallest QP whose prediction fits a
    budget off that curve — the "bisect on an RC table" of the
    exemplar, over the monotone 31-entry QP axis.
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self._complexity: Optional[float] = None
        self._bits_at: dict[int, float] = {}

    @property
    def complexity(self) -> Optional[float]:
        """Recency-weighted ``bits * qp``; None before any observation."""
        return self._complexity

    @property
    def observed_qps(self) -> tuple[int, ...]:
        return tuple(sorted(self._bits_at))

    def observed_bits_at(self, qp: int) -> Optional[float]:
        """Raw EMA of frame sizes actually seen at ``qp`` (or None)."""
        return self._bits_at.get(qp)

    def update(self, qp: int, bits: int) -> None:
        """Fold one observed (QP, frame size) pair into the model."""
        if not 1 <= qp <= 31:
            raise ValueError(f"qp must be in [1, 31], got {qp}")
        if bits < 0:
            raise ValueError("bits must be >= 0")
        s = self.smoothing
        sample = float(bits) * qp
        if self._complexity is None:
            self._complexity = sample
        else:
            self._complexity = s * sample + (1.0 - s) * self._complexity
        previous = self._bits_at.get(qp)
        if previous is None:
            self._bits_at[qp] = float(bits)
        else:
            self._bits_at[qp] = s * float(bits) + (1.0 - s) * previous

    def predict(self, qp: int) -> Optional[float]:
        """Predicted frame bits at ``qp``; None before any observation."""
        if self._complexity is None:
            return None
        if not 1 <= qp <= 31:
            raise ValueError(f"qp must be in [1, 31], got {qp}")
        return self._complexity / qp

    def select_qp(
        self, budget: float, min_qp: int = 1, max_qp: int = 31
    ) -> Optional[int]:
        """Smallest QP in range whose predicted size fits ``budget``.

        ``max_qp`` when nothing fits (the coarsest the codec can go);
        None before any observation (no basis to choose yet).
        """
        if self._complexity is None:
            return None
        for qp in range(min_qp, max_qp + 1):
            if self._complexity / qp <= budget:
                return qp
        return max_qp

    def reset(self) -> None:
        self._complexity = None
        self._bits_at.clear()


class ClosedLoopRateController:
    """Closed-loop QP (and ``Intra_Th``) control toward a kbps target.

    The controller the grid runner builds per job from a
    :class:`RateControlConfig`.  Fully deterministic: its state is a
    pure function of the observed frame sequence, which is what lets
    rate-controlled encodes live in the content-addressed stream cache.

    Drop-in compatible with :class:`RateController` at the pipeline
    seam (``quantizer`` property + ``observe``), plus two richer
    hooks the encode loop uses when present:

    * :meth:`observe_frame` — learns from the full
      :class:`~repro.codec.types.EncodedFrame` (QP actually used, and
      per-macroblock-row bit accounting from ``mb_bit_offsets``);
    * :meth:`steer_strategy` — nudges a live PBPAIR controller's
      ``Intra_Th`` with the current budget pressure.
    """

    def __init__(self, config: RateControlConfig) -> None:
        self.config = config
        # Separate QP<->bits models per frame class: an I frame costs
        # many times a P frame at the same QP, and folding both into
        # one table poisons the prediction (an early expensive intra
        # observation blocks the QP descent forever).
        self.intra_model = QPBitsModel(smoothing=config.model_smoothing)
        self.inter_model = QPBitsModel(smoothing=config.model_smoothing)
        self._debt_bits = 0.0
        self._last_qp: Optional[int] = None
        self._frames = 0
        self._intra_frames = 0
        self._inter_frames = 0
        self._delivered_bits = 0
        self._base_intra_th: Optional[float] = None
        self._rows_over_budget = 0
        self._last_row_bits: tuple[int, ...] = ()

    # -- budget -------------------------------------------------------

    @property
    def target_bits_per_frame(self) -> float:
        return self.config.target_bits_per_frame

    @property
    def debt_bits(self) -> float:
        """Accumulated overspend (negative = banked savings)."""
        return self._debt_bits

    @property
    def frames_observed(self) -> int:
        return self._frames

    @property
    def delivered_bits(self) -> int:
        return self._delivered_bits

    @property
    def delivered_kbps(self) -> float:
        """Mean delivered bitrate so far, at the configured fps."""
        if self._frames == 0:
            return 0.0
        return (
            self._delivered_bits / self._frames * self.config.fps / 1000.0
        )

    @property
    def frame_budget(self) -> float:
        """The next frame's bit budget: target minus debt repayment.

        The repayment term spreads accumulated over/undershoot across
        ``recovery_frames`` instead of clamping it away, so the final
        bitrate error shrinks with clip length rather than plateauing
        at a fixed number of banked frames.
        """
        config = self.config
        target = config.target_bits_per_frame
        budget = target - (
            config.sensitivity * self._debt_bits / config.recovery_frames
        )
        return min(max(budget, 0.125 * target), 4.0 * target)

    # -- actuation ----------------------------------------------------

    def expected_bits(self, qp: int) -> Optional[float]:
        """Predicted next-frame cost at ``qp``: the I/P frequency mix.

        The frame type is the strategy's call, not the controller's, so
        the next frame is priced as the blend of both models weighted
        by the observed frame-type frequencies.  Pricing only P frames
        would bias intra-heavy schemes (GOP): every I frame overshoots
        its prediction, and holding the average at target then needs a
        permanent debt offset — a few percent of delivered bitrate.
        """
        intra = self.intra_model.predict(qp)
        inter = self.inter_model.predict(qp)
        if intra is None:
            return inter
        if inter is None:
            return intra
        total = self._intra_frames + self._inter_frames
        return (
            self._intra_frames * intra + self._inter_frames * inter
        ) / total

    @property
    def quantizer(self) -> int:
        """The QP the next frame should be encoded with."""
        config = self.config
        budget = self.frame_budget
        qp = None
        if self.expected_bits(config.min_qp) is not None:
            qp = config.max_qp  # coarsest fallback when nothing fits
            for candidate in range(config.min_qp, config.max_qp + 1):
                if self.expected_bits(candidate) <= budget:
                    qp = candidate
                    break
        if qp is None:
            qp = config.base_qp
        if self._last_qp is not None:
            step = config.max_qp_step
            qp = min(max(qp, self._last_qp - step), self._last_qp + step)
        return int(min(max(qp, config.min_qp), config.max_qp))

    def steer_strategy(self, strategy: object) -> None:
        """Jointly steer a PBPAIR strategy's ``Intra_Th`` (Section 3.2).

        Over budget (positive pressure) lowers the refresh threshold —
        fewer intra macroblocks, fewer bits; under budget raises it, so
        spare bits buy resilience instead of idling.  No-op for
        strategies without a live PBPAIR controller (baselines, or
        PBPAIR before its first frame) and when ``steer_intra`` is off.
        """
        if not self.config.steer_intra:
            return
        controller = getattr(strategy, "controller", None)
        if controller is None or not hasattr(controller, "intra_th"):
            return
        if self._base_intra_th is None:
            self._base_intra_th = float(controller.intra_th)
        pressure = self.budget_pressure
        th = self._base_intra_th * (1.0 - self.config.intra_gain * pressure)
        controller.intra_th = min(max(th, 0.0), 1.0)

    @property
    def budget_pressure(self) -> float:
        """Debt in recovery-horizon units, clipped to [-1, 1]."""
        horizon = (
            self.config.recovery_frames * self.config.target_bits_per_frame
        )
        return min(max(self._debt_bits / horizon, -1.0), 1.0)

    # -- observation --------------------------------------------------

    def observe(self, bits: int) -> int:
        """Account one frame's size; returns the next frame's QP.

        The :class:`RateController`-compatible hook: without the full
        frame, the table learns against the QP the controller last
        asked for.
        """
        if bits < 0:
            raise ValueError("bits must be >= 0")
        qp = self._last_qp if self._last_qp is not None else self.quantizer
        self._account(qp, bits, intra=False)
        return self.quantizer

    def observe_frame(self, encoded: "EncodedFrame") -> int:
        """Learn from a full encoded frame; returns the next frame's QP.

        Uses the QP the frame was *actually* coded with (``encoded.qp``
        is authoritative even if a caller overrode the controller) and
        folds the bitstream's per-macroblock offsets into per-row
        budget accounting.
        """
        self._account_rows(encoded)
        self._account(
            int(encoded.qp),
            int(encoded.stats.bits),
            intra=encoded.frame_type.is_intra,
        )
        return self.quantizer

    def _account(self, qp: Optional[int], bits: int, *, intra: bool) -> None:
        if qp is not None:
            model = self.intra_model if intra else self.inter_model
            model.update(qp, bits)
            self._last_qp = qp
        if intra:
            self._intra_frames += 1
        else:
            self._inter_frames += 1
        self._debt_bits += bits - self.config.target_bits_per_frame
        self._delivered_bits += bits
        self._frames += 1

    def _account_rows(self, encoded: "EncodedFrame") -> None:
        """Per-MB-row budget accounting from the bitstream offsets.

        Actuation stays frame-level (a per-row QP would change the
        bitstream syntax); the accounting feeds observability — how
        unevenly the frame spent its budget, and how many rows ran
        over their share.
        """
        offsets = encoded.mb_bit_offsets
        rows = encoded.reconstruction.shape[0] // 16
        if len(offsets) < 2 or rows < 1 or (len(offsets) - 1) % rows:
            return
        per_row = (len(offsets) - 1) // rows
        row_bits = tuple(
            offsets[(r + 1) * per_row] - offsets[r * per_row]
            for r in range(rows)
        )
        self._last_row_bits = row_bits
        row_budget = self.frame_budget / rows
        self._rows_over_budget += sum(1 for b in row_bits if b > row_budget)

    @property
    def last_row_bits(self) -> tuple[int, ...]:
        """Per-macroblock-row bit spend of the last observed frame."""
        return self._last_row_bits

    @property
    def rows_over_budget(self) -> int:
        """Macroblock rows that exceeded their share of the frame budget."""
        return self._rows_over_budget

    def reset(self) -> None:
        self.intra_model.reset()
        self.inter_model.reset()
        self._debt_bits = 0.0
        self._last_qp = None
        self._frames = 0
        self._intra_frames = 0
        self._inter_frames = 0
        self._delivered_bits = 0
        self._base_intra_th = None
        self._rows_over_budget = 0
        self._last_row_bits = ()


#: Anything the encode loop accepts as its rate-control argument.
AnyRateController = Union[RateController, ClosedLoopRateController]


def build_rate_controller(
    config: Optional[RateControlConfig],
) -> Optional[ClosedLoopRateController]:
    """A fresh controller for one encode, or None when rate control is off.

    The runner calls this once per job so every cell starts from the
    same initial state — which is what makes rate-controlled encodes
    deterministic and therefore cacheable.
    """
    if config is None:
        return None
    return ClosedLoopRateController(config)
