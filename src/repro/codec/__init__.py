"""H.263-style video codec substrate.

This package implements the full encoder/decoder pipeline of Figure 1 of
the paper: motion estimation (ME), DCT, quantization (Q) and variable
length coding (VLC) on the encode side; VLD, dequantization, IDCT and
motion compensation (MC) on the decode side, with the standard
reconstruction loop (the encoder predicts from its own decoded frames).

It is a self-contained, testable stand-in for the ITU H.263 reference
encoder the paper instruments (DESIGN.md, substitution #2): identical
architecture and macroblock geometry, H.263-style quantization, a
fixed-point integer DCT (the paper's PDAs had no FPU), and a real
bit-level entropy layer (run-level coding with Exp-Golomb codewords).
"""

from repro.codec.types import (
    CodecConfig,
    FrameType,
    MacroblockMode,
    MacroblockDecision,
    EncodedFrame,
    EncodedMacroblock,
    FrameEncodeStats,
)
from repro.codec.encoder import Encoder
from repro.codec.rate import (
    ClosedLoopRateController,
    RateControlConfig,
    RateController,
    build_rate_controller,
)
from repro.codec.decoder import Decoder, DecodeResult
from repro.codec.bitstream import BitReader, BitWriter, BitstreamError
from repro.codec.motion import (
    MotionEstimator,
    FullSearchMotionEstimator,
    ThreeStepMotionEstimator,
    DiamondSearchMotionEstimator,
    MotionField,
)
from repro.codec.halfpel import (
    halfpel_to_pixels,
    motion_compensate_half,
    refine_half_pel,
)

__all__ = [
    "CodecConfig",
    "FrameType",
    "MacroblockMode",
    "MacroblockDecision",
    "EncodedFrame",
    "EncodedMacroblock",
    "FrameEncodeStats",
    "Encoder",
    "RateController",
    "RateControlConfig",
    "ClosedLoopRateController",
    "build_rate_controller",
    "Decoder",
    "DecodeResult",
    "BitReader",
    "BitWriter",
    "BitstreamError",
    "MotionEstimator",
    "FullSearchMotionEstimator",
    "ThreeStepMotionEstimator",
    "DiamondSearchMotionEstimator",
    "MotionField",
    "halfpel_to_pixels",
    "motion_compensate_half",
    "refine_half_pel",
]
