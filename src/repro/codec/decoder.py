"""The decoder: VLD, dequantization, IDCT and motion compensation.

The decoder consumes *fragments* — independently decodable packet
payloads produced by :mod:`repro.network.packet` — rather than whole
frames, because under loss only some fragments of a frame arrive.  Each
fragment carries its own header (frame index, type, QP, macroblock
range), so the decoder can place whatever arrives and report exactly
which macroblocks were received.  Lost macroblocks are *not* repaired
here; concealment is a separate, pluggable stage
(:mod:`repro.concealment`), as in the paper where the similarity factor
is parameterized by the concealment scheme.

A corrupt or truncated fragment raises no exception to the caller: the
decoder salvages every macroblock up to the failure point and marks the
rest as lost — mirroring how VLC desynchronization destroys the tail of
a real packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.codec.bitstream import BitReader, BitstreamError
from repro.codec.dct import inverse_dct_blocks
from repro.codec.quant import dequantize_blocks
from repro.codec.syntax import (
    decode_macroblock_layer,
    read_fragment_header,
)
from repro.codec.types import CodecConfig, FrameType, MacroblockMode
from repro.codec.blocks import blocks_to_macroblocks, chroma_vector
from repro.codec.halfpel import fetch_block_half
from repro.energy.counters import OperationCounters
from repro.obs import get_tracer


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one frame's surviving fragments.

    Attributes:
        frame_index: index claimed by the fragments (or the expected
            index when nothing arrived).
        frame_type: I or P (defaults to P when nothing arrived).
        frame: decoded luma; lost macroblocks hold the concealment
            *seed* (a copy of the reference frame, or mid-grey when no
            reference exists).
        received: ``(mb_rows, mb_cols)`` bool mask of macroblocks that
            decoded successfully.
        modes: per-macroblock mode for received macroblocks (None
            elsewhere).
        mvs_pixels: ``(mb_rows, mb_cols, 2)`` decoded motion field in
            *pixel* units (half-pel vectors truncated), zeros for
            intra/lost macroblocks — the raw material for motion-aware
            concealment.
        chroma: decoded ``(cb, cr)`` planes when the codec carries
            4:2:0 chroma; None for luma-only streams.
        damaged_fragments: fragments whose damage the decoder concealed
            instead of raising — unreadable headers, VLC desync that
            truncated the salvaged prefix, or any unexpected decode
            error contained at the fragment boundary.
    """

    frame_index: int
    frame_type: FrameType
    frame: np.ndarray
    received: np.ndarray
    modes: np.ndarray
    mvs_pixels: Optional[np.ndarray] = None
    chroma: Optional[tuple[np.ndarray, np.ndarray]] = None
    damaged_fragments: int = 0


class Decoder:
    """Stateless fragment decoder (the caller owns the reference frame).

    Decoding work (VLD bits, dequantization, IDCT, motion compensation)
    is tallied into :attr:`counters` so receive-side energy can be
    priced with the same device profiles as the encoder — handhelds
    spend battery on both directions of a video call.
    """

    def __init__(
        self,
        config: CodecConfig,
        counters: Optional[OperationCounters] = None,
    ) -> None:
        self.config = config
        self.counters = counters if counters is not None else OperationCounters()

    def decode_frame(
        self,
        fragments: Iterable[bytes],
        reference: Optional[np.ndarray],
        expected_index: int = 0,
        reference_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ) -> DecodeResult:
        """Decode whatever fragments of a frame survived the channel.

        Args:
            fragments: surviving fragment payloads, any order.
            reference: previous decoder-side frame (after concealment),
                or None at sequence start.
            expected_index: frame index to report when no fragment
                arrived.
            reference_chroma: previous decoder-side ``(cb, cr)`` planes
                (chroma codecs only).
        """
        config = self.config
        mb_rows, mb_cols = config.mb_rows, config.mb_cols
        if reference is None:
            canvas = np.full((config.height, config.width), 128, dtype=np.uint8)
        else:
            if reference.shape != (config.height, config.width):
                raise ValueError(
                    f"reference shape {reference.shape} does not match config"
                )
            canvas = reference.copy()

        chroma_canvases: Optional[tuple[np.ndarray, np.ndarray]] = None
        if config.chroma:
            half = (config.height // 2, config.width // 2)
            if reference_chroma is None:
                chroma_canvases = (
                    np.full(half, 128, dtype=np.uint8),
                    np.full(half, 128, dtype=np.uint8),
                )
            else:
                cb, cr = reference_chroma
                if cb.shape != half or cr.shape != half:
                    raise ValueError("chroma reference shape mismatch")
                chroma_canvases = (cb.copy(), cr.copy())

        received = np.zeros((mb_rows, mb_cols), dtype=bool)
        modes = np.full((mb_rows, mb_cols), None, dtype=object)
        mvs_pixels = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
        frame_index = expected_index
        frame_type = FrameType.P
        mv_divisor = 2 if config.half_pel else 1

        # Pad the prediction references once per frame; every fragment
        # predicts from the same planes.
        pad = config.search_range + (2 if config.half_pel else 0)
        padded_ref = (
            np.pad(reference.astype(np.int64), pad, mode="edge")
            if reference is not None
            else None
        )
        padded_chroma = None
        if config.chroma and reference_chroma is not None:
            padded_chroma = tuple(
                np.pad(plane.astype(np.int64), 8, mode="edge")
                for plane in reference_chroma
            )

        damaged = 0
        for fragment_position, payload in enumerate(fragments):
            # Fragment-level resync: *nothing* a fragment contains may
            # abort the frame.  Expected corruption (bad magic, VLC
            # desync) is handled inside _decode_fragment; this guard
            # additionally contains any unexpected decode error at the
            # fragment boundary — the damaged region is concealed and
            # the remaining fragments still decode.
            try:
                header, decoded = self._decode_fragment(
                    payload, padded_ref, pad, canvas, padded_chroma,
                    chroma_canvases,
                )
            except Exception as error:  # noqa: BLE001 - containment contract
                damaged += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "decoder.fragment_error",
                        fragment=fragment_position,
                        error=type(error).__name__,
                        expected_index=expected_index,
                    )
                continue
            if header is None:
                damaged += 1  # unreadable header: the whole fragment is lost
                continue
            if len(decoded) < header.mb_count:
                damaged += 1  # VLC desync truncated the salvaged prefix
            frame_index = header.frame_index
            frame_type = header.frame_type
            for mb_index, mode, mv in decoded:
                row, col = divmod(mb_index, mb_cols)
                if row < mb_rows:
                    received[row, col] = True
                    modes[row, col] = mode
                    mvs_pixels[row, col, 0] = int(mv[0] / mv_divisor)
                    mvs_pixels[row, col, 1] = int(mv[1] / mv_divisor)

        return DecodeResult(
            frame_index=frame_index,
            frame_type=frame_type,
            frame=canvas,
            received=received,
            modes=modes,
            mvs_pixels=mvs_pixels,
            chroma=chroma_canvases,
            damaged_fragments=damaged,
        )

    def _decode_fragment(
        self,
        payload: bytes,
        padded_ref: Optional[np.ndarray],
        pad: int,
        canvas: np.ndarray,
        padded_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None,
        chroma_canvases: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ):
        """Decode one fragment onto the canvases; salvage on corruption.

        Returns ``(header_or_None, [(mb_index, mode, mv), ...])``.
        """
        config = self.config
        reader = BitReader(payload)
        try:
            header = read_fragment_header(reader)
        except BitstreamError:
            return None, []
        if header.first_mb + header.mb_count > config.mb_count:
            return None, []

        blocks_per_mb = config.blocks_per_mb
        # Phase 1 — batch VLD; a corrupt codeword (or a macroblock that
        # cannot be predicted) truncates the salvaged prefix exactly
        # where the sequential decoder did.
        mv_limit = (
            2 * config.search_range if config.half_pel else config.search_range
        )
        allow_inter = padded_ref is not None and not (
            config.chroma and padded_chroma is None
        )
        embs = decode_macroblock_layer(
            reader,
            header.frame_type,
            header.mb_count,
            blocks_per_mb,
            allow_skip=config.allow_skip,
            allow_inter=allow_inter,
            mv_limit=mv_limit,
        )
        parsed = [
            (header.first_mb + offset, emb) for offset, emb in enumerate(embs)
        ]
        self.counters.entropy_bits += reader.bits_consumed
        if not parsed:
            return header, []

        # Phase 2 — batch dequantization and inverse transform across
        # every salvaged macroblock, then per-macroblock prediction.
        luma_mbs = self._reconstruct_luma_batch(parsed, header, padded_ref, pad)
        chroma_mbs = (
            self._reconstruct_chroma_batch(parsed, header, padded_chroma)
            if config.chroma
            else None
        )

        decoded: list[tuple[int, MacroblockMode, tuple[int, int]]] = []
        for position, (mb_index, emb) in enumerate(parsed):
            row, col = divmod(mb_index, config.mb_cols)
            canvas[row * 16 : (row + 1) * 16, col * 16 : (col + 1) * 16] = (
                luma_mbs[position]
            )
            if chroma_mbs is not None:
                assert chroma_canvases is not None
                for plane, block in zip(chroma_canvases, chroma_mbs[position]):
                    plane[row * 8 : (row + 1) * 8, col * 8 : (col + 1) * 8] = (
                        block
                    )
            decoded.append((mb_index, emb.mode, emb.mv))
            self.counters.mode_decisions += 1
            if emb.mode is MacroblockMode.INTER:
                self.counters.mc_blocks += 1
        self.counters.dequant_blocks += blocks_per_mb * len(parsed)
        self.counters.idct_blocks += blocks_per_mb * len(parsed)
        return header, decoded

    def _dequantize_batch(
        self, coefficients: np.ndarray, intra_flags: np.ndarray, qp: int
    ) -> np.ndarray:
        """Dequantize a ``(k, n, 8, 8)`` batch in one mixed-mode pass."""
        return dequantize_blocks(coefficients, intra_flags[:, None], qp)

    def _reconstruct_luma_batch(
        self,
        parsed: list,
        header,
        padded_ref: Optional[np.ndarray],
        pad: int,
    ) -> np.ndarray:
        """Dequantize/IDCT every salvaged macroblock at once, then predict."""
        config = self.config
        coefficients = np.stack([emb.coefficients[:4] for _, emb in parsed])
        intra_flags = np.array(
            [emb.mode is MacroblockMode.INTRA for _, emb in parsed]
        )
        dequantized = self._dequantize_batch(
            coefficients, intra_flags, header.qp
        )
        blocks = inverse_dct_blocks(
            dequantized.reshape(-1, 8, 8), config.use_fixed_point_dct
        )
        mb_pixels = blocks_to_macroblocks(blocks.reshape(len(parsed), 4, 8, 8))

        out = np.empty((len(parsed), 16, 16), dtype=np.uint8)
        if intra_flags.any():
            out[intra_flags] = np.clip(mb_pixels[intra_flags], 0, 255)
        inter_positions = np.flatnonzero(~intra_flags)
        if inter_positions.size == 0:
            return out
        assert padded_ref is not None
        if config.half_pel:
            for position in inter_positions:
                mb_index, emb = parsed[position]
                row, col = divmod(mb_index, config.mb_cols)
                prediction = fetch_block_half(
                    padded_ref, pad, row * 16, col * 16, emb.mv
                )
                out[position] = np.clip(
                    mb_pixels[position] + prediction, 0, 255
                )
        else:
            # Full-pel prediction for every inter macroblock in one
            # gather off the padded reference's 16x16 window view.
            windows = np.lib.stride_tricks.sliding_window_view(
                padded_ref, (16, 16)
            )
            ys = np.empty(inter_positions.size, dtype=np.int64)
            xs = np.empty(inter_positions.size, dtype=np.int64)
            for slot, position in enumerate(inter_positions):
                mb_index, emb = parsed[position]
                row, col = divmod(mb_index, config.mb_cols)
                ys[slot] = row * 16 + pad + emb.mv[0]
                xs[slot] = col * 16 + pad + emb.mv[1]
            out[inter_positions] = np.clip(
                mb_pixels[inter_positions] + windows[ys, xs], 0, 255
            )
        return out

    def _reconstruct_chroma_batch(
        self,
        parsed: list,
        header,
        padded_chroma: Optional[tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Chroma twin of :meth:`_reconstruct_luma_batch` (Cb then Cr)."""
        config = self.config
        coefficients = np.stack([emb.coefficients[4:6] for _, emb in parsed])
        intra_flags = np.array(
            [emb.mode is MacroblockMode.INTRA for _, emb in parsed]
        )
        dequantized = self._dequantize_batch(
            coefficients, intra_flags, header.qp
        )
        blocks = inverse_dct_blocks(
            dequantized.reshape(-1, 8, 8), config.use_fixed_point_dct
        ).reshape(len(parsed), 2, 8, 8)

        out = np.empty((len(parsed), 2, 8, 8), dtype=np.uint8)
        for position, (mb_index, emb) in enumerate(parsed):
            if emb.mode is MacroblockMode.INTRA:
                out[position] = np.clip(blocks[position], 0, 255)
                continue
            assert padded_chroma is not None
            if config.half_pel:
                cdy = chroma_vector(int(np.fix(emb.mv[0] / 2.0)))
                cdx = chroma_vector(int(np.fix(emb.mv[1] / 2.0)))
            else:
                cdy = chroma_vector(emb.mv[0])
                cdx = chroma_vector(emb.mv[1])
            row, col = divmod(mb_index, config.mb_cols)
            y = row * 8 + 8 + cdy
            x = col * 8 + 8 + cdx
            for component, padded in enumerate(padded_chroma):
                prediction = padded[y : y + 8, x : x + 8]
                out[position, component] = np.clip(
                    blocks[position, component] + prediction, 0, 255
                )
        return out
