"""The decoder: VLD, dequantization, IDCT and motion compensation.

The decoder consumes *fragments* — independently decodable packet
payloads produced by :mod:`repro.network.packet` — rather than whole
frames, because under loss only some fragments of a frame arrive.  Each
fragment carries its own header (frame index, type, QP, macroblock
range), so the decoder can place whatever arrives and report exactly
which macroblocks were received.  Lost macroblocks are *not* repaired
here; concealment is a separate, pluggable stage
(:mod:`repro.concealment`), as in the paper where the similarity factor
is parameterized by the concealment scheme.

A corrupt or truncated fragment raises no exception to the caller: the
decoder salvages every macroblock up to the failure point and marks the
rest as lost — mirroring how VLC desynchronization destroys the tail of
a real packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.codec.bitstream import BitReader, BitstreamError
from repro.codec.dct import inverse_dct
from repro.codec.quant import dequantize
from repro.codec.syntax import (
    decode_macroblock,
    decode_macroblock_skippable,
    read_fragment_header,
)
from repro.codec.types import CodecConfig, FrameType, MacroblockMode
from repro.codec.blocks import blocks_to_macroblocks, chroma_vector
from repro.codec.halfpel import fetch_block_half
from repro.energy.counters import OperationCounters


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one frame's surviving fragments.

    Attributes:
        frame_index: index claimed by the fragments (or the expected
            index when nothing arrived).
        frame_type: I or P (defaults to P when nothing arrived).
        frame: decoded luma; lost macroblocks hold the concealment
            *seed* (a copy of the reference frame, or mid-grey when no
            reference exists).
        received: ``(mb_rows, mb_cols)`` bool mask of macroblocks that
            decoded successfully.
        modes: per-macroblock mode for received macroblocks (None
            elsewhere).
        mvs_pixels: ``(mb_rows, mb_cols, 2)`` decoded motion field in
            *pixel* units (half-pel vectors truncated), zeros for
            intra/lost macroblocks — the raw material for motion-aware
            concealment.
        chroma: decoded ``(cb, cr)`` planes when the codec carries
            4:2:0 chroma; None for luma-only streams.
    """

    frame_index: int
    frame_type: FrameType
    frame: np.ndarray
    received: np.ndarray
    modes: np.ndarray
    mvs_pixels: Optional[np.ndarray] = None
    chroma: Optional[tuple[np.ndarray, np.ndarray]] = None


class Decoder:
    """Stateless fragment decoder (the caller owns the reference frame).

    Decoding work (VLD bits, dequantization, IDCT, motion compensation)
    is tallied into :attr:`counters` so receive-side energy can be
    priced with the same device profiles as the encoder — handhelds
    spend battery on both directions of a video call.
    """

    def __init__(
        self,
        config: CodecConfig,
        counters: Optional[OperationCounters] = None,
    ) -> None:
        self.config = config
        self.counters = counters if counters is not None else OperationCounters()

    def decode_frame(
        self,
        fragments: Iterable[bytes],
        reference: Optional[np.ndarray],
        expected_index: int = 0,
        reference_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ) -> DecodeResult:
        """Decode whatever fragments of a frame survived the channel.

        Args:
            fragments: surviving fragment payloads, any order.
            reference: previous decoder-side frame (after concealment),
                or None at sequence start.
            expected_index: frame index to report when no fragment
                arrived.
            reference_chroma: previous decoder-side ``(cb, cr)`` planes
                (chroma codecs only).
        """
        config = self.config
        mb_rows, mb_cols = config.mb_rows, config.mb_cols
        if reference is None:
            canvas = np.full((config.height, config.width), 128, dtype=np.uint8)
        else:
            if reference.shape != (config.height, config.width):
                raise ValueError(
                    f"reference shape {reference.shape} does not match config"
                )
            canvas = reference.copy()

        chroma_canvases: Optional[tuple[np.ndarray, np.ndarray]] = None
        if config.chroma:
            half = (config.height // 2, config.width // 2)
            if reference_chroma is None:
                chroma_canvases = (
                    np.full(half, 128, dtype=np.uint8),
                    np.full(half, 128, dtype=np.uint8),
                )
            else:
                cb, cr = reference_chroma
                if cb.shape != half or cr.shape != half:
                    raise ValueError("chroma reference shape mismatch")
                chroma_canvases = (cb.copy(), cr.copy())

        received = np.zeros((mb_rows, mb_cols), dtype=bool)
        modes = np.full((mb_rows, mb_cols), None, dtype=object)
        mvs_pixels = np.zeros((mb_rows, mb_cols, 2), dtype=np.int64)
        frame_index = expected_index
        frame_type = FrameType.P
        mv_divisor = 2 if config.half_pel else 1

        for payload in fragments:
            header, decoded = self._decode_fragment(
                payload, reference, canvas, reference_chroma, chroma_canvases
            )
            if header is None:
                continue  # unreadable header: the whole fragment is lost
            frame_index = header.frame_index
            frame_type = header.frame_type
            for mb_index, mode, mv in decoded:
                row, col = divmod(mb_index, mb_cols)
                if row < mb_rows:
                    received[row, col] = True
                    modes[row, col] = mode
                    mvs_pixels[row, col, 0] = int(mv[0] / mv_divisor)
                    mvs_pixels[row, col, 1] = int(mv[1] / mv_divisor)

        return DecodeResult(
            frame_index=frame_index,
            frame_type=frame_type,
            frame=canvas,
            received=received,
            modes=modes,
            mvs_pixels=mvs_pixels,
            chroma=chroma_canvases,
        )

    def _decode_fragment(
        self,
        payload: bytes,
        reference: Optional[np.ndarray],
        canvas: np.ndarray,
        reference_chroma: Optional[tuple[np.ndarray, np.ndarray]] = None,
        chroma_canvases: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ):
        """Decode one fragment onto the canvases; salvage on corruption.

        Returns ``(header_or_None, [(mb_index, mode, mv), ...])``.
        """
        config = self.config
        reader = BitReader(payload)
        try:
            header = read_fragment_header(reader)
        except BitstreamError:
            return None, []
        if header.first_mb + header.mb_count > config.mb_count:
            return None, []

        pad = config.search_range + (2 if config.half_pel else 0)
        if reference is not None:
            padded_ref = np.pad(reference.astype(np.int64), pad, mode="edge")
        else:
            padded_ref = None
        padded_chroma = None
        if config.chroma and reference_chroma is not None:
            padded_chroma = tuple(
                np.pad(plane.astype(np.int64), 8, mode="edge")
                for plane in reference_chroma
            )

        blocks_per_mb = config.blocks_per_mb
        decode_mb = (
            decode_macroblock_skippable if config.allow_skip else decode_macroblock
        )
        decoded: list[tuple[int, MacroblockMode, tuple[int, int]]] = []
        for offset in range(header.mb_count):
            mb_index = header.first_mb + offset
            try:
                emb = decode_mb(reader, header.frame_type, blocks_per_mb)
                pixels = self._reconstruct_macroblock(
                    emb, header, mb_index, padded_ref, pad
                )
                if config.chroma:
                    chroma_pixels = self._reconstruct_chroma(
                        emb, header, mb_index, padded_chroma
                    )
            except BitstreamError:
                break  # VLC desync: everything after this point is lost
            row, col = divmod(mb_index, config.mb_cols)
            canvas[row * 16 : (row + 1) * 16, col * 16 : (col + 1) * 16] = pixels
            if config.chroma:
                assert chroma_canvases is not None
                for plane, block in zip(chroma_canvases, chroma_pixels):
                    plane[row * 8 : (row + 1) * 8, col * 8 : (col + 1) * 8] = (
                        block
                    )
            decoded.append((mb_index, emb.mode, emb.mv))
            self.counters.dequant_blocks += blocks_per_mb
            self.counters.idct_blocks += blocks_per_mb
            self.counters.mode_decisions += 1
            if emb.mode is MacroblockMode.INTER:
                self.counters.mc_blocks += 1
        self.counters.entropy_bits += reader.bits_consumed
        return header, decoded

    def _reconstruct_chroma(
        self,
        emb,
        header,
        mb_index: int,
        padded_chroma: Optional[tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dequantize/inverse-transform the macroblock's Cb and Cr blocks."""
        config = self.config
        intra = emb.mode is MacroblockMode.INTRA
        coefficients = dequantize(emb.coefficients[4:6], header.qp, intra=intra)
        blocks = inverse_dct(coefficients, config.use_fixed_point_dct)
        if intra:
            return tuple(
                np.clip(block, 0, 255).astype(np.uint8) for block in blocks
            )
        if padded_chroma is None:
            raise BitstreamError(
                f"inter macroblock {mb_index} with no chroma reference"
            )
        if config.half_pel:
            cdy = chroma_vector(int(np.fix(emb.mv[0] / 2.0)))
            cdx = chroma_vector(int(np.fix(emb.mv[1] / 2.0)))
        else:
            cdy = chroma_vector(emb.mv[0])
            cdx = chroma_vector(emb.mv[1])
        row, col = divmod(mb_index, config.mb_cols)
        y = row * 8 + 8 + cdy
        x = col * 8 + 8 + cdx
        out = []
        for block, padded in zip(blocks, padded_chroma):
            prediction = padded[y : y + 8, x : x + 8]
            out.append(np.clip(block + prediction, 0, 255).astype(np.uint8))
        return tuple(out)

    def _reconstruct_macroblock(
        self,
        emb,
        header,
        mb_index: int,
        padded_ref: Optional[np.ndarray],
        pad: int,
    ) -> np.ndarray:
        """Dequantize, inverse-transform and motion-compensate one MB."""
        config = self.config
        intra = emb.mode is MacroblockMode.INTRA
        coefficients = dequantize(emb.coefficients[:4], header.qp, intra=intra)
        blocks = inverse_dct(coefficients, config.use_fixed_point_dct)
        mb_pixels = blocks_to_macroblocks(blocks[None, ...])[0]

        if intra:
            return np.clip(mb_pixels, 0, 255).astype(np.uint8)

        if padded_ref is None:
            raise BitstreamError(
                f"inter macroblock {mb_index} with no reference frame"
            )
        dy, dx = emb.mv
        limit = (
            2 * config.search_range if config.half_pel else config.search_range
        )
        if abs(dy) > limit or abs(dx) > limit:
            raise BitstreamError(
                f"motion vector ({dy}, {dx}) exceeds coded range {limit}"
            )
        row, col = divmod(mb_index, config.mb_cols)
        if config.half_pel:
            prediction = fetch_block_half(
                padded_ref, pad, row * 16, col * 16, (dy, dx)
            )
        else:
            y = row * 16 + pad + dy
            x = col * 16 + pad + dx
            prediction = padded_ref[y : y + 16, x : x + 16]
        return np.clip(mb_pixels + prediction, 0, 255).astype(np.uint8)
