"""Bit-level bitstream writer and reader.

The VLC layer of the codec needs true bit-granular I/O: the paper's error
model operates on the resulting byte stream, and the decoder must detect
truncated or corrupt streams gracefully (a single bit error in VLC data
desynchronizes everything after it — the motivation for intra refresh).

``BitWriter`` accumulates bits MSB-first; ``BitReader`` consumes them and
raises :class:`BitstreamError` instead of returning garbage when the
stream ends early, so the decoder can fall back to concealment.
"""

from __future__ import annotations


class BitstreamError(Exception):
    """Raised when a bitstream is exhausted or structurally invalid."""


class BitWriter:
    """Accumulates bits most-significant-bit first."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0
        self._total_bits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (before padding)."""
        return self._total_bits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self._accumulator = (self._accumulator << 1) | bit
        self._bit_count += 1
        self._total_bits += 1
        if self._bit_count == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of the unsigned integer ``value``."""
        if width < 0:
            raise ValueError("width must be >= 0")
        if value < 0 or (width < 64 and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a one bit."""
        if value < 0:
            raise ValueError("unary value must be >= 0")
        for _ in range(value):
            self.write_bit(0)
        self.write_bit(1)

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        out = bytearray(self._buffer)
        if self._bit_count:
            out.append(self._accumulator << (8 - self._bit_count))
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0  # bits consumed from the current byte

    @property
    def bits_consumed(self) -> int:
        return self._byte_pos * 8 + self._bit_pos

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self.bits_consumed

    def read_bit(self) -> int:
        if self._byte_pos >= len(self._data):
            raise BitstreamError("bitstream exhausted")
        byte = self._data[self._byte_pos]
        bit = (byte >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise ValueError("width must be >= 0")
        if width > self.bits_remaining:
            raise BitstreamError(
                f"requested {width} bits, only {self.bits_remaining} remain"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def skip_bits(self, width: int) -> None:
        """Advance past ``width`` bits without interpreting them."""
        if width > self.bits_remaining:
            raise BitstreamError(
                f"cannot skip {width} bits, only {self.bits_remaining} remain"
            )
        consumed = self.bits_consumed + width
        self._byte_pos, self._bit_pos = divmod(consumed, 8)

    def read_unary(self, max_zeros: int = 64) -> int:
        """Read a unary codeword; guards against runaway zero runs.

        A corrupt stream can contain an implausibly long zero run; the
        guard turns that into a :class:`BitstreamError` rather than an
        unbounded scan.
        """
        zeros = 0
        while True:
            if self.read_bit():
                return zeros
            zeros += 1
            if zeros > max_zeros:
                raise BitstreamError(f"unary run exceeded {max_zeros} zeros")


def append_bit_slice(
    writer: BitWriter, data: bytes, start_bit: int, n_bits: int
) -> None:
    """Append bits ``[start_bit, start_bit + n_bits)`` of ``data`` to a writer.

    Used by the packetizer to split a frame's macroblock layer at
    (bit-granular) macroblock boundaries without re-encoding.
    """
    if start_bit < 0 or n_bits < 0:
        raise ValueError("start_bit and n_bits must be non-negative")
    if start_bit + n_bits > len(data) * 8:
        raise BitstreamError(
            f"bit slice [{start_bit}, {start_bit + n_bits}) exceeds "
            f"{len(data) * 8} available bits"
        )
    reader = BitReader(data)
    reader.skip_bits(start_bit)
    # Copy in byte-sized gulps where possible for speed.
    remaining = n_bits
    while remaining >= 8:
        writer.write_bits(reader.read_bits(8), 8)
        remaining -= 8
    if remaining:
        writer.write_bits(reader.read_bits(remaining), remaining)
