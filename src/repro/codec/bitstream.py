"""Word-level bitstream writer and reader.

The VLC layer of the codec needs true bit-granular I/O: the paper's error
model operates on the resulting byte stream, and the decoder must detect
truncated or corrupt streams gracefully (a single bit error in VLC data
desynchronizes everything after it — the motivation for intra refresh).

Both ends used to work one bit at a time; profiling showed that made
entropy coding the dominant cost of the whole pipeline (~600k Python
calls for 8 QCIF frames).  The substrate is now word-level but
**bit-identical**:

* :class:`BitWriter` accumulates MSB-first into an unbounded integer and
  flushes full bytes in bulk via ``int.to_bytes``; whole codeword
  batches arrive as ``(value, width)`` arrays, are expanded to a bit
  vector in numpy (:func:`pack_codeword_bits`) and packed eight at a
  time with ``np.packbits``.
* :class:`BitReader` refills a 64-bit window from the byte string and
  serves ``read_bits``/``read_unary``/``read_exp_golomb`` by shifting
  that window, using a precomputed 256-entry leading-zero table to scan
  Exp-Golomb prefixes a byte at a time.  It raises
  :class:`BitstreamError` instead of returning garbage when the stream
  ends early, so the decoder can fall back to concealment.
* :func:`append_bit_slice` copies arbitrary bit ranges through one
  big-integer shift instead of a per-bit loop (the packetizer's hot
  path).
"""

from __future__ import annotations

import numpy as np

#: Flush the writer's pending integer once it holds this many bits, so
#: it stays a few machine words instead of growing without bound.
_FLUSH_THRESHOLD = 4096

#: Leading zeros of each byte value (8 for 0) — the Exp-Golomb prefix
#: scanner consumes zero runs one table lookup per byte.
_LEADING_ZEROS_8 = tuple(8 - value.bit_length() for value in range(256))


class BitstreamError(Exception):
    """Raised when a bitstream is exhausted or structurally invalid."""


def pack_codeword_bits(values: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Expand ``(value, width)`` codeword pairs into one MSB-first bit vector.

    The workhorse of the batched VLC encoder: a whole macroblock layer's
    codewords (coded-block flags, Exp-Golomb run/level pairs, LAST bits)
    become a single ``uint8`` 0/1 array, ready for ``np.packbits``.
    Values must be non-negative and fit their widths; widths must be
    positive (zero-width codewords carry no bits and must be filtered
    out by the caller).
    """
    values = np.asarray(values, dtype=np.int64)
    widths = np.asarray(widths, dtype=np.int64)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    total = int(widths.sum())
    ends = np.cumsum(widths)
    owner = np.repeat(np.arange(values.size), widths)
    position = np.arange(total) - (ends - widths)[owner]
    shift = widths[owner] - 1 - position
    return ((values[owner] >> shift) & 1).astype(np.uint8)


class BitWriter:
    """Accumulates bits most-significant-bit first."""

    __slots__ = ("_buffer", "_pending", "_pending_bits", "_total_bits")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._pending = 0  # the last _pending_bits bits, MSB-first
        self._pending_bits = 0
        self._total_bits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (before padding)."""
        return self._total_bits

    def _flush_full_bytes(self) -> None:
        remainder = self._pending_bits & 7
        n_bytes = (self._pending_bits - remainder) >> 3
        if n_bytes:
            self._buffer += (self._pending >> remainder).to_bytes(n_bytes, "big")
            self._pending &= (1 << remainder) - 1
            self._pending_bits = remainder

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self._pending = (self._pending << 1) | int(bit)
        self._pending_bits += 1
        self._total_bits += 1
        if self._pending_bits >= _FLUSH_THRESHOLD:
            self._flush_full_bytes()

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of the unsigned integer ``value``."""
        value = int(value)
        width = int(width)
        if width < 0:
            raise ValueError("width must be >= 0")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._pending = (self._pending << width) | value
        self._pending_bits += width
        self._total_bits += width
        if self._pending_bits >= _FLUSH_THRESHOLD:
            self._flush_full_bytes()

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a one bit."""
        if value < 0:
            raise ValueError("unary value must be >= 0")
        self.write_bits(1, int(value) + 1)

    def write_bit_array(self, bits: np.ndarray) -> None:
        """Append a ``uint8`` 0/1 array of bits in one batched operation."""
        bits = np.ascontiguousarray(bits, dtype=np.uint8)
        count = bits.size
        if count == 0:
            return
        self._flush_full_bytes()
        if self._pending_bits:
            # Prepend the sub-byte remainder so packbits sees one stream.
            pending = self._pending
            lead = np.array(
                [
                    (pending >> (self._pending_bits - 1 - index)) & 1
                    for index in range(self._pending_bits)
                ],
                dtype=np.uint8,
            )
            bits = np.concatenate([lead, bits])
            self._pending = 0
            self._pending_bits = 0
        tail = bits.size & 7
        body = bits[: bits.size - tail]
        if body.size:
            self._buffer += np.packbits(body).tobytes()
        pending = 0
        for bit in bits[bits.size - tail :]:
            pending = (pending << 1) | int(bit)
        self._pending = pending
        self._pending_bits = tail
        self._total_bits += count

    def write_codewords(self, values: np.ndarray, widths: np.ndarray) -> None:
        """Append a batch of ``(value, width)`` codewords MSB-first."""
        self.write_bit_array(pack_codeword_bits(values, widths))

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        out = bytearray(self._buffer)
        if self._pending_bits:
            pad = (-self._pending_bits) & 7
            out += (self._pending << pad).to_bytes(
                (self._pending_bits + pad) >> 3, "big"
            )
        return bytes(out)


def build_word_index(data: bytes) -> list[int]:
    """64-bit big-endian windows of ``data`` at every byte offset.

    ``words[b]`` holds bits ``[8 b, 8 b + 64)`` of the stream, zero-padded
    past the end: the random-access view the batch VLD walks with plain
    integer arithmetic instead of a stateful reader window.  Because the
    padding is all zeros, a one bit found in any window is always a real
    data bit.
    """
    if not data:
        return []
    arr = np.frombuffer(data, dtype=np.uint8)
    padded = np.concatenate([arr, np.zeros(8, dtype=np.uint8)])
    windows = np.lib.stride_tricks.sliding_window_view(padded, 8)[: arr.size]
    weights = np.array([1 << (8 * i) for i in range(7, -1, -1)], dtype=np.uint64)
    return (windows * weights).sum(axis=1, dtype=np.uint64).tolist()


class BitReader:
    """Reads bits MSB-first from a byte string via a word-sized window."""

    __slots__ = ("_data", "_size", "_byte_pos", "_window", "_window_bits")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._size = len(data)
        self._byte_pos = 0  # bytes already pulled into the window
        self._window = 0  # the next _window_bits bits, MSB-first
        self._window_bits = 0

    @property
    def data(self) -> bytes:
        """The underlying byte string (for batch decoders that index it)."""
        return self._data

    @property
    def bits_consumed(self) -> int:
        return self._byte_pos * 8 - self._window_bits

    @property
    def bits_remaining(self) -> int:
        return self._size * 8 - self.bits_consumed

    def _refill(self) -> None:
        """Pull up to eight more bytes into the (near-empty) window."""
        take = self._size - self._byte_pos
        if take > 8:
            take = 8
        chunk = self._data[self._byte_pos : self._byte_pos + take]
        self._window = (self._window << (take * 8)) | int.from_bytes(
            chunk, "big"
        )
        self._window_bits += take * 8
        self._byte_pos += take

    def read_bit(self) -> int:
        window_bits = self._window_bits
        if not window_bits:
            if self._byte_pos >= self._size:
                raise BitstreamError("bitstream exhausted")
            self._refill()
            window_bits = self._window_bits
        window_bits -= 1
        bit = self._window >> window_bits
        self._window &= (1 << window_bits) - 1
        self._window_bits = window_bits
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        width = int(width)
        if width < 0:
            raise ValueError("width must be >= 0")
        if width > self.bits_remaining:
            raise BitstreamError(
                f"requested {width} bits, only {self.bits_remaining} remain"
            )
        value = 0
        remaining = width
        while remaining:
            window_bits = self._window_bits
            if not window_bits:
                self._refill()
                window_bits = self._window_bits
            take = window_bits if window_bits < remaining else remaining
            window_bits -= take
            value = (value << take) | (self._window >> window_bits)
            self._window &= (1 << window_bits) - 1
            self._window_bits = window_bits
            remaining -= take
        return value

    def skip_bits(self, width: int) -> None:
        """Advance past ``width`` bits without interpreting them."""
        if width > self.bits_remaining:
            raise BitstreamError(
                f"cannot skip {width} bits, only {self.bits_remaining} remain"
            )
        consumed = self.bits_consumed + width
        byte_pos, bit_offset = divmod(consumed, 8)
        if bit_offset:
            self._byte_pos = byte_pos + 1
            self._window_bits = 8 - bit_offset
            self._window = self._data[byte_pos] & ((1 << self._window_bits) - 1)
        else:
            self._byte_pos = byte_pos
            self._window = 0
            self._window_bits = 0

    def _count_prefix_zeros(self, limit: int) -> int:
        """Consume a zero run and its terminating one bit; return the run.

        Scans the window at most a byte per step through the precomputed
        leading-zero table.  Raises :class:`BitstreamError` once the run
        exceeds ``limit`` zeros (corrupt stream) or the data ends before
        the terminating one bit.
        """
        zeros = 0
        while True:
            window_bits = self._window_bits
            if not window_bits:
                if self._byte_pos >= self._size:
                    raise BitstreamError("bitstream exhausted")
                self._refill()
                window_bits = self._window_bits
            window = self._window
            peek = window_bits if window_bits < 8 else 8
            chunk = (window >> (window_bits - peek)) << (8 - peek)
            leading = _LEADING_ZEROS_8[chunk]
            if leading >= peek:
                # Every peeked bit is zero: consume them and keep going.
                zeros += peek
                self._window_bits = window_bits - peek
                self._window = window & ((1 << self._window_bits) - 1)
            else:
                zeros += leading
                # Consume the zeros and the terminating one bit.
                self._window_bits = window_bits - leading - 1
                self._window = window & ((1 << self._window_bits) - 1)
            if zeros > limit:
                raise BitstreamError(
                    f"zero run exceeded {limit} (corrupt stream)"
                )
            if leading < peek:
                return zeros

    def read_unary(self, max_zeros: int = 64) -> int:
        """Read a unary codeword; guards against runaway zero runs.

        A corrupt stream can contain an implausibly long zero run; the
        guard turns that into a :class:`BitstreamError` rather than an
        unbounded scan.
        """
        try:
            return self._count_prefix_zeros(max_zeros)
        except BitstreamError as error:
            if "zero run exceeded" in str(error):
                raise BitstreamError(
                    f"unary run exceeded {max_zeros} zeros"
                ) from None
            raise

    def read_exp_golomb(self) -> int:
        """Read one unsigned Exp-Golomb codeword (the VLD fast path).

        Equivalent to counting the zero prefix bit by bit and then
        reading ``zeros + 1`` payload bits, but the prefix scan runs a
        byte at a time off the leading-zero table.  A prefix longer than
        32 zeros is rejected as corrupt.
        """
        try:
            zeros = self._count_prefix_zeros(32)
        except BitstreamError as error:
            if "zero run exceeded" in str(error):
                raise BitstreamError(
                    "Exp-Golomb prefix too long (corrupt stream)"
                ) from None
            raise
        if not zeros:
            return 0
        return ((1 << zeros) | self.read_bits(zeros)) - 1


def append_bit_slice(
    writer: BitWriter, data: bytes, start_bit: int, n_bits: int
) -> None:
    """Append bits ``[start_bit, start_bit + n_bits)`` of ``data`` to a writer.

    Used by the packetizer to split a frame's macroblock layer at
    (bit-granular) macroblock boundaries without re-encoding.  The whole
    slice moves as one big-integer shift — byte-aligned or not — rather
    than a bit-at-a-time copy.
    """
    if start_bit < 0 or n_bits < 0:
        raise ValueError("start_bit and n_bits must be non-negative")
    total_bits = len(data) * 8
    if start_bit + n_bits > total_bits:
        raise BitstreamError(
            f"bit slice [{start_bit}, {start_bit + n_bits}) exceeds "
            f"{total_bits} available bits"
        )
    if n_bits == 0:
        return
    # Only the bytes overlapping the slice participate in the shift.
    first_byte = start_bit >> 3
    last_byte = (start_bit + n_bits + 7) >> 3
    word = int.from_bytes(data[first_byte:last_byte], "big")
    tail = (last_byte - first_byte) * 8 - (start_bit - first_byte * 8) - n_bits
    writer.write_bits((word >> tail) & ((1 << n_bits) - 1), n_bits)
