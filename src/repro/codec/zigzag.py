"""Zigzag scan order for 8x8 DCT coefficient blocks.

The zigzag scan orders coefficients from low to high spatial frequency so
that the quantized high-frequency zeros cluster at the end of the vector,
which is what makes run-level entropy coding effective.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=1)
def zigzag_order() -> np.ndarray:
    """Indices that reorder a flattened 8x8 block into zigzag order.

    ``flat_block[zigzag_order()]`` walks the block along anti-diagonals,
    alternating direction, starting at DC — the standard JPEG/H.263 scan.
    """
    order = []
    for diagonal in range(15):
        cells = [
            (r, diagonal - r)
            for r in range(8)
            if 0 <= diagonal - r < 8
        ]
        if diagonal % 2 == 0:
            cells.reverse()  # even diagonals run bottom-left to top-right
        order.extend(r * 8 + c for r, c in cells)
    indices = np.array(order, dtype=np.int64)
    indices.setflags(write=False)
    return indices


@lru_cache(maxsize=1)
def inverse_zigzag_order() -> np.ndarray:
    """Indices that undo :func:`zigzag_order`."""
    inverse = np.empty(64, dtype=np.int64)
    inverse[zigzag_order()] = np.arange(64)
    inverse.setflags(write=False)
    return inverse
