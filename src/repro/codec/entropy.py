"""Entropy coding: Exp-Golomb codewords and run-level coefficient coding.

H.263 entropy-codes quantized DCT coefficients as (LAST, RUN, LEVEL)
events with hand-built Huffman tables.  This codec keeps the identical
event structure but encodes each field with Exp-Golomb codes (the
universal codes H.264 later standardized).  The rate is within a few
percent of the Huffman tables for QCIF content, the code is table-free
and exhaustively testable, and the error behaviour (loss of
synchronization after a bit error) is the same — which is what the
paper's resilience analysis depends on.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter, BitstreamError
from repro.codec.zigzag import zigzag_order, inverse_zigzag_order


def write_ue(writer: BitWriter, value: int) -> None:
    """Write an unsigned Exp-Golomb codeword."""
    if value < 0:
        raise ValueError(f"ue(v) requires value >= 0, got {value}")
    augmented = value + 1
    n_bits = augmented.bit_length()
    writer.write_bits(0, n_bits - 1)
    writer.write_bits(augmented, n_bits)


def read_ue(reader: BitReader) -> int:
    """Read an unsigned Exp-Golomb codeword."""
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 32:
            raise BitstreamError("Exp-Golomb prefix too long (corrupt stream)")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value - 1


def write_se(writer: BitWriter, value: int) -> None:
    """Write a signed Exp-Golomb codeword (H.264 mapping)."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    write_ue(writer, mapped)


def read_se(reader: BitReader) -> int:
    """Read a signed Exp-Golomb codeword."""
    mapped = read_ue(reader)
    magnitude = (mapped + 1) // 2
    return magnitude if mapped % 2 else -magnitude


def run_level_events(zigzagged: np.ndarray) -> List[Tuple[int, int, bool]]:
    """Convert a zigzag-scanned coefficient vector to (run, level, last).

    ``run`` counts the zeros preceding each nonzero ``level``; ``last``
    marks the final nonzero coefficient of the block.
    """
    nonzero_positions = np.flatnonzero(zigzagged)
    events: List[Tuple[int, int, bool]] = []
    previous = -1
    for order, position in enumerate(nonzero_positions):
        run = int(position - previous - 1)
        level = int(zigzagged[position])
        last = order == len(nonzero_positions) - 1
        events.append((run, level, last))
        previous = int(position)
    return events


def encode_block(writer: BitWriter, levels: np.ndarray) -> None:
    """Entropy-code one 8x8 block of quantized levels.

    Syntax: a coded-block flag, then (run, level, last) events — run as
    ue(v), level as se(v) (never zero), last as one bit.
    """
    if levels.shape != (8, 8):
        raise ValueError(f"expected an 8x8 block, got {levels.shape}")
    zigzagged = levels.reshape(-1)[zigzag_order()]
    events = run_level_events(zigzagged)
    if not events:
        writer.write_bit(0)  # block entirely zero
        return
    writer.write_bit(1)
    for run, level, last in events:
        write_ue(writer, run)
        write_se(writer, level)
        writer.write_bit(1 if last else 0)


def decode_block(reader: BitReader) -> np.ndarray:
    """Decode one 8x8 block of quantized levels (inverse of encode_block)."""
    levels = np.zeros(64, dtype=np.int32)
    if reader.read_bit() == 0:
        return levels[inverse_zigzag_order()].reshape(8, 8)
    position = -1
    while True:
        run = read_ue(reader)
        level = read_se(reader)
        if level == 0:
            raise BitstreamError("run-level event with zero level")
        last = reader.read_bit()
        position += run + 1
        if position >= 64:
            raise BitstreamError(f"run-level overrun: position {position} >= 64")
        levels[position] = level
        if last:
            break
    return levels[inverse_zigzag_order()].reshape(8, 8)


def encode_blocks(writer: BitWriter, blocks: Iterable[np.ndarray]) -> None:
    """Entropy-code a sequence of 8x8 blocks."""
    for block in blocks:
        encode_block(writer, block)


def decode_blocks(reader: BitReader, count: int) -> np.ndarray:
    """Decode ``count`` 8x8 blocks into a ``(count, 8, 8)`` array."""
    return np.stack([decode_block(reader) for _ in range(count)])
