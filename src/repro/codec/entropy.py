"""Entropy coding: Exp-Golomb codewords and run-level coefficient coding.

H.263 entropy-codes quantized DCT coefficients as (LAST, RUN, LEVEL)
events with hand-built Huffman tables.  This codec keeps the identical
event structure but encodes each field with Exp-Golomb codes (the
universal codes H.264 later standardized).  The rate is within a few
percent of the Huffman tables for QCIF content, the code is table-free
and exhaustively testable, and the error behaviour (loss of
synchronization after a bit error) is the same — which is what the
paper's resilience analysis depends on.

The encoder side is batched: a whole block array is turned into
``(value, width)`` codeword vectors in numpy (:func:`block_codewords`)
and packed by the word-level :class:`~repro.codec.bitstream.BitWriter`
in one operation, instead of thousands of per-coefficient Python calls.
The decoder is necessarily sequential (VLC codewords must be parsed in
order to know where the next one starts) but rides the reader's
word-buffered Exp-Golomb fast path and materializes each batch of
blocks with a single scatter.  Both directions are bit-identical to the
original bit-serial implementation — locked by the golden-bitstream
regression tests.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter, BitstreamError
from repro.codec.zigzag import zigzag_order, inverse_zigzag_order

#: Powers of two used to take exact integer bit lengths of int64 batches
#: (``np.searchsorted`` beats float ``log2``, which rounds near 2**53).
_POW2 = 2 ** np.arange(63, dtype=np.int64)


def write_ue(writer: BitWriter, value: int) -> None:
    """Write an unsigned Exp-Golomb codeword."""
    if value < 0:
        raise ValueError(f"ue(v) requires value >= 0, got {value}")
    augmented = int(value) + 1
    n_bits = augmented.bit_length()
    writer.write_bits(augmented, 2 * n_bits - 1)


def read_ue(reader: BitReader) -> int:
    """Read an unsigned Exp-Golomb codeword."""
    return reader.read_exp_golomb()


def write_se(writer: BitWriter, value: int) -> None:
    """Write a signed Exp-Golomb codeword (H.264 mapping)."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    write_ue(writer, mapped)


def read_se(reader: BitReader) -> int:
    """Read a signed Exp-Golomb codeword."""
    mapped = reader.read_exp_golomb()
    magnitude = (mapped + 1) // 2
    return magnitude if mapped % 2 else -magnitude


def ue_codewords(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ue(v): ``(codeword value, codeword width)`` per input."""
    augmented = np.asarray(values, dtype=np.int64) + 1
    if augmented.size and int(augmented.min()) < 1:
        raise ValueError("ue(v) requires values >= 0")
    n_bits = np.searchsorted(_POW2, augmented, side="right")
    return augmented, 2 * n_bits - 1


def se_codewords(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized se(v) via the H.264 signed mapping."""
    values = np.asarray(values, dtype=np.int64)
    return ue_codewords(np.where(values > 0, 2 * values - 1, -2 * values))


def write_ue_array(writer: BitWriter, values: np.ndarray) -> None:
    """Write a batch of unsigned Exp-Golomb codewords in one pack."""
    writer.write_codewords(*ue_codewords(values))


def write_se_array(writer: BitWriter, values: np.ndarray) -> None:
    """Write a batch of signed Exp-Golomb codewords in one pack."""
    writer.write_codewords(*se_codewords(values))


def run_level_events(zigzagged: np.ndarray) -> List[Tuple[int, int, bool]]:
    """Convert a zigzag-scanned coefficient vector to (run, level, last).

    ``run`` counts the zeros preceding each nonzero ``level``; ``last``
    marks the final nonzero coefficient of the block.
    """
    nonzero_positions = np.flatnonzero(zigzagged)
    events: List[Tuple[int, int, bool]] = []
    previous = -1
    for order, position in enumerate(nonzero_positions):
        run = int(position - previous - 1)
        level = int(zigzagged[position])
        last = order == len(nonzero_positions) - 1
        events.append((run, level, last))
        previous = int(position)
    return events


def block_codewords(
    blocks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched run-level coding of ``(n, 8, 8)`` level blocks.

    Returns ``(values, widths, bits_per_block, codewords_per_block)``:
    the full codeword stream for all blocks in order (coded-block flag,
    then per event ue(run), se(level) and the LAST bit) plus each
    block's coded size in bits and codewords — what the macroblock
    layer needs to compute bit offsets and interleave per-macroblock
    header fields without a second pass.
    """
    blocks = np.asarray(blocks)
    if blocks.ndim != 3 or blocks.shape[1:] != (8, 8):
        raise ValueError(f"expected (n, 8, 8) blocks, got {blocks.shape}")
    n_blocks = blocks.shape[0]
    if n_blocks == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    zigzagged = blocks.reshape(n_blocks, 64)[:, zigzag_order()]
    nonzero = zigzagged != 0
    coded = nonzero.any(axis=1)
    block_index, scan_position = np.nonzero(nonzero)
    n_events = block_index.size

    # Codeword stream layout: one flag per block at the start of the
    # block's span, then three codewords (run, level, last) per event.
    events_per_block = nonzero.sum(axis=1)
    block_starts = np.zeros(n_blocks, dtype=np.int64)
    np.cumsum(1 + 3 * events_per_block[:-1], out=block_starts[1:])
    n_codewords = n_blocks + 3 * n_events
    values = np.empty(n_codewords, dtype=np.int64)
    widths = np.empty(n_codewords, dtype=np.int64)
    values[block_starts] = coded
    widths[block_starts] = 1

    if n_events:
        first_of_block = np.empty(n_events, dtype=bool)
        first_of_block[0] = True
        np.not_equal(block_index[1:], block_index[:-1], out=first_of_block[1:])
        previous_position = np.empty(n_events, dtype=np.int64)
        previous_position[1:] = scan_position[:-1]
        previous_position[first_of_block] = -1
        runs = scan_position - previous_position - 1
        levels = zigzagged[block_index, scan_position].astype(np.int64)
        last = np.empty(n_events, dtype=np.int64)
        last[-1] = 1
        last[:-1] = first_of_block[1:]

        run_values, run_widths = ue_codewords(runs)
        level_values, level_widths = se_codewords(levels)
        event_mask = np.ones(n_codewords, dtype=bool)
        event_mask[block_starts] = False
        values[event_mask] = np.stack(
            [run_values, level_values, last], axis=1
        ).ravel()
        widths[event_mask] = np.stack(
            [run_widths, level_widths, np.ones(n_events, dtype=np.int64)],
            axis=1,
        ).ravel()

    bits_per_block = np.add.reduceat(widths, block_starts)
    return values, widths, bits_per_block, 1 + 3 * events_per_block


def encode_block(writer: BitWriter, levels: np.ndarray) -> None:
    """Entropy-code one 8x8 block of quantized levels.

    Syntax: a coded-block flag, then (run, level, last) events — run as
    ue(v), level as se(v) (never zero), last as one bit.
    """
    if levels.shape != (8, 8):
        raise ValueError(f"expected an 8x8 block, got {levels.shape}")
    values, widths, _, _ = block_codewords(levels[None])
    writer.write_codewords(values, widths)


def decode_block(reader: BitReader) -> np.ndarray:
    """Decode one 8x8 block of quantized levels (inverse of encode_block)."""
    return decode_blocks(reader, 1)[0]


def encode_blocks(writer: BitWriter, blocks: Iterable[np.ndarray]) -> None:
    """Entropy-code a sequence of 8x8 blocks as one codeword batch."""
    if not isinstance(blocks, np.ndarray):
        blocks = list(blocks)
        if not blocks:
            return
        blocks = np.stack(blocks)
    values, widths, _, _ = block_codewords(blocks)
    writer.write_codewords(values, widths)


def decode_blocks(reader: BitReader, count: int) -> np.ndarray:
    """Decode ``count`` 8x8 blocks into a ``(count, 8, 8)`` array.

    The VLC scan is sequential; the decoded (block, position, level)
    triples are scattered into the coefficient array in one batch at
    the end.
    """
    blocks: list[int] = []
    positions: list[int] = []
    levels: list[int] = []
    for block in range(count):
        if reader.read_bit() == 0:
            continue  # block entirely zero
        position = -1
        while True:
            run = reader.read_exp_golomb()
            mapped = reader.read_exp_golomb()
            if mapped == 0:
                raise BitstreamError("run-level event with zero level")
            magnitude = (mapped + 1) // 2
            level = magnitude if mapped & 1 else -magnitude
            last = reader.read_bit()
            position += run + 1
            if position >= 64:
                raise BitstreamError(
                    f"run-level overrun: position {position} >= 64"
                )
            blocks.append(block)
            positions.append(position)
            levels.append(level)
            if last:
                break
    out = np.zeros((count, 64), dtype=np.int32)
    if levels:
        out[blocks, positions] = levels
    return out[:, inverse_zigzag_order()].reshape(count, 8, 8)
