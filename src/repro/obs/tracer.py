"""Nested-span tracing with near-zero cost when disabled.

The tracer answers the question the aggregate reports cannot: *where*
inside encode -> packetize -> channel -> decode -> conceal a run spends
its time and its operation budget.  Instrumented code asks for the
process-current tracer (:func:`get_tracer`) and opens named spans
around each pipeline stage::

    tracer = get_tracer()
    with tracer.span("encode_frame") as span:
        encoded = encoder.encode_frame(frame)
        span.add(bits=encoded.stats.bits)

Spans nest: a ``motion_estimation`` span opened while ``encode_frame``
is live records ``encode_frame`` as its parent and depth 2.  Counter
payloads (SAD candidates, bits written, packets dropped) attach to the
innermost open span, either through the handle's :meth:`Span.add` or —
for code that should not know about the span structure around it —
through :meth:`Tracer.count`.

The default tracer is a shared :class:`NullTracer` whose spans are a
single reusable no-op object, so the instrumented hot path costs one
method call and an empty context manager per stage — within noise.
A real :class:`Tracer` is installed only for the duration of a traced
run via :func:`use_tracer` (or :func:`set_tracer`), and is
process-local: worker processes build their own and export records
through the JSONL boundary (:mod:`repro.obs.export`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One completed span — the unit the JSONL exporter writes.

    Attributes:
        name: stage name (``encode_frame``, ``channel``, ...).
        start_s: start timestamp from ``time.perf_counter`` —
            meaningful for ordering/nesting within one trace, not
            across processes.
        duration_s: wall-clock length of the span.
        depth: nesting depth at open time (1 = top-level span).
        parent: name of the enclosing span, or None at depth 1.
        counters: numeric payloads attached while the span was open.
        trace_id: label of the trace this span belongs to (one trace
            per traced run/job; the runner uses the job's grid cell).
    """

    name: str
    start_s: float
    duration_s: float
    depth: int
    parent: Optional[str]
    counters: Mapping[str, float] = field(default_factory=dict)
    trace_id: str = "run"


@dataclass(frozen=True)
class EventRecord:
    """One discrete, structured occurrence (as opposed to a timed span).

    Spans measure *stages*; events record *things that happened* —
    an injected fault, a concealed decoder error, a quarantined job.
    Fields may hold strings as well as numbers (span counters cannot),
    so structured records like :class:`repro.faults.FaultEvent` ride
    the trace without flattening.
    """

    name: str
    fields: Mapping[str, Any] = field(default_factory=dict)
    trace_id: str = "run"


class Span:
    """Live handle for an open span (context manager)."""

    __slots__ = ("_tracer", "name", "_counters", "_start", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, counters: dict) -> None:
        self._tracer = tracer
        self.name = name
        self._counters = counters
        self._start = 0.0
        self._depth = 0
        self._parent: Optional[str] = None

    def add(self, **counters: float) -> "Span":
        """Accumulate numeric payload values onto this span."""
        for key, value in counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        self._parent = stack[-1].name if stack else None
        self._depth = len(stack) + 1
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        self._tracer._stack.pop()
        self._tracer.records.append(
            SpanRecord(
                name=self.name,
                start_s=self._start,
                duration_s=end - self._start,
                depth=self._depth,
                parent=self._parent,
                counters=dict(self._counters),
                trace_id=self._tracer.trace_id,
            )
        )


class _NullSpan:
    """Reusable do-nothing span: the disabled-tracing hot path."""

    __slots__ = ()

    def add(self, **counters: float) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`SpanRecord` objects for one traced run.

    Not thread-safe by design: one tracer belongs to one run in one
    process (the simulation pipeline is single-threaded; parallelism
    happens at process granularity, where each worker owns a tracer).
    """

    enabled = True

    def __init__(self, trace_id: str = "run") -> None:
        self.trace_id = trace_id
        self.records: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.metrics: MetricsRegistry = MetricsRegistry()
        self._stack: list[Span] = []

    def span(self, name: str, **counters: float):
        """Open a named span; use as a context manager."""
        return Span(self, name, dict(counters))

    def event(self, name: str, **fields: Any) -> None:
        """Record a discrete structured event (fault, error, decision)."""
        self.events.append(
            EventRecord(name=name, fields=fields, trace_id=self.trace_id)
        )

    def count(self, **counters: float) -> None:
        """Attach counters to the innermost open span (if any).

        Lets leaf code (motion estimators, the channel) report work
        without knowing what stage span the caller wrapped it in;
        counters are dropped when no span is open.
        """
        if self._stack:
            self._stack[-1].add(**counters)


class NullTracer(Tracer):
    """The default: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_id="null")
        self.metrics = NullMetricsRegistry()

    def span(self, name: str, **counters: float):
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        return None

    def count(self, **counters: float) -> None:
        return None


NULL_TRACER = NullTracer()

_current_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-current tracer (the shared no-op one by default)."""
    return _current_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` (None restores the no-op); returns the previous."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
