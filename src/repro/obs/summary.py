"""Per-stage breakdowns of a trace: time, energy and coverage.

Takes the flat span stream of a trace file and answers the questions
the paper's accounting argument needs answered per stage rather than
per run: how much wall time each stage of
encode -> packetize -> channel -> decode -> conceal consumed, how much
of that the root spans account for (*coverage* — close to 100% means
the instrumentation actually sees the run), and what the stage's
operation payloads cost in energy under a device profile.

Energy attribution works because the instrumented spans name their
payload counters after :class:`repro.energy.counters.OperationCounters`
fields (``sad_blocks``, ``dct_blocks``, ``entropy_bits``, ...): any
payload key the device profile can price contributes to the stage's
energy column; the rest (``packets_lost``, ``bits``) stay informational.

This module is deliberately a leaf (stdlib + :mod:`repro.energy` only)
so the observability layer never imports the pipeline it observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.energy.counters import OperationCounters
from repro.energy.profiles import DeviceProfile
from repro.obs.export import TraceData
from repro.obs.tracer import SpanRecord

#: The root span each traced run opens around the whole pipeline.
ROOT_SPAN = "simulate"

#: Payload keys the energy model can price (OperationCounters fields).
_ENERGY_COUNTERS = frozenset(
    f.name for f in OperationCounters.__dataclass_fields__.values()
)


@dataclass
class StageStats:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    min_depth: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    def absorb(self, span: SpanRecord) -> None:
        if not self.count or span.depth < self.min_depth:
            self.min_depth = span.depth
        self.count += 1
        self.total_s += span.duration_s
        for key, value in span.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def energy_joules(self, device: DeviceProfile) -> float:
        """Price this stage's priceable payload counters, in joules."""
        return sum(
            value * device.cost_of(name) * 1e-6
            for name, value in self.counters.items()
            if name in _ENERGY_COUNTERS
        )


def aggregate_stages(spans: Iterable[SpanRecord]) -> list[StageStats]:
    """Group spans by name, in first-appearance order."""
    stages: dict[str, StageStats] = {}
    for span in spans:
        stage = stages.get(span.name)
        if stage is None:
            stage = stages[span.name] = StageStats(name=span.name)
        stage.absorb(span)
    return list(stages.values())


@dataclass(frozen=True)
class Coverage:
    """How much of the traced wall time the stage spans explain.

    ``root_s`` is the summed duration of the ``simulate`` root spans;
    ``stages_s`` the summed duration of their direct children.  The
    acceptance bar for the instrumentation is ``ratio`` within 2% of
    1.0: the per-stage totals account for the run's reported wall time.
    """

    root_s: float
    stages_s: float

    @property
    def ratio(self) -> float:
        return self.stages_s / self.root_s if self.root_s else 0.0


def coverage(spans: Sequence[SpanRecord]) -> Coverage:
    """Stage-time coverage of the root spans, per the class docstring."""
    root_depths = {
        (span.trace_id, span.depth)
        for span in spans
        if span.name == ROOT_SPAN
    }
    root_s = sum(s.duration_s for s in spans if s.name == ROOT_SPAN)
    stages_s = sum(
        s.duration_s
        for s in spans
        if s.parent == ROOT_SPAN and (s.trace_id, s.depth - 1) in root_depths
    )
    return Coverage(root_s=root_s, stages_s=stages_s)


def _format_table(headers: Sequence[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _notable_counters(stage: StageStats, limit: int = 3) -> str:
    parts = [
        f"{name}={int(value):,}" if float(value).is_integer() else f"{name}={value:.3g}"
        for name, value in sorted(
            stage.counters.items(), key=lambda item: -abs(item[1])
        )[:limit]
    ]
    return " ".join(parts)


def trace_summary(
    trace: TraceData, device: Optional[DeviceProfile] = None
) -> str:
    """Render the per-stage time/energy breakdown table of a trace.

    One row per span name (stage), ordered by total time; the energy
    column prices each stage's operation payloads with ``device``
    (omitted when no profile is given).  Ends with the coverage line
    the CI smoke test greps for.
    """
    spans = trace.spans
    if not spans:
        return "trace is empty (no spans recorded)"
    stages = sorted(aggregate_stages(spans), key=lambda s: -s.total_s)
    total_s = sum(s.duration_s for s in spans if s.name == ROOT_SPAN)
    if total_s == 0.0:  # trace without a simulate root: fall back
        total_s = sum(s.total_s for s in stages if s.min_depth == 1)

    headers = ["stage", "spans", "total s", "share %"]
    if device is not None:
        headers.append("energy J")
    headers.append("counters")
    rows = []
    for stage in stages:
        share = 100.0 * stage.total_s / total_s if total_s else 0.0
        row = [
            ("  " * max(stage.min_depth - 1, 0)) + stage.name,
            str(stage.count),
            f"{stage.total_s:.3f}",
            f"{share:.1f}",
        ]
        if device is not None:
            row.append(f"{stage.energy_joules(device):.3f}")
        row.append(_notable_counters(stage))
        rows.append(row)

    lines = [
        f"{len(spans)} spans across {len(trace.trace_ids)} trace(s): "
        + ", ".join(trace.trace_ids[:8])
        + ("..." if len(trace.trace_ids) > 8 else ""),
        _format_table(headers, rows),
    ]
    cov = coverage(spans)
    if cov.root_s:
        lines.append(
            f"stage coverage: {cov.stages_s:.3f}s of {cov.root_s:.3f}s "
            f"traced wall time ({100.0 * cov.ratio:.1f}%)"
        )
    if trace.events:
        by_name: dict[str, int] = {}
        for event in trace.events:
            label = event.name
            if label == "fault":
                label = f"fault:{event.fields.get('kind', '?')}"
            by_name[label] = by_name.get(label, 0) + 1
        rendered = "  ".join(
            f"{name}={count}" for name, count in sorted(by_name.items())
        )
        lines.append(f"events: {len(trace.events)} ({rendered})")
    snapshot = trace.metrics.snapshot()
    counter_items = sorted(snapshot["counters"].items())
    if counter_items:
        rendered = "  ".join(
            f"{name}={int(value):,}"
            if float(value).is_integer()
            else f"{name}={value:.4g}"
            for name, value in counter_items
        )
        lines.append(f"metrics: {rendered}")
    return "\n".join(lines)
