"""repro.obs — per-stage observability: tracing, metrics, trace files.

The measurement substrate for every performance claim this repo makes.
The paper's argument is an accounting argument (*where* the intra/inter
decision moves time, energy and bits), so the pipeline is instrumented
with nested spans at every Figure-1 stage:

====================  =======================================================
span                  opened around
====================  =======================================================
``simulate``          one whole end-to-end run (the root)
``encode_frame``      :meth:`repro.codec.encoder.Encoder.encode_frame`
``motion_estimation``   the ME search + half-pel refinement (inside encode)
``quantize``            transform/quantize/reconstruct (inside encode)
``entropy_code``        VLC bit writing (inside encode)
``packetize``         the packetizer
``channel``           the lossy channel transmit
``decode_frame``      depacketize + decode
``conceal``           concealment repair
``metrics``           PSNR / bad-pixel measurement
====================  =======================================================

Everything is a no-op by default (:class:`NullTracer`); a traced run
installs a real :class:`Tracer` with :func:`use_tracer`, then exports
its spans and metrics snapshot with :func:`write_trace`.  Multi-process
grids (:func:`repro.sim.runner.run_grid`) give each worker its own
tracer and per-job trace file, merged by the parent with
:func:`merge_job_traces`.  ``repro trace <file>`` renders the result.
"""

from repro.obs.export import (
    MERGED_TRACE_NAME,
    SUPPORTED_TRACE_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    TraceData,
    TraceFormatError,
    job_trace_files,
    load_trace,
    merge_job_traces,
    merge_traces,
    write_trace,
)
from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.summary import (
    Coverage,
    StageStats,
    aggregate_stages,
    coverage,
    trace_summary,
)
from repro.obs.tracer import (
    NULL_TRACER,
    EventRecord,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "EventRecord",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "HistogramSummary",
    "TraceData",
    "TraceFormatError",
    "TRACE_SCHEMA_VERSION",
    "SUPPORTED_TRACE_SCHEMAS",
    "MERGED_TRACE_NAME",
    "write_trace",
    "load_trace",
    "merge_traces",
    "merge_job_traces",
    "job_trace_files",
    "StageStats",
    "Coverage",
    "aggregate_stages",
    "coverage",
    "trace_summary",
]
